//! Model-checking suite for the wavefront pool protocol.
//!
//! Every test replays the *real* `JobCore` code (monomorphized over the
//! virtual sync primitives) under controlled interleavings and asserts
//! the protocol invariants documented in `flsa_wavefront::protocol` —
//! exactly-once, dependency order, quiescence, no deadlock / lost
//! wakeups, happens-before publication, and panic abort.

use std::collections::HashSet;

use flsa_check::explore::{DfsExplorer, SchedPolicy};
use flsa_check::model::{check_schedule, ModelSpec};

/// Exhaustively explores `spec` under `bound` preemptions, checking the
/// invariants on every schedule; returns the distinct-schedule hashes.
fn explore_exhaustive(spec: &ModelSpec, bound: u32, cap: u64) -> HashSet<u64> {
    let mut dfs = DfsExplorer::new(bound);
    let mut distinct = HashSet::new();
    let mut n = 0u64;
    while let Some(policy) = dfs.next_policy() {
        let out = check_schedule(policy, spec)
            .unwrap_or_else(|e| panic!("schedule {n} (bound {bound}): {e}"));
        distinct.insert(out.schedule_hash);
        dfs.advance(out.policy.trace());
        n += 1;
        assert!(n <= cap, "DFS exceeded the expected schedule budget");
    }
    assert!(dfs.exhausted());
    distinct
}

/// Runs `seeds` random schedules of `spec`, checking invariants; returns
/// the distinct hashes.
fn explore_random(
    spec: &ModelSpec,
    seeds: std::ops::Range<u64>,
    spurious_pct: u32,
) -> HashSet<u64> {
    let mut distinct = HashSet::new();
    for seed in seeds {
        let out = check_schedule(SchedPolicy::random(seed, 40, spurious_pct), spec)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        distinct.insert(out.schedule_hash);
    }
    distinct
}

#[test]
fn dense_2x2_two_participants_exhaustive_one_preemption() {
    // Small enough to eyeball: every schedule with at most one voluntary
    // preemption, all invariants hold, every schedule distinct.
    let spec = ModelSpec::dense(2, 2, 2);
    let distinct = explore_exhaustive(&spec, 1, 500);
    assert!(
        distinct.len() >= 40,
        "expected a non-trivial schedule tree, got {}",
        distinct.len()
    );
}

#[test]
fn dense_2x2_two_participants_exhaustive_two_preemptions() {
    let spec = ModelSpec::dense(2, 2, 2);
    let distinct = explore_exhaustive(&spec, 2, 5_000);
    assert!(distinct.len() >= 800, "got {}", distinct.len());
}

#[test]
fn dense_2x2_three_participants_exhaustive() {
    let spec = ModelSpec::dense(2, 2, 3);
    let distinct = explore_exhaustive(&spec, 1, 5_000);
    assert!(distinct.len() >= 500, "got {}", distinct.len());
}

#[test]
fn ten_thousand_distinct_schedules_of_3x3_hold_all_invariants() {
    // The acceptance bar: ≥ 10_000 distinct interleavings of a 3×3 pool
    // job, every one passing every invariant. Bounded-exhaustive DFS
    // (preemption bound 2) supplies systematic coverage near the
    // sequential schedule; seeded random schedules (with spurious condvar
    // wakeups) cover the wilder interleavings.
    let spec = ModelSpec::dense(3, 3, 2);
    let mut distinct = explore_exhaustive(&spec, 2, 10_000);
    let dfs_count = distinct.len();
    assert!(dfs_count >= 3_000, "DFS explored only {dfs_count}");
    let mut seed = 0u64;
    while distinct.len() < 10_000 {
        let out = check_schedule(SchedPolicy::random(seed, 40, 10), &spec)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        distinct.insert(out.schedule_hash);
        seed += 1;
        assert!(
            seed < 40_000,
            "random exploration stalled at {} distinct schedules",
            distinct.len()
        );
    }
    assert!(distinct.len() >= 10_000);
}

#[test]
fn skip_block_grid_holds_invariants_exhaustive_and_random() {
    // The FastLSA Fig. 13 shape: bottom-right block of tiles skipped.
    let spec = ModelSpec::dense(3, 3, 2).with_skip_block(2, 2);
    explore_exhaustive(&spec, 1, 2_000);
    explore_random(&spec, 0..300, 10);
}

#[test]
fn injected_tile_panic_always_poisons_and_never_deadlocks() {
    // Invariant 6 under systematic exploration: whichever participant
    // runs the panicking tile, on whatever schedule, the job poisons,
    // every thread drains, and quiescence is still reached before the
    // modeled closure is dropped.
    for (r, c) in [(0, 0), (0, 1), (1, 1)] {
        let spec = ModelSpec::dense(2, 2, 2).with_panic_at(r, c);
        explore_exhaustive(&spec, 1, 1_000);
        explore_random(&spec, 0..200, 10);
    }
}

#[test]
fn cancellation_at_any_tile_drains_and_never_deadlocks() {
    // Invariant 7 under systematic exploration: whichever participant
    // observes the cancellation, on whatever schedule, the job reports
    // cancelled, the cancelled tile's work is skipped, and every thread
    // still drains to quiescence.
    for (r, c) in [(0, 0), (0, 1), (1, 1)] {
        let spec = ModelSpec::dense(2, 2, 2).with_cancel_at(r, c);
        explore_exhaustive(&spec, 1, 1_000);
        explore_random(&spec, 0..200, 10);
    }
}

#[test]
fn spurious_wakeups_are_harmless() {
    // Crank the spurious-wakeup probability: predicate re-check loops
    // must absorb them without double-runs or lost work.
    let spec = ModelSpec::dense(2, 3, 2);
    explore_random(&spec, 0..400, 40);
}

#[test]
fn single_participant_schedules_degenerate_to_sequential() {
    let spec = ModelSpec::dense(3, 3, 1);
    // With one participant there is exactly one schedule per policy
    // regardless of seed: no preemption choices exist.
    let hashes = explore_random(&spec, 0..20, 0);
    assert_eq!(hashes.len(), 1, "sequential execution must be unique");
}

#[test]
fn replaying_a_dfs_trace_reproduces_the_schedule() {
    // Determinism spot-check on the full model: re-running a DFS prefix
    // yields the identical schedule hash (what makes failures debuggable).
    let spec = ModelSpec::dense(2, 2, 2);
    let mut dfs = DfsExplorer::new(2);
    let mut replayed = 0;
    while let Some(policy) = dfs.next_policy() {
        let prefix: Vec<u32> = match &policy {
            SchedPolicy::Dfs { prefix, .. } => prefix.clone(),
            SchedPolicy::Random { .. } => unreachable!(),
        };
        let out = check_schedule(policy, &spec).expect("schedule holds invariants");
        let again =
            check_schedule(SchedPolicy::dfs(prefix, 2), &spec).expect("replay holds invariants");
        assert_eq!(out.schedule_hash, again.schedule_hash, "replay diverged");
        dfs.advance(out.policy.trace());
        replayed += 1;
        if replayed >= 25 {
            break;
        }
    }
}

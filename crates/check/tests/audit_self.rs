//! The semantic audit must pass on this workspace and fail on each
//! seeded fixture, through both the library API and the `audit`
//! binary's exit code — plus the R10 acceptance cross-check: the
//! runtime overflow guard must be no looser than the certificate.

use std::path::{Path, PathBuf};
use std::process::Command;

use fastlsa_core::max_safe_span;
use flsa_check::audit::audit_workspace;
use flsa_scoring::{GapModel, ScoringScheme, SubstitutionMatrix};
use flsa_seq::Alphabet;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("tests/fixtures/audit/{name}"))
}

#[test]
fn workspace_sources_are_audit_clean() {
    let report = audit_workspace(&repo_root()).expect("scan the workspace");
    assert!(
        report.findings.is_empty(),
        "workspace audit findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn r8_fixture_trips_panic_reachability_with_call_chain() {
    let report = audit_workspace(&fixture_root("r8")).expect("scan the r8 fixture");
    // The unwrap two hops below the solver entry must surface with its
    // offending chain — the interprocedural step the regex lint lacks.
    assert!(
        report.findings.iter().any(|f| {
            f.rule == "R8-panic-reachability" && f.message.contains("run -> helper -> deepest")
        }),
        "no chained unwrap finding: {:?}",
        report.findings
    );
    // The unguarded pub hot-kernel indexing must surface too.
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "R8-panic-reachability" && f.message.contains("bounds guard")),
        "no index-guard finding: {:?}",
        report.findings
    );
}

#[test]
fn r9_fixture_trips_detection_dominance() {
    let report = audit_workspace(&fixture_root("r9")).expect("scan the r9 fixture");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "R9-detection-dominance" && f.message.contains("`row_update_avx2`")),
        "no dominance finding: {:?}",
        report.findings
    );
    // The 512-bit twin: an avx512f kernel called without any dominating
    // `is_x86_feature_detected!("avx512f")` proof must also surface.
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "R9-detection-dominance" && f.message.contains("row_update_avx512")),
        "no avx512 dominance finding: {:?}",
        report.findings
    );
}

#[test]
fn r10_fixture_trips_overflow_cert() {
    let report = audit_workspace(&fixture_root("r10")).expect("scan the r10 fixture");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "R10-overflow-cert" && f.message.contains("align_opts")),
        "no overflow-guard finding: {:?}",
        report.findings
    );
}

#[test]
fn runtime_guard_is_no_looser_than_certificate() {
    // Acceptance criterion: build the extremal scoring scheme the
    // certificate is derived from (largest |substitution| and |gap|
    // found anywhere in the workspace) and check the runtime guard
    // admits no span the certificate does not cover.
    let cert = audit_workspace(&repo_root())
        .expect("scan the workspace")
        .certificate;
    let s = i32::try_from(cert.sub_abs_max).expect("sub magnitude fits i32");
    let g = i32::try_from(cert.gap_abs_max).expect("gap magnitude fits i32");
    let extremal = ScoringScheme::new(
        SubstitutionMatrix::match_mismatch("extremal", Alphabet::dna(), s, -s),
        GapModel::linear(-g),
    );
    let enforced = max_safe_span(&extremal) as u64;
    assert!(
        enforced <= cert.max_span,
        "validate_run admits span {enforced} but the certificate only covers {}",
        cert.max_span
    );
    // And the certificate is not vacuous: it must cover at least the
    // paper-scale experiments (megabase pairs).
    assert!(
        cert.max_span >= 2_000_000,
        "certified span {}",
        cert.max_span
    );
}

#[test]
fn audit_binary_exit_codes_gate_on_findings() {
    let clean = Command::new(env!("CARGO_BIN_EXE_audit"))
        .arg(repo_root())
        .output()
        .expect("run audit on the workspace");
    assert!(
        clean.status.success(),
        "audit on the workspace failed:\n{}",
        String::from_utf8_lossy(&clean.stdout)
    );

    for fixture in ["r8", "r9", "r10"] {
        let bad = Command::new(env!("CARGO_BIN_EXE_audit"))
            .arg(fixture_root(fixture))
            .output()
            .expect("run audit on the fixture");
        assert_eq!(
            bad.status.code(),
            Some(1),
            "audit on the {fixture} fixture:\n{}",
            String::from_utf8_lossy(&bad.stdout)
        );
    }

    let usage = Command::new(env!("CARGO_BIN_EXE_audit"))
        .arg("--no-such-flag")
        .output()
        .expect("run audit with a bad flag");
    assert_eq!(usage.status.code(), Some(2), "usage errors must exit 2");
}

#[test]
fn audit_binary_writes_the_json_certificate() {
    let path = std::env::temp_dir().join(format!("flsa-audit-cert-{}.json", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_audit"))
        .arg(repo_root())
        .arg("--json")
        .arg(&path)
        .output()
        .expect("run audit with --json");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let json = std::fs::read_to_string(&path).expect("certificate file written");
    let _ = std::fs::remove_file(&path);
    for key in [
        "\"sub_abs_max\"",
        "\"gap_abs_max\"",
        "\"max_span\"",
        "\"max_len_square\"",
        "\"formula\"",
        "\"findings\": 0",
    ] {
        assert!(json.contains(key), "missing {key} in certificate:\n{json}");
    }
}

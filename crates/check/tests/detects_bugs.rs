//! Negative tests: the model checker must *catch* seeded concurrency
//! bugs, not just bless correct code. Each test plants a classic bug in
//! a miniature protocol built from the same virtual primitives the real
//! `JobCore` runs on, and asserts the checker reports it (deadlock,
//! double-run, or data race).

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use flsa_check::exec::{run_schedule, ScheduleOutcome};
use flsa_check::explore::{DfsExplorer, SchedPolicy};
use flsa_check::vsync::{RaceCell, VirtSync};
use flsa_wavefront::sync::{AtomicInt, Monitor, SyncModel};

type VMonitor<T> = <VirtSync as SyncModel>::Monitor<T>;
type VAtomicU32 = <VirtSync as SyncModel>::AtomicU32;

/// DFS-explores `body` under `bound` preemptions until `found` accepts an
/// outcome; panics if the bounded tree exhausts without finding one.
fn dfs_find(
    bound: u32,
    cap: u64,
    body: impl Fn(flsa_check::exec::VScope<'_, '_>) + Copy,
    found: impl Fn(&ScheduleOutcome) -> bool,
) -> ScheduleOutcome {
    let mut dfs = DfsExplorer::new(bound);
    let mut n = 0u64;
    while let Some(policy) = dfs.next_policy() {
        let out = run_schedule(policy, body);
        if found(&out) {
            return out;
        }
        dfs.advance(out.policy.trace());
        n += 1;
        assert!(n <= cap, "exceeded schedule budget without finding the bug");
    }
    panic!("bounded exploration exhausted without finding the bug");
}

#[test]
fn notify_before_publish_is_caught_as_deadlock() {
    // Classic lost wakeup: the producer signals *before* the item is in
    // the queue. On the schedule where the consumer checks (empty) and
    // sleeps between the two, the signal is gone and the push is silent —
    // the consumer sleeps forever.
    let out = dfs_find(
        1,
        5_000,
        |scope| {
            let q = Arc::new(VMonitor::<VecDeque<u32>>::new(VecDeque::new()));
            let consumer = Arc::clone(&q);
            scope.spawn(move || {
                let mut g = consumer.lock();
                while g.is_empty() {
                    consumer.wait(&mut g);
                }
                g.pop_front();
            });
            q.notify_one(); // BUG: signal precedes the push
            q.lock().push_back(7);
        },
        |out| out.deadlock.is_some(),
    );
    let dl = out.deadlock.expect("deadlock outcome");
    assert!(dl.contains("CondWait"), "unexpected deadlock shape: {dl}");
}

#[test]
fn missing_notify_is_caught_as_deadlock() {
    // The producer pushes but never signals: any schedule where the
    // consumer goes to sleep first deadlocks.
    let out = dfs_find(
        1,
        5_000,
        |scope| {
            let q = Arc::new(VMonitor::<VecDeque<u32>>::new(VecDeque::new()));
            let consumer = Arc::clone(&q);
            scope.spawn(move || {
                let mut g = consumer.lock();
                while g.is_empty() {
                    consumer.wait(&mut g);
                }
                g.pop_front();
            });
            q.lock().push_back(7); // BUG: no notify at all
        },
        |out| out.deadlock.is_some(),
    );
    assert!(out.deadlock.is_some());
}

#[test]
fn double_release_offbyone_is_caught_as_double_run() {
    // The wavefront in-degree idiom with the comparison botched: a child
    // with two parents must run when the decrement returns 1 (last parent
    // done). `>= 1` releases it from *both* parents — the checker sees
    // the child run twice on every schedule.
    let mut caught = false;
    for seed in 0..10 {
        let out = run_schedule(SchedPolicy::random(seed, 40, 0), |scope| {
            let indeg = Arc::new(VAtomicU32::new(2));
            let child_runs = Arc::new(RaceCell::new(0u32));
            for _ in 0..2 {
                let indeg = Arc::clone(&indeg);
                let child_runs = Arc::clone(&child_runs);
                scope.spawn(move || {
                    // ... parent tile's own work would be here ...
                    if indeg.fetch_sub(1, Ordering::AcqRel) >= 1 {
                        // BUG: should be == 1
                        let prev = child_runs.get();
                        assert_eq!(prev, 0, "child tile ran twice");
                        child_runs.set(prev + 1);
                    }
                });
            }
        });
        // Either detector may fire first: the exactly-once assert, or the
        // race detector (the two child executions are unordered — each
        // parent released at its own decrement, before writing).
        if out
            .real_panics()
            .iter()
            .any(|m| m.contains("ran twice") || m.contains("data race"))
        {
            caught = true;
            break;
        }
    }
    assert!(caught, "double release never detected");
}

#[test]
fn relaxed_indeg_decrement_is_caught_as_race() {
    // The in-degree decrement weakened to Relaxed: the releasing parent's
    // writes are no longer ordered before the child's reads. The value
    // still arrives (the virtual atomic is serialized), but the vector
    // clocks don't — every schedule reports a data race on the parent's
    // plain cell.
    let out = run_schedule(SchedPolicy::random(3, 40, 0), |scope| {
        let indeg = Arc::new(VAtomicU32::new(2));
        let parent_data: Arc<Vec<RaceCell<u32>>> =
            Arc::new((0..2).map(|_| RaceCell::new(0)).collect());
        for p in 0..2usize {
            let indeg = Arc::clone(&indeg);
            let parent_data = Arc::clone(&parent_data);
            scope.spawn(move || {
                parent_data[p].set(1); // the parent tile's output
                if indeg.fetch_sub(1, Ordering::Relaxed) == 1 {
                    // BUG: Relaxed — correct release logic, missing edge.
                    // The child reads BOTH parents' outputs.
                    assert_eq!(parent_data[0].get() + parent_data[1].get(), 2);
                }
            });
        }
    });
    assert!(
        out.real_panics().iter().any(|m| m.contains("data race")),
        "Relaxed in-degree chain not reported as a race: {:?}",
        out.real_panics()
    );
}

#[test]
fn correct_variants_of_the_seeded_bugs_pass() {
    // Sanity: the fixed versions of the same miniatures sail through the
    // same exploration, so the detectors above aren't tautologies.
    let mut dfs = DfsExplorer::new(1);
    let mut n = 0u64;
    while let Some(policy) = dfs.next_policy() {
        let out = run_schedule(policy, |scope| {
            let q = Arc::new(VMonitor::<VecDeque<u32>>::new(VecDeque::new()));
            let consumer = Arc::clone(&q);
            scope.spawn(move || {
                let mut g = consumer.lock();
                while g.is_empty() {
                    consumer.wait(&mut g);
                }
                g.pop_front();
            });
            q.lock().push_back(7);
            q.notify_one(); // push first, then signal
        });
        assert!(out.deadlock.is_none(), "{:?}", out.deadlock);
        assert!(out.real_panics().is_empty(), "{:?}", out.real_panics());
        dfs.advance(out.policy.trace());
        n += 1;
        assert!(n <= 5_000);
    }

    for seed in 0..10 {
        let out = run_schedule(SchedPolicy::random(seed, 40, 0), |scope| {
            let indeg = Arc::new(VAtomicU32::new(2));
            let parent_data: Arc<Vec<RaceCell<u32>>> =
                Arc::new((0..2).map(|_| RaceCell::new(0)).collect());
            for p in 0..2usize {
                let indeg = Arc::clone(&indeg);
                let parent_data = Arc::clone(&parent_data);
                scope.spawn(move || {
                    parent_data[p].set(1);
                    if indeg.fetch_sub(1, Ordering::AcqRel) == 1 {
                        assert_eq!(parent_data[0].get() + parent_data[1].get(), 2);
                    }
                });
            }
        });
        assert!(out.deadlock.is_none(), "{:?}", out.deadlock);
        assert!(out.real_panics().is_empty(), "{:?}", out.real_panics());
    }
}

//! Real-thread wavefront execution.
//!
//! A [`WavefrontSpec`] describes an `R × C` tile grid with the standard
//! wavefront dependencies (`(r,c)` after `(r−1,c)` and `(r,c−1)`) and an
//! optional skip mask (Parallel FastLSA skips the tiles of the
//! bottom-right FastLSA sub-problem during Fill Cache — paper Fig. 13).
//!
//! [`run_wavefront`] executes the DAG on `threads` OS threads using scoped
//! threads over the shared [`JobCore`](crate::protocol::JobCore) protocol
//! (per-tile atomic in-degree counters and a monitor-guarded ready queue).
//! Happens-before: a finished tile's writes are published by the
//! ready-queue monitor (push after completion, pop before start), with the
//! in-degree decrement additionally `AcqRel` so the second parent's writes
//! reach the child no matter which parent enqueues it. This is the
//! DAG-ordered-disjoint-writes pattern from *Rust Atomics and Locks*; the
//! `flsa-check` crate model-checks it over explored interleavings (see
//! [`crate::protocol`] for the invariant list).

use crate::protocol::{sequential_wavefront, JobCore, JobError};
use crate::sync::StdSync;

/// Description of one wavefront job.
pub struct WavefrontSpec<'a> {
    /// Tile rows (`R`).
    pub rows: usize,
    /// Tile columns (`C`).
    pub cols: usize,
    /// Tiles to skip entirely (treated as completed from the start).
    /// `None` means run every tile.
    pub skip: Option<&'a (dyn Fn(usize, usize) -> bool + Sync)>,
}

impl WavefrontSpec<'_> {
    fn skipped(&self, r: usize, c: usize) -> bool {
        self.skip.map(|f| f(r, c)).unwrap_or(false)
    }

    /// Number of tiles that will actually run.
    pub fn live_tiles(&self) -> usize {
        (0..self.rows)
            .map(|r| (0..self.cols).filter(|&c| !self.skipped(r, c)).count())
            .sum()
    }
}

/// Runs the wavefront on `threads` OS threads (1 ⇒ a fully sequential,
/// synchronization-free fast path in anti-diagonal order).
///
/// `work(r, c)` is invoked exactly once per non-skipped tile, never before
/// both of the tile's parents have finished.
///
/// # Errors
///
/// Returns [`JobError::TilePanicked`] when a tile's `work` panicked on any
/// participant: the job aborts, every thread drains without deadlock
/// (protocol invariant 6), the panic payload is contained, and the caller
/// gets the structured error instead of an unwind.
///
/// # Panics
///
/// Panics when `threads == 0`.
pub fn run_wavefront(
    spec: &WavefrontSpec<'_>,
    threads: usize,
    work: &(dyn Fn(usize, usize) + Sync),
) -> Result<(), JobError> {
    assert!(threads > 0, "at least one thread required");
    let (rows, cols) = (spec.rows, spec.cols);
    if rows == 0 || cols == 0 {
        return Ok(());
    }

    if threads == 1 {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sequential_wavefront(rows, cols, |r, c| spec.skipped(r, c), work);
        }));
        return outcome.map_err(|_| JobError::TilePanicked);
    }

    let skip_mask: Vec<bool> = (0..rows * cols)
        .map(|i| spec.skipped(i / cols, i % cols))
        .collect();
    let core = JobCore::<StdSync>::new(rows, cols, skip_mask);
    if core.live() == 0 {
        return Ok(());
    }

    std::thread::scope(|s| {
        for _ in 1..threads {
            s.spawn(|| {
                // The unwind guard inside `participate` already aborted
                // the job; containing the payload here keeps the scope
                // join from re-raising it and lets the submitter report
                // the structured error instead.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    core.participate(work)
                }));
            });
        }
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| core.participate(work)));
    });
    // The scope joined every participant, so the job is quiescent.
    if core.is_cancelled() {
        Err(JobError::Cancelled)
    } else if core.is_poisoned() {
        Err(JobError::TilePanicked)
    } else {
        Ok(())
    }
}

/// [`run_wavefront`] with optional per-tile tracing. With `tracer == None`
/// this is exactly `run_wavefront`; with a tracer, every tile's work is
/// timed as a tile event and the whole job becomes one fill-region event.
pub fn run_wavefront_traced(
    spec: &WavefrontSpec<'_>,
    threads: usize,
    work: &(dyn Fn(usize, usize) + Sync),
    tracer: Option<&flsa_trace::TileTracer<'_>>,
) -> Result<(), JobError> {
    match tracer {
        None => run_wavefront(spec, threads, work),
        Some(t) => {
            let mut outcome = Ok(());
            t.region(spec.rows, spec.cols, threads, || {
                outcome = run_wavefront(spec, threads, &|r, c| t.tile(r, c, || work(r, c)));
            });
            outcome
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex as StdMutex;

    fn spec(rows: usize, cols: usize) -> WavefrontSpec<'static> {
        WavefrontSpec {
            rows,
            cols,
            skip: None,
        }
    }

    #[test]
    fn sequential_path_visits_all_tiles_in_topological_order() {
        let order = StdMutex::new(Vec::new());
        run_wavefront(&spec(4, 5), 1, &|r, c| order.lock().unwrap().push((r, c))).unwrap();
        let order = order.into_inner().unwrap();
        assert_eq!(order.len(), 20);
        for (idx, &(r, c)) in order.iter().enumerate() {
            if r > 0 {
                assert!(
                    order[..idx].contains(&(r - 1, c)),
                    "dep ({},{c}) of ({r},{c})",
                    r - 1
                );
            }
            if c > 0 {
                assert!(order[..idx].contains(&(r, c - 1)));
            }
        }
    }

    #[test]
    fn parallel_execution_respects_dependencies() {
        // Record a completion stamp per tile; every tile's stamp must be
        // greater than its parents' (stamps taken *inside* work, so
        // ordering is guaranteed by the scheduler, not by luck).
        let stamp = AtomicU64::new(1);
        let rows = 8;
        let cols = 8;
        let cells: Vec<AtomicU64> = (0..rows * cols).map(|_| AtomicU64::new(0)).collect();
        run_wavefront(&spec(rows, cols), 4, &|r, c| {
            // Parents must already carry a stamp.
            if r > 0 {
                assert_ne!(cells[(r - 1) * cols + c].load(Ordering::Acquire), 0);
            }
            if c > 0 {
                assert_ne!(cells[r * cols + c - 1].load(Ordering::Acquire), 0);
            }
            let s = stamp.fetch_add(1, Ordering::Relaxed);
            cells[r * cols + c].store(s, Ordering::Release);
        })
        .unwrap();
        assert!(cells.iter().all(|c| c.load(Ordering::Relaxed) != 0));
    }

    #[test]
    fn parallel_result_equals_sequential_result() {
        // Compute a data-dependent value per tile (a mini DP) and compare
        // thread counts. Values flow through a shared table, exercising
        // the happens-before edges.
        let rows = 12;
        let cols = 9;
        let compute = |threads: usize| -> Vec<u64> {
            let table: Vec<AtomicU64> = (0..rows * cols).map(|_| AtomicU64::new(0)).collect();
            run_wavefront(&spec(rows, cols), threads, &|r, c| {
                let up = if r > 0 {
                    table[(r - 1) * cols + c].load(Ordering::Acquire)
                } else {
                    1
                };
                let left = if c > 0 {
                    table[r * cols + c - 1].load(Ordering::Acquire)
                } else {
                    1
                };
                table[r * cols + c].store(up + left + (r * cols + c) as u64, Ordering::Release);
            })
            .unwrap();
            table.into_iter().map(|a| a.into_inner()).collect()
        };
        let seq = compute(1);
        for threads in [2, 3, 4, 7] {
            assert_eq!(compute(threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn skip_mask_skips_exactly_those_tiles() {
        // Skip the bottom-right 2x3 corner (FastLSA's Fill Cache shape).
        let rows = 6;
        let cols = 6;
        let skip = |r: usize, c: usize| r >= 4 && c >= 3;
        let visited = StdMutex::new(Vec::new());
        let spec = WavefrontSpec {
            rows,
            cols,
            skip: Some(&skip),
        };
        assert_eq!(spec.live_tiles(), 36 - 6);
        for threads in [1, 4] {
            visited.lock().unwrap().clear();
            run_wavefront(&spec, threads, &|r, c| visited.lock().unwrap().push((r, c))).unwrap();
            let v = visited.lock().unwrap();
            assert_eq!(v.len(), 30, "threads={threads}");
            assert!(v.iter().all(|&(r, c)| !skip(r, c)));
        }
    }

    #[test]
    fn single_row_and_single_column_grids() {
        for (rows, cols) in [(1, 10), (10, 1), (1, 1)] {
            let count = AtomicU64::new(0);
            run_wavefront(&spec(rows, cols), 3, &|_, _| {
                count.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
            assert_eq!(count.into_inner() as usize, rows * cols);
        }
    }

    #[test]
    fn empty_grid_is_a_noop() {
        run_wavefront(&spec(0, 5), 2, &|_, _| panic!("no tiles expected")).unwrap();
        run_wavefront(&spec(5, 0), 2, &|_, _| panic!("no tiles expected")).unwrap();
    }

    #[test]
    fn more_threads_than_tiles_terminates() {
        let count = AtomicU64::new(0);
        run_wavefront(&spec(2, 2), 16, &|_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(count.into_inner(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = run_wavefront(&spec(1, 1), 0, &|_, _| {});
    }

    #[test]
    fn panicking_tile_surfaces_as_error_instead_of_hanging() {
        for threads in [1usize, 3] {
            let result = run_wavefront(&spec(4, 4), threads, &|r, c| {
                if (r, c) == (2, 2) {
                    panic!("tile failure");
                }
            });
            assert_eq!(result, Err(JobError::TilePanicked), "threads={threads}");
        }
    }

    #[test]
    fn traced_run_records_one_event_per_tile_plus_region() {
        use flsa_trace::{EventKind, Recorder, TileKind, TileTracer};
        let recorder = Recorder::new();
        let tracer = TileTracer::new(&recorder, TileKind::GridFill);
        let count = AtomicU64::new(0);
        run_wavefront_traced(
            &spec(5, 4),
            3,
            &|_, _| {
                count.fetch_add(1, Ordering::Relaxed);
            },
            Some(&tracer),
        )
        .unwrap();
        assert_eq!(count.into_inner(), 20);
        let trace = recorder.snapshot();
        let tiles = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Tile { .. }))
            .count();
        let fills = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Fill { .. }))
            .count();
        assert_eq!((tiles, fills), (20, 1));
    }

    #[test]
    fn fully_skipped_grid_terminates() {
        let skip = |_r: usize, _c: usize| true;
        let spec = WavefrontSpec {
            rows: 3,
            cols: 3,
            skip: Some(&skip),
        };
        run_wavefront(&spec, 4, &|_, _| panic!("everything is skipped")).unwrap();
    }
}

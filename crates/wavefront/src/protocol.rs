//! The wavefront scheduling protocol, generic over a [`SyncModel`].
//!
//! [`JobCore`] is the shared heart of both execution front-ends: the
//! scoped-thread [`crate::executor::run_wavefront`] and the persistent
//! [`crate::pool::WorkerPool`]. It owns the ready queue, per-tile
//! in-degrees and the remaining-tiles counter, and exposes one verb —
//! [`JobCore::participate`] — that every thread (submitting or worker)
//! runs until the job is drained.
//!
//! ## Protocol invariants (mechanically checked)
//!
//! The `flsa-check` crate replays this exact code under a deterministic
//! scheduler (bounded-exhaustive plus seeded-random interleavings) and
//! asserts, on every explored schedule:
//!
//! 1. **Exactly-once**: every non-skipped tile's `work` runs exactly once.
//! 2. **Dependency order**: `work(r, c)` starts only after `work(r−1, c)`
//!    and `work(r, c−1)` returned (when those tiles are live).
//! 3. **Quiescence**: [`JobCore::wait_quiescent`] returns only when
//!    `remaining == 0` *and* no participant is inside a `work` call
//!    (`in_work == 0`, tracked under the ready-queue monitor). This holds
//!    on the abort path too — the drain decrement is a CAS that refuses
//!    to run once an abort zeroed `remaining`, so the counter can neither
//!    wrap nor resurrect the job — and is what makes the pool's
//!    lifetime-erased work pointer sound (see [`crate::pool`]).
//! 4. **No lost wakeups / no deadlock**: every schedule terminates; the
//!    condvar hand-off (push-then-notify under the ready-queue monitor)
//!    never strands a sleeping worker.
//! 5. **Happens-before**: a tile's plain writes are visible to its
//!    dependents — published either by the ready-queue monitor or by the
//!    `AcqRel` in-degree chain — verified by vector-clock race detection
//!    over the explored schedules.
//! 6. **Panic abort**: a panicking `work` poisons the job, zeroes
//!    `remaining` and wakes everyone, so all participants drain without
//!    deadlock and the submitter can surface the failure. Cooperative
//!    cancellation ([`JobCore::abort_cancelled`]) rides the same drain
//!    path, additionally raising the `cancelled` flag so the submitter
//!    can tell [`JobError::Cancelled`] from [`JobError::TilePanicked`].

use std::collections::VecDeque;
use std::sync::atomic::Ordering;

use crate::sync::{AtomicInt, Monitor, SyncModel};

/// Why a wavefront job did not run to completion. Returned by
/// [`crate::pool::WorkerPool::run`] and [`crate::executor::run_wavefront`]
/// instead of letting a tile failure escape as a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobError {
    /// A tile's `work` panicked on some participant. The job was aborted
    /// (invariant 6), every participant drained, and the pool/threads
    /// stay usable; the panic payload is discarded in favour of this
    /// structured error.
    TilePanicked,
    /// The job's cancel predicate fired: a participant called
    /// [`JobCore::abort_cancelled`], the remaining tiles were dropped and
    /// every participant drained via the abort path.
    Cancelled,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::TilePanicked => write!(f, "a wavefront tile panicked"),
            JobError::Cancelled => write!(f, "the wavefront job was cancelled"),
        }
    }
}

impl std::error::Error for JobError {}

/// State guarded by the ready-queue monitor: the FIFO of runnable tiles
/// plus the count of participants currently inside a `work` call (the
/// quiescence half of invariant 3).
struct Ready {
    queue: VecDeque<(usize, usize)>,
    in_work: usize,
}

/// Shared state of one wavefront job on sync model `S`.
pub struct JobCore<S: SyncModel> {
    rows: usize,
    cols: usize,
    /// `skip[r * cols + c]`: tile does not exist.
    skip: Vec<bool>,
    /// Remaining live-parent count per tile (`u32::MAX` for skipped
    /// tiles, which are never decremented).
    indeg: Vec<S::AtomicU32>,
    /// Tiles whose parents have all finished, plus the in-work census.
    ready: S::Monitor<Ready>,
    /// Live tiles not yet completed; 0 releases every participant. Only
    /// ever decremented by CAS-if-nonzero, so an abort's `store(0)` is
    /// final (no wrap-around resurrection).
    remaining: S::AtomicUsize,
    /// Set (before `remaining` is zeroed) when a tile's `work` panicked.
    poisoned: S::AtomicUsize,
    /// Set (before the abort) when the job was cooperatively cancelled
    /// rather than poisoned by a panic. Checked *before* `poisoned` by
    /// the front-ends, since cancellation aborts through the same path.
    cancelled: S::AtomicUsize,
    live: usize,
}

/// Armed around the `work` call; on unwind it drops the tile from the
/// in-work census and aborts the job so every other participant drains
/// instead of deadlocking (invariant 6).
struct AbortOnUnwind<'a, S: SyncModel> {
    core: &'a JobCore<S>,
}

impl<S: SyncModel> Drop for AbortOnUnwind<'_, S> {
    fn drop(&mut self) {
        self.core.poisoned.store(1, Ordering::Release);
        self.core.remaining.store(0, Ordering::Release);
        let mut ready = self.core.ready.lock();
        ready.in_work -= 1;
        drop(ready);
        self.core.ready.notify_all();
    }
}

impl<S: SyncModel> JobCore<S> {
    /// Builds the job state for an `rows × cols` grid with the given skip
    /// mask (`skip_mask[r * cols + c]` ⇒ tile is treated as already done).
    ///
    /// In-degrees count only live parents: in FastLSA's skip shape no live
    /// tile ever depends on a skipped one, but the protocol stays general.
    pub fn new(rows: usize, cols: usize, skip_mask: Vec<bool>) -> Self {
        debug_assert_eq!(skip_mask.len(), rows * cols);
        let mut indeg = Vec::with_capacity(rows * cols);
        let mut initially_ready = VecDeque::new();
        let mut live = 0usize;
        for r in 0..rows {
            for c in 0..cols {
                if skip_mask[r * cols + c] {
                    indeg.push(S::AtomicU32::new(u32::MAX));
                    continue;
                }
                live += 1;
                let mut d = 0;
                if r > 0 && !skip_mask[(r - 1) * cols + c] {
                    d += 1;
                }
                if c > 0 && !skip_mask[r * cols + c - 1] {
                    d += 1;
                }
                if d == 0 {
                    initially_ready.push_back((r, c));
                }
                indeg.push(S::AtomicU32::new(d));
            }
        }
        JobCore {
            rows,
            cols,
            skip: skip_mask,
            indeg,
            ready: S::Monitor::new(Ready {
                queue: initially_ready,
                in_work: 0,
            }),
            remaining: S::AtomicUsize::new(live),
            poisoned: S::AtomicUsize::new(0),
            cancelled: S::AtomicUsize::new(0),
            live,
        }
    }

    /// Number of tiles that will actually run.
    pub fn live(&self) -> usize {
        self.live
    }

    /// True once every live tile has completed (or the job was aborted).
    pub fn is_drained(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    /// True when some tile's `work` panicked (checked by the pool after
    /// its own participation returns; the executor re-raises through its
    /// thread scope instead).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire) != 0
    }

    /// Marks the job failed and releases every participant: poison first,
    /// then zero `remaining` (its `Release` publishes the poison flag to
    /// the `Acquire` loads in the drain loop), then wake all sleepers.
    pub fn abort(&self) {
        self.poisoned.store(1, Ordering::Release);
        self.remaining.store(0, Ordering::Release);
        let _guard = self.ready.lock();
        self.ready.notify_all();
    }

    /// Cooperative cancellation: raises the `cancelled` flag, then aborts.
    /// The flag is stored before the abort's `remaining.store(0)` so any
    /// participant (or the submitter) that observes the drained job also
    /// observes the cancellation reason. Tiles already inside `work`
    /// finish normally; nothing new starts, and the job drains via the
    /// abort path (bounded time, invariant 4).
    pub fn abort_cancelled(&self) {
        self.cancelled.store(1, Ordering::Release);
        self.abort();
    }

    /// True when the job was aborted by [`JobCore::abort_cancelled`].
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire) != 0
    }

    /// Blocks until the job is fully quiescent: `remaining == 0` and no
    /// participant is inside a `work` call. After this returns, no thread
    /// will touch `work` again (invariant 3) — the pool relies on it
    /// before letting its borrowed work closure die, on the panic path
    /// included.
    pub fn wait_quiescent(&self) {
        let mut ready = self.ready.lock();
        while self.remaining.load(Ordering::Acquire) != 0 || ready.in_work != 0 {
            self.ready.wait(&mut ready);
        }
    }

    /// Runs tiles until the job drains. Called by every thread taking part
    /// in the job; returns when `remaining == 0` (all live tiles done, or
    /// the job aborted). `work(r, c)` unwinding aborts the job and the
    /// panic propagates to this participant's caller.
    pub fn participate(&self, work: impl Fn(usize, usize)) {
        loop {
            let tile = {
                let mut ready = self.ready.lock();
                loop {
                    if self.remaining.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    if let Some(t) = ready.queue.pop_front() {
                        // Claimed under the same lock that guards the
                        // quiescence census, so `wait_quiescent` can never
                        // observe in_work == 0 with this tile in flight.
                        ready.in_work += 1;
                        break t;
                    }
                    self.ready.wait(&mut ready);
                }
            };
            let (r, c) = tile;
            // Invariant 6: if `work` unwinds, the guard aborts the job so
            // every other participant drains; the panic then propagates.
            {
                let abort = AbortOnUnwind { core: self };
                work(r, c);
                std::mem::forget(abort);
            }

            // Publish completion, then release successors. The `AcqRel`
            // decrement chains both parents' clocks into whichever parent
            // drops the in-degree to zero, so the child observes *both*
            // parents' writes (invariant 5) no matter which parent
            // enqueues it.
            let (rows, cols) = (self.rows, self.cols);
            let mut newly_ready: [(usize, usize); 2] = [(usize::MAX, 0); 2];
            let mut n_new = 0;
            if r + 1 < rows
                && !self.skip[(r + 1) * cols + c]
                && self.indeg[(r + 1) * cols + c].fetch_sub(1, Ordering::AcqRel) == 1
            {
                newly_ready[n_new] = (r + 1, c);
                n_new += 1;
            }
            if c + 1 < cols
                && !self.skip[r * cols + c + 1]
                && self.indeg[r * cols + c + 1].fetch_sub(1, Ordering::AcqRel) == 1
            {
                newly_ready[n_new] = (r, c + 1);
                n_new += 1;
            }
            // Drain decrement, CAS-guarded so a concurrent abort's
            // `store(0)` is final: once zero, nobody decrements (which
            // would wrap) and nobody treats a stale tile as live.
            let mut cur = self.remaining.load(Ordering::Acquire);
            let last = loop {
                if cur == 0 {
                    // Aborted while this tile was in flight.
                    break false;
                }
                match self.remaining.compare_exchange(
                    cur,
                    cur - 1,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => break cur == 1,
                    Err(actual) => cur = actual,
                }
            };

            let mut ready = self.ready.lock();
            ready.in_work -= 1;
            for &t in &newly_ready[..n_new] {
                ready.queue.push_back(t);
            }
            let quiescent = ready.in_work == 0 && self.remaining.load(Ordering::Acquire) == 0;
            drop(ready);
            if last || quiescent {
                // Job complete (or aborted and now quiescent): wake
                // everyone — sleepers observe remaining == 0 and return,
                // and `wait_quiescent` observes the drained census.
                self.ready.notify_all();
            } else if n_new > 1 {
                self.ready.notify_all();
            } else if n_new == 1 {
                self.ready.notify_one();
            }
        }
    }
}

/// The synchronization-free sequential fill both front-ends use for
/// `threads == 1`: anti-diagonal order, a valid topological order of the
/// wavefront DAG.
pub fn sequential_wavefront(
    rows: usize,
    cols: usize,
    skip: impl Fn(usize, usize) -> bool,
    work: impl Fn(usize, usize),
) {
    if rows == 0 || cols == 0 {
        return;
    }
    for d in 0..rows + cols - 1 {
        let r_lo = d.saturating_sub(cols - 1);
        let r_hi = d.min(rows - 1);
        for r in r_lo..=r_hi {
            let c = d - r;
            if !skip(r, c) {
                work(r, c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::StdSync;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn core_counts_live_tiles_and_initial_degrees() {
        let skip = |r: usize, c: usize| r == 1 && c == 1;
        let mask: Vec<bool> = (0..4).map(|i| skip(i / 2, i % 2)).collect();
        let core = JobCore::<StdSync>::new(2, 2, mask);
        assert_eq!(core.live(), 3);
        assert!(!core.is_drained());
        assert!(!core.is_poisoned());
    }

    #[test]
    fn single_participant_drains_everything() {
        let core = JobCore::<StdSync>::new(3, 4, vec![false; 12]);
        let count = AtomicU64::new(0);
        core.participate(|_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.into_inner(), 12);
        assert!(core.is_drained());
        assert!(!core.is_poisoned());
    }

    #[test]
    fn abort_releases_participants_and_poisons() {
        let core = JobCore::<StdSync>::new(2, 2, vec![false; 4]);
        core.abort();
        assert!(core.is_drained());
        assert!(core.is_poisoned());
        // A participant joining after the abort returns immediately.
        core.participate(|_, _| panic!("job is drained"));
    }

    #[test]
    fn panicking_work_poisons_the_core() {
        let core = JobCore::<StdSync>::new(2, 2, vec![false; 4]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            core.participate(|r, c| {
                if (r, c) == (0, 1) {
                    panic!("tile failure");
                }
            });
        }));
        assert!(result.is_err());
        assert!(core.is_poisoned());
        assert!(core.is_drained());
    }

    #[test]
    fn cancel_abort_drains_and_reports_cancelled() {
        let core = JobCore::<StdSync>::new(3, 3, vec![false; 9]);
        let count = AtomicU64::new(0);
        core.participate(|r, c| {
            count.fetch_add(1, Ordering::Relaxed);
            if (r, c) == (1, 1) {
                core.abort_cancelled();
            }
        });
        assert!(core.is_drained());
        assert!(core.is_cancelled());
        // Cancellation aborts through the poison path; the front-ends
        // must therefore check `is_cancelled` first.
        assert!(core.is_poisoned());
        assert!(count.into_inner() < 9, "cancellation dropped the tail");
    }

    #[test]
    fn plain_abort_is_not_cancelled() {
        let core = JobCore::<StdSync>::new(2, 2, vec![false; 4]);
        core.abort();
        assert!(core.is_poisoned());
        assert!(!core.is_cancelled());
    }

    #[test]
    fn sequential_wavefront_is_topological() {
        let order = std::sync::Mutex::new(Vec::new());
        sequential_wavefront(
            3,
            5,
            |_, _| false,
            |r, c| {
                order.lock().unwrap().push((r, c));
            },
        );
        let order = order.into_inner().unwrap();
        assert_eq!(order.len(), 15);
        for (idx, &(r, c)) in order.iter().enumerate() {
            if r > 0 {
                assert!(order[..idx].contains(&(r - 1, c)));
            }
            if c > 0 {
                assert!(order[..idx].contains(&(r, c - 1)));
            }
        }
    }
}

//! Shared buffers with DAG-ordered disjoint writes.
//!
//! During a parallel fill, tile `(r, c)` writes segment `c` of boundary
//! row `r` while its row-neighbour writes segment `c+1` — disjoint ranges
//! of one vector, ordered by the wavefront scheduler. Rust's `&mut`
//! aliasing rules cannot express "disjoint at runtime, ordered by an
//! external DAG", so [`DisjointBuf`] provides the narrow unsafe escape
//! hatch with the invariants documented where they are relied on.

use std::cell::UnsafeCell;

/// A fixed-size buffer whose disjoint sub-ranges may be written from
/// multiple threads, provided the caller's scheduler orders conflicting
/// accesses.
///
/// # Safety contract (callers of the `unsafe` methods)
///
/// * Two concurrently outstanding `slice_mut` ranges must not overlap.
/// * A `slice` read overlapping a `slice_mut` write must be ordered after
///   it by a happens-before edge (the wavefront executor's ready-queue
///   mutex provides one between a tile and its dependents).
///
/// Under those rules every access is data-race free: each byte has a
/// unique writer at any time, and readers are ordered behind that writer.
#[derive(Debug)]
pub struct DisjointBuf<T> {
    data: UnsafeCell<Vec<T>>,
    len: usize,
}

// SAFETY: all aliasing is delegated to the caller contract above; the
// type itself adds no thread-affine state.
unsafe impl<T: Send> Sync for DisjointBuf<T> {}

impl<T: Copy + Default> DisjointBuf<T> {
    /// Allocates a zero/default-initialized buffer of `len` elements.
    pub fn new(len: usize) -> Self {
        DisjointBuf {
            data: UnsafeCell::new(vec![T::default(); len]),
            len,
        }
    }
}

impl<T> DisjointBuf<T> {
    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutable access to `range`.
    ///
    /// # Safety
    ///
    /// See the type-level contract: `range` must not overlap any other
    /// outstanding mutable range, and unordered readers must not touch it.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, range: std::ops::Range<usize>) -> &mut [T] {
        debug_assert!(range.end <= self.len);
        // SAFETY: the caller's contract above guarantees no aliasing access.
        let vec = unsafe { &mut *self.data.get() };
        &mut vec[range]
    }

    /// Shared access to `range`.
    ///
    /// # Safety
    ///
    /// See the type-level contract: every writer of an overlapping range
    /// must be ordered before this read.
    pub unsafe fn slice(&self, range: std::ops::Range<usize>) -> &[T] {
        debug_assert!(range.end <= self.len);
        // SAFETY: the caller's contract above orders all writers before us.
        let vec = unsafe { &*self.data.get() };
        &vec[range]
    }

    /// Consumes the buffer, returning the underlying vector. Requires
    /// `&mut self`, so all parallel work has provably finished.
    pub fn into_inner(self) -> Vec<T> {
        self.data.into_inner()
    }

    /// Reads one element.
    ///
    /// # Safety
    ///
    /// Same contract as [`DisjointBuf::slice`]: any writer of this index
    /// must be ordered before the read.
    #[inline(always)]
    pub unsafe fn get(&self, idx: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(idx < self.len);
        // SAFETY: the caller's contract above orders all writers before us.
        let vec = unsafe { &*self.data.get() };
        vec[idx]
    }

    /// Writes one element.
    ///
    /// # Safety
    ///
    /// Same contract as [`DisjointBuf::slice_mut`]: this index must not be
    /// concurrently accessed by any unordered reader or writer.
    #[inline(always)]
    pub unsafe fn set(&self, idx: usize, value: T) {
        debug_assert!(idx < self.len);
        // SAFETY: the caller's contract above guarantees no aliasing access.
        let vec = unsafe { &mut *self.data.get() };
        vec[idx] = value;
    }

    /// Exclusive view of the whole buffer (single-threaded phases).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        self.data.get_mut().as_mut_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{run_wavefront, WavefrontSpec};

    #[test]
    fn single_threaded_round_trip() {
        let mut buf = DisjointBuf::<i32>::new(8);
        buf.as_mut_slice()[3] = 42;
        assert_eq!(buf.len(), 8);
        let v = buf.into_inner();
        assert_eq!(v[3], 42);
        assert_eq!(v[0], 0);
    }

    #[test]
    fn wavefront_ordered_disjoint_writes_are_consistent() {
        // Tiles of a 4x4 wavefront each write their own 4-element segment
        // of a shared buffer after reading the left neighbour's segment —
        // exactly the FastLSA fill pattern. The final content must match
        // the sequential computation regardless of thread count.
        let rows = 4;
        let cols = 4;
        let seg = 4;
        let compute = |threads: usize| -> Vec<u64> {
            let buf = DisjointBuf::<u64>::new(rows * cols * seg);
            let spec = WavefrontSpec {
                rows,
                cols,
                skip: None,
            };
            run_wavefront(&spec, threads, &|r, c| {
                let base = (r * cols + c) * seg;
                let left_sum: u64 = if c > 0 {
                    // SAFETY: the left neighbour's segment was completed
                    // before this tile became ready (wavefront ordering).
                    unsafe { self::sum(&buf, base - seg..base) }
                } else {
                    r as u64
                };
                // SAFETY: segment `base..base+seg` is written only by
                // tile (r,c), which runs exactly once.
                let out = unsafe { buf.slice_mut(base..base + seg) };
                for (k, slot) in out.iter_mut().enumerate() {
                    *slot = left_sum + k as u64 + 1;
                }
            })
            .unwrap();
            buf.into_inner()
        };
        let seq = compute(1);
        assert_eq!(compute(4), seq);
    }

    // SAFETY: forwards `DisjointBuf::slice`'s contract — every writer of
    // `range` must be ordered before the call.
    unsafe fn sum(buf: &DisjointBuf<u64>, range: std::ops::Range<usize>) -> u64 {
        // SAFETY: forwarded to this fn's own contract (comment above).
        unsafe { buf.slice(range) }.iter().sum()
    }

    #[test]
    fn empty_buffer() {
        let buf = DisjointBuf::<i32>::new(0);
        assert!(buf.is_empty());
        assert!(buf.into_inner().is_empty());
    }
}

//! The paper's three-phase pipeline analysis (§5.2, Figure 13).
//!
//! A wavefront computation over an `R × C` tile grid with `P` processors
//! passes through three phases:
//!
//! 1. **ramp-up** — leading wavefront lines with fewer than `P` tiles
//!    (some processors idle);
//! 2. **saturated** — lines with at least `P` tiles (all processors busy);
//! 3. **drain** — trailing sub-`P` lines.
//!
//! From this census the paper derives Theorem 4's per-fill cost factor
//! `α = (1 + (P²−P)/(R·C)) / P` (Equation 32). This module computes the
//! census for arbitrary grids/skip masks and exposes the analytic factor;
//! experiment E9 compares the census against the formula's assumptions.

/// Census of a wavefront grid's three phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseBreakdown {
    /// Leading wavefront lines narrower than `P`.
    pub ramp_lines: usize,
    /// Tiles in those lines (paper: at most `P(P−1)/2`).
    pub ramp_tiles: usize,
    /// Wavefront lines with ≥ `P` tiles.
    pub saturated_lines: usize,
    /// Tiles in saturated lines.
    pub saturated_tiles: usize,
    /// Non-leading lines narrower than `P`.
    pub drain_lines: usize,
    /// Tiles in those lines.
    pub drain_tiles: usize,
}

impl PhaseBreakdown {
    /// All live tiles.
    pub fn total_tiles(&self) -> usize {
        self.ramp_tiles + self.saturated_tiles + self.drain_tiles
    }

    /// Upper bound on the schedule length in units of one tile time,
    /// following the paper's accounting: one parallel stage per
    /// ramp/drain line, perfect parallelism in the saturated phase.
    pub fn time_bound_tiles(&self, threads: usize) -> f64 {
        self.ramp_lines as f64
            + self.drain_lines as f64
            + (self.saturated_tiles as f64 / threads as f64)
    }
}

/// Computes the census of an `rows × cols` grid under `threads`
/// processors, with an optional skip mask (live = not skipped).
pub fn phase_breakdown(
    rows: usize,
    cols: usize,
    threads: usize,
    skip: Option<&dyn Fn(usize, usize) -> bool>,
) -> PhaseBreakdown {
    assert!(threads > 0, "at least one processor");
    let mut out = PhaseBreakdown::default();
    if rows == 0 || cols == 0 {
        return out;
    }
    let mut seen_saturated = false;
    for d in 0..rows + cols - 1 {
        let r_lo = d.saturating_sub(cols - 1);
        let r_hi = d.min(rows - 1);
        let width = (r_lo..=r_hi)
            .filter(|&r| skip.map(|f| !f(r, d - r)).unwrap_or(true))
            .count();
        if width == 0 {
            continue;
        }
        if width >= threads {
            seen_saturated = true;
            out.saturated_lines += 1;
            out.saturated_tiles += width;
        } else if !seen_saturated {
            out.ramp_lines += 1;
            out.ramp_tiles += width;
        } else {
            out.drain_lines += 1;
            out.drain_tiles += width;
        }
    }
    out
}

/// Theorem 4's per-fill cost factor `α = (1 + (P²−P)/(R·C)) / P`
/// (Equation 32): parallel fill time ≈ `M·N·α` for an `M × N` rectangle
/// tiled `R × C`.
pub fn alpha_factor(tile_rows: usize, tile_cols: usize, threads: usize) -> f64 {
    let rc = (tile_rows * tile_cols) as f64;
    let p = threads as f64;
    (1.0 + (p * p - p) / rc) / p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_census_matches_paper_counts() {
        // 12x12 grid, P = 8: ramp lines have widths 1..7 (paper: the first
        // phase has wavefronts of 1..P-1 tiles, P(P-1)/2 total).
        let pb = phase_breakdown(12, 12, 8, None);
        assert_eq!(pb.ramp_lines, 7);
        assert_eq!(pb.ramp_tiles, 7 * 8 / 2);
        assert_eq!(pb.total_tiles(), 144);
        // Symmetric drain.
        assert_eq!(pb.drain_lines, 7);
        assert_eq!(pb.drain_tiles, 7 * 8 / 2);
        assert_eq!(pb.saturated_tiles, 144 - 56);
    }

    #[test]
    fn single_processor_has_no_subsaturated_lines() {
        let pb = phase_breakdown(5, 7, 1, None);
        assert_eq!(pb.ramp_lines, 0);
        assert_eq!(pb.drain_lines, 0);
        assert_eq!(pb.saturated_tiles, 35);
    }

    #[test]
    fn skip_mask_reduces_tile_count() {
        // FastLSA Fill Cache shape: skip the bottom-right u x v corner.
        let (u, v) = (2, 3);
        let skip = move |r: usize, c: usize| r >= 6 - u && c >= 6 - v;
        let pb = phase_breakdown(6, 6, 4, Some(&skip));
        assert_eq!(pb.total_tiles(), 36 - u * v);
    }

    #[test]
    fn alpha_approaches_one_over_p_for_many_tiles() {
        let a = alpha_factor(100, 100, 8);
        assert!((a - 1.0 / 8.0).abs() < 0.001, "alpha {a}");
        // Few tiles: serialization pushes alpha up.
        let a_small = alpha_factor(4, 4, 8);
        assert!(a_small > 0.4, "alpha {a_small}");
    }

    #[test]
    fn time_bound_matches_equation_31_for_full_grids() {
        // Equation 31: PFillCacheT = (R·C + P² − P)/P in tile units; the
        // census-based bound must not exceed it on a full grid (the
        // equation's ramp/drain terms are worst-case P−1 each).
        for &(r, c, p) in &[(12usize, 12usize, 4usize), (16, 8, 8), (20, 20, 6)] {
            let pb = phase_breakdown(r, c, p, None);
            let census = pb.time_bound_tiles(p);
            let eq31 = ((r * c) as f64 + (p * p - p) as f64) / p as f64;
            assert!(
                census <= eq31 + 1e-9,
                "census {census} > eq31 {eq31} for ({r},{c},{p})"
            );
        }
    }

    #[test]
    fn empty_grid_has_empty_census() {
        let pb = phase_breakdown(0, 9, 4, None);
        assert_eq!(pb.total_tiles(), 0);
    }
}

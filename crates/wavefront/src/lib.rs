//! Wavefront (anti-diagonal) tile scheduling substrate.
//!
//! Parallel FastLSA (paper §5, Figures 7 and 13) partitions each Fill
//! Cache / Base Case computation into an `R × C` grid of tiles. Tile
//! `(r, c)` depends on `(r−1, c)` and `(r, c−1)`; tiles on the same
//! anti-diagonal are independent and run in parallel. This crate provides
//! that substrate, decoupled from alignment so it can be tested (and
//! reused) on its own:
//!
//! * [`sync`] — the synchronization shim ([`sync::SyncModel`]): the
//!   primitive surface the protocol is written against, with the real
//!   `parking_lot`/`std::sync::atomic` implementation ([`sync::StdSync`])
//!   for production and an instrumented virtual implementation in the
//!   `flsa-check` model checker;
//! * [`protocol`] — [`protocol::JobCore`], the generic wavefront
//!   scheduling protocol (ready queue + in-degrees + drain counter) both
//!   execution front-ends share, with its checked invariants documented;
//! * [`executor`] — run a tile DAG on real threads (`std::thread::scope`
//!   + atomic in-degree counters + a condvar-guarded ready queue);
//! * [`shared`] — [`shared::DisjointBuf`], the guarded shared buffer that
//!   lets tiles write disjoint segments of a common boundary vector;
//! * [`phases`] — the paper's three-phase pipeline census (ramp-up /
//!   saturated / drain) and the Theorem 4 `α` factor;
//! * [`sim`] — a deterministic virtual-processor schedule simulator used
//!   to reproduce the paper's speedup/efficiency figures on hardware with
//!   fewer cores than the paper's testbed (see DESIGN.md §2).

pub mod executor;
pub mod phases;
pub mod pool;
pub mod protocol;
pub mod shared;
pub mod sim;
pub mod sync;

pub use executor::{run_wavefront, run_wavefront_traced, WavefrontSpec};
pub use phases::{alpha_factor, PhaseBreakdown};
pub use pool::{PoolMetrics, WorkerPool};
pub use protocol::{sequential_wavefront, JobCore, JobError};
pub use shared::DisjointBuf;
pub use sim::{simulate_schedule, ScheduleResult};

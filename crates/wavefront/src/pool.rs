//! A persistent worker pool for repeated wavefront jobs.
//!
//! FastLSA executes one wavefront fill per recursion node — hundreds per
//! alignment. [`executor::run_wavefront`](crate::executor::run_wavefront)
//! spawns scoped threads per call; [`WorkerPool`] instead keeps `P − 1`
//! workers alive across jobs (the paper's implementation likewise reuses
//! its processes), eliminating per-fill spawn latency.
//!
//! ## Safety architecture
//!
//! Jobs borrow non-`'static` state (the tile closure captures the DP
//! buffers of the current fill), but pool threads are `'static`. The
//! lifetime is erased behind a raw pointer inside the internal `JobState`
//! with this protocol (the scheduling half lives in
//! [`JobCore`](crate::protocol::JobCore) and is model-checked by
//! `flsa-check`; see the invariant list in [`crate::protocol`]):
//!
//! * a worker may dereference the work pointer **only while executing a
//!   popped tile**, and claiming a tile increments the `in_work` census
//!   under the ready-queue monitor;
//! * [`WorkerPool::run`] exits — by return *or* unwind — only after
//!   [`JobCore::wait_quiescent`] observed `remaining == 0` with an empty
//!   in-work census, so every work call has finished and none can start
//!   (checked invariant 3, which holds on the abort path too);
//! * workers that receive the job message late observe `remaining == 0`
//!   (Acquire) and return without ever touching the pointer. The
//!   `JobState` itself is reference-counted, so late observers only touch
//!   owned memory.
//!
//! A panic inside a tile poisons the job (checked invariant 6): the other
//! participants drain without deadlock, the worker thread survives for
//! the next job, and [`WorkerPool::run`] surfaces the failure as
//! [`JobError::TilePanicked`] on the submitting thread. Cooperative
//! cancellation ([`WorkerPool::run_with_cancel`]) drains the same way and
//! surfaces as [`JobError::Cancelled`].

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crossbeam::channel::{unbounded, Sender};
use flsa_metrics::{names, Counter, Gauge, Histogram, Registry};

pub use crate::protocol::JobError;
use crate::protocol::{sequential_wavefront, JobCore};
use crate::sync::StdSync;

/// The borrowed tile closure a job runs.
type WorkFn = dyn Fn(usize, usize) + Sync;

/// The borrowed cancel predicate a job polls before each tile.
type CancelFn = dyn Fn() -> bool + Sync;

/// Type-erased wavefront job shared between the submitting thread and the
/// pool workers.
struct JobState {
    core: JobCore<StdSync>,
    /// Borrowed tile closure; see the module-level safety protocol.
    work: *const WorkFn,
    /// Borrowed cancel predicate, erased and guarded exactly like `work`
    /// (polled only while a claimed tile is in the `in_work` census).
    cancel: Option<*const CancelFn>,
}

// SAFETY: the raw `work` pointer is only dereferenced under the protocol
// documented at module level, which guarantees the referent outlives
// every dereference; all other fields are owned and Sync.
unsafe impl Send for JobState {}
// SAFETY: as for `Send` — aliasing of the raw pointer is governed by the
// module-level protocol, and `JobCore` is Sync by construction.
unsafe impl Sync for JobState {}

impl JobState {
    fn participate(&self) {
        self.core.participate(|r, c| {
            if let Some(cancel) = self.cancel {
                // SAFETY: same protocol as `work` below — the predicate is
                // only dereferenced while this tile is in the `in_work`
                // census, which `run` waits out before returning.
                if unsafe { &*cancel }() {
                    self.core.abort_cancelled();
                    return;
                }
            }
            // SAFETY: this closure runs only while its tile is counted in
            // the `in_work` census, and `run` blocks in `wait_quiescent`
            // until that census is empty — even when a tile panics — so
            // the submitting thread's frame (and the closure it borrows)
            // outlives every dereference here.
            let work = unsafe { &*self.work };
            work(r, c);
        });
    }
}

/// Cached registry handles for pool occupancy accounting.
///
/// Everything is recorded *around* the protocol, never inside
/// [`JobCore`] (which is model-checked and must stay metric-free): tile
/// work is timed where the pool wraps the user closure, and idle time is
/// measured around the dispatch-channel `recv` in the worker loop. The
/// ready queue itself lives inside the protocol monitor, so queue
/// pressure is exposed as the in-flight tile census
/// ([`names::TILES_INFLIGHT`] / [`names::TILES_INFLIGHT_PEAK`]) rather
/// than a queue-length gauge.
#[derive(Clone, Debug)]
pub struct PoolMetrics {
    busy_ns: Counter,
    idle_ns: Counter,
    parks: Counter,
    tiles: Counter,
    inflight: Gauge,
    inflight_peak: Gauge,
    tile_ns: Histogram,
}

impl PoolMetrics {
    /// Binds the wavefront occupancy handles in `reg`.
    pub fn new(reg: &Registry) -> Self {
        PoolMetrics {
            busy_ns: reg.counter(names::WORKER_BUSY_NS_TOTAL),
            idle_ns: reg.counter(names::WORKER_IDLE_NS_TOTAL),
            parks: reg.counter(names::WORKER_PARKS_TOTAL),
            tiles: reg.counter(names::TILES_TOTAL),
            inflight: reg.gauge(names::TILES_INFLIGHT),
            inflight_peak: reg.gauge(names::TILES_INFLIGHT_PEAK),
            tile_ns: reg.histogram(names::TILE_NS),
        }
    }

    /// Times one tile's work, attributing it to busy time, the tile
    /// latency histogram, and the in-flight census.
    fn tile(&self, r: usize, c: usize, work: &(dyn Fn(usize, usize) + Sync)) {
        // Decrement on unwind too: a panicking tile poisons its job but
        // must not wedge the census gauge for the rest of the process.
        struct InflightGuard<'a>(&'a Gauge);
        impl Drop for InflightGuard<'_> {
            fn drop(&mut self) {
                self.0.sub(1);
            }
        }
        let now = self.inflight.add_get(1);
        let _guard = InflightGuard(&self.inflight);
        // Advisory peak: the cheap load-and-compare keeps the common
        // steady-state case (census at or below the known peak) off the
        // contended RMW; racing threads under-count transient spikes by
        // at most the number of racers, fine for an occupancy indicator.
        if now > self.inflight_peak.get() {
            self.inflight_peak.fetch_max(now);
        }
        let start = Instant::now();
        work(r, c);
        let ns = start.elapsed().as_nanos() as u64;
        self.busy_ns.add(ns);
        self.tile_ns.record(ns);
        self.tiles.inc();
    }
}

/// A pool of `threads − 1` persistent workers plus the submitting thread.
///
/// # Examples
///
/// ```
/// use flsa_wavefront::pool::WorkerPool;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let mut pool = WorkerPool::new(4);
/// let count = AtomicU64::new(0);
/// pool.run(8, 8, |_, _| false, &|_r, _c| {
///     count.fetch_add(1, Ordering::Relaxed);
/// })
/// .unwrap();
/// assert_eq!(count.into_inner(), 64);
/// ```
pub struct WorkerPool {
    threads: usize,
    sender: Option<Sender<Arc<JobState>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Occupancy handles, shared with the worker threads (which are
    /// spawned before metrics can be attached, hence the `OnceLock`).
    metrics: Arc<OnceLock<PoolMetrics>>,
}

impl WorkerPool {
    /// Spawns a pool that executes jobs on `threads` threads total (the
    /// caller's thread participates, so `threads - 1` are spawned).
    ///
    /// # Panics
    ///
    /// Panics when `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "at least one thread required");
        let (sender, receiver) = unbounded::<Arc<JobState>>();
        let metrics: Arc<OnceLock<PoolMetrics>> = Arc::new(OnceLock::new());
        let mut handles = Vec::with_capacity(threads - 1);
        for _ in 1..threads {
            let rx = receiver.clone();
            let slot = Arc::clone(&metrics);
            handles.push(std::thread::spawn(move || {
                loop {
                    // The blocking `recv` is the pool's only idle point:
                    // time it so busy/idle occupancy can be computed, and
                    // count each successful wake-up as one park cycle.
                    let wait = Instant::now();
                    let Ok(job) = rx.recv() else { break };
                    if let Some(m) = slot.get() {
                        m.idle_ns.add(wait.elapsed().as_nanos() as u64);
                        m.parks.inc();
                    }
                    // A panicking tile poisons the job (the submitting
                    // thread re-raises it); swallow the unwind here so
                    // this worker survives for the next job.
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        job.participate();
                    }));
                }
            }));
        }
        WorkerPool {
            threads,
            sender: Some(sender),
            handles,
            metrics,
        }
    }

    /// Total threads (including the submitting one).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Attaches occupancy metrics to this pool. All subsequent jobs (on
    /// every thread) record busy/idle time, park counts, and per-tile
    /// latency through the handles. A second call is a no-op: the worker
    /// threads hold a `OnceLock` view of the handles.
    pub fn set_metrics(&self, metrics: PoolMetrics) {
        let _ = self.metrics.set(metrics);
    }

    /// Runs one wavefront job, blocking until every live tile finished.
    /// Semantics match [`crate::run_wavefront`]: `work(r, c)` runs once
    /// per non-skipped tile, after its up/left neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::TilePanicked`] when a tile's `work` panicked
    /// (on whichever thread it ran); the panic payload is contained and
    /// the pool stays usable for subsequent jobs. This call never returns
    /// before the job is quiescent, so on the error path too every
    /// in-flight `work` call has finished.
    pub fn run(
        &mut self,
        rows: usize,
        cols: usize,
        skip: impl Fn(usize, usize) -> bool,
        work: &(dyn Fn(usize, usize) + Sync),
    ) -> Result<(), JobError> {
        self.run_with_cancel(rows, cols, skip, work, None)
    }

    /// [`WorkerPool::run`] with a cooperative cancel predicate, polled
    /// before each tile on whichever thread claims it. When it first
    /// returns `true` the job aborts via
    /// [`JobCore::abort_cancelled`](crate::protocol::JobCore::abort_cancelled):
    /// tiles already inside `work` finish, nothing new starts, and this
    /// call returns [`JobError::Cancelled`] once the job drained.
    pub fn run_with_cancel(
        &mut self,
        rows: usize,
        cols: usize,
        skip: impl Fn(usize, usize) -> bool,
        work: &(dyn Fn(usize, usize) + Sync),
        cancel: Option<&(dyn Fn() -> bool + Sync)>,
    ) -> Result<(), JobError> {
        if rows == 0 || cols == 0 {
            return Ok(());
        }
        let skip_mask: Vec<bool> = (0..rows * cols).map(|i| skip(i / cols, i % cols)).collect();

        // With metrics attached, wrap the tile closure in the timing
        // shim. The wrapper lives in this frame, which `run_with_cancel`
        // only leaves after the job is quiescent, so the lifetime-erasure
        // protocol below is unchanged.
        let pool_metrics = self.metrics.get().cloned();
        let metered;
        let work: &(dyn Fn(usize, usize) + Sync) = match &pool_metrics {
            Some(m) => {
                metered = move |r: usize, c: usize| m.tile(r, c, work);
                &metered
            }
            None => work,
        };

        if self.threads == 1 {
            let cancelled = std::cell::Cell::new(false);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                sequential_wavefront(
                    rows,
                    cols,
                    |r, c| skip_mask[r * cols + c],
                    |r, c| {
                        if cancelled.get() {
                            return;
                        }
                        if let Some(cancel) = cancel {
                            if cancel() {
                                cancelled.set(true);
                                return;
                            }
                        }
                        work(r, c);
                    },
                );
            }));
            return match outcome {
                Err(_) => Err(JobError::TilePanicked),
                Ok(()) if cancelled.get() => Err(JobError::Cancelled),
                Ok(()) => Ok(()),
            };
        }

        let core = JobCore::<StdSync>::new(rows, cols, skip_mask);
        if core.live() == 0 {
            return Ok(());
        }

        // SAFETY: lifetime erasure — sound per the module-level protocol
        // because this function blocks until the job is quiescent (no
        // worker inside `work`, none able to start), so the erased borrow
        // outlives every dereference.
        // The source lifetime must stay inferred: naming it forces the
        // borrow to outlive 'static *before* the transmute launders it.
        #[allow(clippy::missing_transmute_annotations)]
        let work_erased: *const WorkFn = unsafe { std::mem::transmute::<_, &'static WorkFn>(work) };
        #[allow(clippy::missing_transmute_annotations)]
        let cancel_erased: Option<*const CancelFn> = cancel.map(|c| {
            // SAFETY: as for `work` — same erasure, same quiescence guarantee.
            (unsafe { std::mem::transmute::<_, &'static CancelFn>(c) }) as *const _
        });
        let job = Arc::new(JobState {
            core,
            work: work_erased,
            cancel: cancel_erased,
        });
        // flsa-check: allow(unwrap) — sender is Some until drop
        let sender = self.sender.as_ref().expect("pool is alive");
        for _ in 1..self.threads {
            sender
                .send(Arc::clone(&job))
                // flsa-check: allow(unwrap) — receivers live as long as the pool
                .expect("workers outlive the pool");
        }
        // The submitting thread participates too. Whether its own
        // participation returns cleanly or unwinds (a tile panicked right
        // here), `run` must not exit before the job is quiescent: workers
        // may still be inside `work`, and the closure dies with this frame.
        let participation =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job.participate()));
        job.core.wait_quiescent();
        debug_assert!(job.core.is_drained());
        // A submitter-side tile panic already poisoned the core via the
        // unwind guard; the payload is dropped in favour of the structured
        // error so both worker- and submitter-side failures look alike.
        if job.core.is_cancelled() {
            Err(JobError::Cancelled)
        } else if participation.is_err() || job.core.is_poisoned() {
            Err(JobError::TilePanicked)
        } else {
            Ok(())
        }
    }

    /// [`WorkerPool::run_with_cancel`] with optional per-tile tracing.
    /// With `tracer == None` this is exactly `run_with_cancel` (the
    /// disabled path adds nothing to the per-tile work); with a tracer,
    /// each tile's work is timed and the whole job is wrapped in a
    /// fill-region event.
    pub fn run_traced(
        &mut self,
        rows: usize,
        cols: usize,
        skip: impl Fn(usize, usize) -> bool,
        work: &(dyn Fn(usize, usize) + Sync),
        cancel: Option<&(dyn Fn() -> bool + Sync)>,
        tracer: Option<&flsa_trace::TileTracer<'_>>,
    ) -> Result<(), JobError> {
        match tracer {
            None => self.run_with_cancel(rows, cols, skip, work, cancel),
            Some(t) => {
                let threads = self.threads;
                let mut outcome = Ok(());
                t.region(rows, cols, threads, || {
                    outcome = self.run_with_cancel(
                        rows,
                        cols,
                        skip,
                        &|r, c| t.tile(r, c, || work(r, c)),
                        cancel,
                    );
                });
                outcome
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel stops the workers; join to surface panics.
        self.sender.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex as StdMutex;

    #[test]
    fn pool_runs_every_tile_once() {
        let mut pool = WorkerPool::new(4);
        let visited = StdMutex::new(Vec::new());
        pool.run(5, 7, |_, _| false, &|r, c| {
            visited.lock().unwrap().push((r, c))
        })
        .unwrap();
        let mut v = visited.into_inner().unwrap();
        v.sort_unstable();
        let mut expect: Vec<(usize, usize)> =
            (0..5).flat_map(|r| (0..7).map(move |c| (r, c))).collect();
        expect.sort_unstable();
        assert_eq!(v, expect);
    }

    #[test]
    fn pool_respects_dependencies_across_repeated_jobs() {
        // Many consecutive jobs through the same pool — the FastLSA usage
        // pattern — each checked for dependency order via stamps.
        let mut pool = WorkerPool::new(3);
        for round in 0..50 {
            let rows = 1 + round % 5;
            let cols = 1 + (round * 3) % 6;
            let cells: Vec<AtomicU64> = (0..rows * cols).map(|_| AtomicU64::new(0)).collect();
            pool.run(rows, cols, |_, _| false, &|r, c| {
                if r > 0 {
                    assert_ne!(cells[(r - 1) * cols + c].load(Ordering::Acquire), 0);
                }
                if c > 0 {
                    assert_ne!(cells[r * cols + c - 1].load(Ordering::Acquire), 0);
                }
                cells[r * cols + c].store(1 + (r * cols + c) as u64, Ordering::Release);
            })
            .unwrap();
            assert!(
                cells.iter().all(|c| c.load(Ordering::Relaxed) != 0),
                "round {round}"
            );
        }
    }

    #[test]
    fn pool_matches_scoped_executor_results() {
        let rows = 9;
        let cols = 11;
        let compute_pool = |threads: usize| -> Vec<u64> {
            let mut pool = WorkerPool::new(threads);
            let table: Vec<AtomicU64> = (0..rows * cols).map(|_| AtomicU64::new(0)).collect();
            pool.run(rows, cols, |_, _| false, &|r, c| {
                let up = if r > 0 {
                    table[(r - 1) * cols + c].load(Ordering::Acquire)
                } else {
                    1
                };
                let left = if c > 0 {
                    table[r * cols + c - 1].load(Ordering::Acquire)
                } else {
                    1
                };
                table[r * cols + c].store(up + left + (r * cols + c) as u64, Ordering::Release);
            })
            .unwrap();
            table.into_iter().map(|a| a.into_inner()).collect()
        };
        let seq = compute_pool(1);
        for threads in [2usize, 4, 8] {
            assert_eq!(compute_pool(threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn pool_honours_skip_mask() {
        let mut pool = WorkerPool::new(4);
        let count = AtomicU64::new(0);
        pool.run(6, 6, |r, c| r >= 4 && c >= 3, &|_r, _c| {
            count.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(count.into_inner(), 36 - 6);
    }

    #[test]
    fn single_thread_pool_is_sequential() {
        let mut pool = WorkerPool::new(1);
        let order = StdMutex::new(Vec::new());
        pool.run(3, 3, |_, _| false, &|r, c| {
            order.lock().unwrap().push((r, c))
        })
        .unwrap();
        let order = order.into_inner().unwrap();
        assert_eq!(order.len(), 9);
        assert_eq!(order[0], (0, 0));
        assert_eq!(*order.last().unwrap(), (2, 2));
    }

    #[test]
    fn empty_and_fully_skipped_jobs_return_immediately() {
        let mut pool = WorkerPool::new(3);
        pool.run(0, 4, |_, _| false, &|_, _| panic!("no tiles"))
            .unwrap();
        pool.run(3, 3, |_, _| true, &|_, _| panic!("all skipped"))
            .unwrap();
    }

    #[test]
    fn panicking_tile_fails_the_job_but_not_the_pool() {
        for threads in [1usize, 4] {
            let mut pool = WorkerPool::new(threads);
            let result = pool.run(4, 4, |_, _| false, &|r, c| {
                if (r, c) == (2, 2) {
                    panic!("tile failure");
                }
            });
            assert_eq!(result, Err(JobError::TilePanicked), "threads={threads}");
            // The pool survives a poisoned job and runs the next one cleanly.
            let count = AtomicU64::new(0);
            pool.run(3, 3, |_, _| false, &|_, _| {
                count.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
            assert_eq!(count.into_inner(), 9);
        }
    }

    #[test]
    fn cancelled_job_drains_and_reports_cancelled() {
        for threads in [1usize, 4] {
            let mut pool = WorkerPool::new(threads);
            let fired = AtomicU64::new(0);
            let ran = AtomicU64::new(0);
            let result = pool.run_with_cancel(
                8,
                8,
                |_, _| false,
                &|_, _| {
                    ran.fetch_add(1, Ordering::Relaxed);
                },
                Some(&|| fired.fetch_add(1, Ordering::Relaxed) >= 5),
            );
            assert_eq!(result, Err(JobError::Cancelled), "threads={threads}");
            assert!(
                ran.load(Ordering::Relaxed) < 64,
                "cancellation must drop the tail (threads={threads})"
            );
            // The pool stays usable after a cancelled job.
            let count = AtomicU64::new(0);
            pool.run(3, 3, |_, _| false, &|_, _| {
                count.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
            assert_eq!(count.into_inner(), 9);
        }
    }

    #[test]
    fn never_firing_cancel_predicate_is_harmless() {
        let mut pool = WorkerPool::new(4);
        let count = AtomicU64::new(0);
        pool.run_with_cancel(
            5,
            5,
            |_, _| false,
            &|_, _| {
                count.fetch_add(1, Ordering::Relaxed);
            },
            Some(&|| false),
        )
        .unwrap();
        assert_eq!(count.into_inner(), 25);
    }

    #[test]
    fn traced_pool_run_links_tiles_to_their_fill() {
        use flsa_trace::{EventKind, Recorder, TileKind, TileTracer};
        let recorder = Recorder::new();
        let mut pool = WorkerPool::new(4);
        for round in 0..3 {
            let tracer = TileTracer::new(&recorder, TileKind::BaseFill);
            pool.run_traced(3, 3, |_, _| false, &|_, _| {}, None, Some(&tracer))
                .unwrap();
            let trace = recorder.snapshot();
            let this_fill = trace
                .events
                .iter()
                .filter(
                    |e| matches!(e.kind, EventKind::Tile { fill, .. } if fill == tracer.fill_id()),
                )
                .count();
            assert_eq!(this_fill, 9, "round {round}");
        }
        // Untraced path records nothing.
        let before = recorder.snapshot().events.len();
        pool.run_traced(2, 2, |_, _| false, &|_, _| {}, None, None)
            .unwrap();
        assert_eq!(recorder.snapshot().events.len(), before);
    }

    #[test]
    fn pool_metrics_account_tiles_and_occupancy() {
        let reg = Registry::new();
        let mut pool = WorkerPool::new(4);
        pool.set_metrics(PoolMetrics::new(&reg));
        pool.run(6, 6, |_, _| false, &|_, _| {
            std::hint::black_box(0u64);
        })
        .unwrap();
        pool.run(2, 2, |r, c| r == 1 && c == 1, &|_, _| {}).unwrap();
        // Join the workers so every park/idle sample has landed.
        drop(pool);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(names::TILES_TOTAL), Some(36 + 3));
        let h = snap.histogram(names::TILE_NS).unwrap();
        assert_eq!(h.count, 36 + 3);
        assert!(snap.counter(names::WORKER_BUSY_NS_TOTAL).unwrap() > 0);
        // Each of the 3 workers received each of the 2 jobs once.
        assert_eq!(snap.counter(names::WORKER_PARKS_TOTAL), Some(6));
        assert_eq!(snap.gauge(names::TILES_INFLIGHT), Some(0));
        let peak = snap.gauge(names::TILES_INFLIGHT_PEAK).unwrap();
        assert!((1..=4).contains(&peak), "peak={peak}");
    }

    #[test]
    fn sequential_pool_records_tiles_without_idle_time() {
        let reg = Registry::new();
        let mut pool = WorkerPool::new(1);
        pool.set_metrics(PoolMetrics::new(&reg));
        pool.run(3, 4, |_, _| false, &|_, _| {}).unwrap();
        drop(pool);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(names::TILES_TOTAL), Some(12));
        assert_eq!(snap.counter(names::WORKER_PARKS_TOTAL), Some(0));
        assert_eq!(snap.counter(names::WORKER_IDLE_NS_TOTAL), Some(0));
        assert_eq!(snap.gauge(names::TILES_INFLIGHT), Some(0));
    }

    #[test]
    fn metrics_inflight_census_recovers_from_tile_panics() {
        let reg = Registry::new();
        let mut pool = WorkerPool::new(2);
        pool.set_metrics(PoolMetrics::new(&reg));
        let result = pool.run(3, 3, |_, _| false, &|r, c| {
            if (r, c) == (1, 1) {
                panic!("tile failure");
            }
        });
        assert_eq!(result, Err(JobError::TilePanicked));
        drop(pool);
        assert_eq!(reg.snapshot().gauge(names::TILES_INFLIGHT), Some(0));
    }

    #[test]
    fn pool_survives_many_tiny_jobs() {
        let mut pool = WorkerPool::new(4);
        let total = AtomicU64::new(0);
        for _ in 0..500 {
            pool.run(1, 1, |_, _| false, &|_, _| {
                total.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        assert_eq!(total.into_inner(), 500);
    }
}

//! A persistent worker pool for repeated wavefront jobs.
//!
//! FastLSA executes one wavefront fill per recursion node — hundreds per
//! alignment. [`executor::run_wavefront`](crate::executor::run_wavefront)
//! spawns scoped threads per call; [`WorkerPool`] instead keeps `P − 1`
//! workers alive across jobs (the paper's implementation likewise reuses
//! its processes), eliminating per-fill spawn latency.
//!
//! ## Safety architecture
//!
//! Jobs borrow non-`'static` state (the tile closure captures the DP
//! buffers of the current fill), but pool threads are `'static`. The
//! lifetime is erased behind a raw pointer inside the internal `JobState`
//! with this protocol (the scheduling half lives in
//! [`JobCore`](crate::protocol::JobCore) and is model-checked by
//! `flsa-check`; see the invariant list in [`crate::protocol`]):
//!
//! * a worker may dereference the work pointer **only while executing a
//!   popped tile**, and claiming a tile increments the `in_work` census
//!   under the ready-queue monitor;
//! * [`WorkerPool::run`] exits — by return *or* unwind — only after
//!   [`JobCore::wait_quiescent`] observed `remaining == 0` with an empty
//!   in-work census, so every work call has finished and none can start
//!   (checked invariant 3, which holds on the abort path too);
//! * workers that receive the job message late observe `remaining == 0`
//!   (Acquire) and return without ever touching the pointer. The
//!   `JobState` itself is reference-counted, so late observers only touch
//!   owned memory.
//!
//! A panic inside a tile poisons the job (checked invariant 6): the other
//! participants drain without deadlock, the worker thread survives for
//! the next job, and [`WorkerPool::run`] re-raises the failure on the
//! submitting thread.

use std::sync::Arc;

use crossbeam::channel::{unbounded, Sender};

use crate::protocol::{sequential_wavefront, JobCore};
use crate::sync::StdSync;

/// The borrowed tile closure a job runs.
type WorkFn = dyn Fn(usize, usize) + Sync;

/// Type-erased wavefront job shared between the submitting thread and the
/// pool workers.
struct JobState {
    core: JobCore<StdSync>,
    /// Borrowed tile closure; see the module-level safety protocol.
    work: *const WorkFn,
}

// SAFETY: the raw `work` pointer is only dereferenced under the protocol
// documented at module level, which guarantees the referent outlives
// every dereference; all other fields are owned and Sync.
unsafe impl Send for JobState {}
// SAFETY: as for `Send` — aliasing of the raw pointer is governed by the
// module-level protocol, and `JobCore` is Sync by construction.
unsafe impl Sync for JobState {}

impl JobState {
    fn participate(&self) {
        self.core.participate(|r, c| {
            // SAFETY: this closure runs only while its tile is counted in
            // the `in_work` census, and `run` blocks in `wait_quiescent`
            // until that census is empty — even when a tile panics — so
            // the submitting thread's frame (and the closure it borrows)
            // outlives every dereference here.
            let work = unsafe { &*self.work };
            work(r, c);
        });
    }
}

/// A pool of `threads − 1` persistent workers plus the submitting thread.
///
/// # Examples
///
/// ```
/// use flsa_wavefront::pool::WorkerPool;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let mut pool = WorkerPool::new(4);
/// let count = AtomicU64::new(0);
/// pool.run(8, 8, |_, _| false, &|_r, _c| {
///     count.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(count.into_inner(), 64);
/// ```
pub struct WorkerPool {
    threads: usize,
    sender: Option<Sender<Arc<JobState>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool that executes jobs on `threads` threads total (the
    /// caller's thread participates, so `threads - 1` are spawned).
    ///
    /// # Panics
    ///
    /// Panics when `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "at least one thread required");
        let (sender, receiver) = unbounded::<Arc<JobState>>();
        let mut handles = Vec::with_capacity(threads - 1);
        for _ in 1..threads {
            let rx = receiver.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    // A panicking tile poisons the job (the submitting
                    // thread re-raises it); swallow the unwind here so
                    // this worker survives for the next job.
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        job.participate();
                    }));
                }
            }));
        }
        WorkerPool {
            threads,
            sender: Some(sender),
            handles,
        }
    }

    /// Total threads (including the submitting one).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs one wavefront job, blocking until every live tile finished.
    /// Semantics match [`crate::run_wavefront`]: `work(r, c)` runs once
    /// per non-skipped tile, after its up/left neighbours.
    ///
    /// # Panics
    ///
    /// Panics when a tile's `work` panics (on whichever thread it ran);
    /// the pool itself stays usable for subsequent jobs.
    pub fn run(
        &mut self,
        rows: usize,
        cols: usize,
        skip: impl Fn(usize, usize) -> bool,
        work: &(dyn Fn(usize, usize) + Sync),
    ) {
        if rows == 0 || cols == 0 {
            return;
        }
        let skip_mask: Vec<bool> = (0..rows * cols).map(|i| skip(i / cols, i % cols)).collect();

        if self.threads == 1 {
            sequential_wavefront(rows, cols, |r, c| skip_mask[r * cols + c], work);
            return;
        }

        let core = JobCore::<StdSync>::new(rows, cols, skip_mask);
        if core.live() == 0 {
            return;
        }

        // SAFETY: lifetime erasure — sound per the module-level protocol
        // because this function blocks until the job is quiescent (no
        // worker inside `work`, none able to start), so the erased borrow
        // outlives every dereference.
        let work_erased: *const WorkFn = unsafe { std::mem::transmute::<_, &'static WorkFn>(work) };
        let job = Arc::new(JobState {
            core,
            work: work_erased,
        });
        let sender = self.sender.as_ref().expect("pool is alive");
        for _ in 1..self.threads {
            sender
                .send(Arc::clone(&job))
                .expect("workers outlive the pool");
        }
        // The submitting thread participates too. Whether its own
        // participation returns cleanly or unwinds (a tile panicked right
        // here), `run` must not exit before the job is quiescent: workers
        // may still be inside `work`, and the closure dies with this frame.
        let participation =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job.participate()));
        job.core.wait_quiescent();
        if let Err(payload) = participation {
            std::panic::resume_unwind(payload);
        }
        debug_assert!(job.core.is_drained());
        if job.core.is_poisoned() {
            panic!("a wavefront tile panicked on a pool worker thread");
        }
    }

    /// [`WorkerPool::run`] with optional per-tile tracing. With
    /// `tracer == None` this is exactly `run` (the disabled path adds
    /// nothing to the per-tile work); with a tracer, each tile's work is
    /// timed and the whole job is wrapped in a fill-region event.
    pub fn run_traced(
        &mut self,
        rows: usize,
        cols: usize,
        skip: impl Fn(usize, usize) -> bool,
        work: &(dyn Fn(usize, usize) + Sync),
        tracer: Option<&flsa_trace::TileTracer<'_>>,
    ) {
        match tracer {
            None => self.run(rows, cols, skip, work),
            Some(t) => {
                let threads = self.threads;
                t.region(rows, cols, threads, || {
                    self.run(rows, cols, skip, &|r, c| t.tile(r, c, || work(r, c)));
                });
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel stops the workers; join to surface panics.
        self.sender.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex as StdMutex;

    #[test]
    fn pool_runs_every_tile_once() {
        let mut pool = WorkerPool::new(4);
        let visited = StdMutex::new(Vec::new());
        pool.run(5, 7, |_, _| false, &|r, c| {
            visited.lock().unwrap().push((r, c))
        });
        let mut v = visited.into_inner().unwrap();
        v.sort_unstable();
        let mut expect: Vec<(usize, usize)> =
            (0..5).flat_map(|r| (0..7).map(move |c| (r, c))).collect();
        expect.sort_unstable();
        assert_eq!(v, expect);
    }

    #[test]
    fn pool_respects_dependencies_across_repeated_jobs() {
        // Many consecutive jobs through the same pool — the FastLSA usage
        // pattern — each checked for dependency order via stamps.
        let mut pool = WorkerPool::new(3);
        for round in 0..50 {
            let rows = 1 + round % 5;
            let cols = 1 + (round * 3) % 6;
            let cells: Vec<AtomicU64> = (0..rows * cols).map(|_| AtomicU64::new(0)).collect();
            pool.run(rows, cols, |_, _| false, &|r, c| {
                if r > 0 {
                    assert_ne!(cells[(r - 1) * cols + c].load(Ordering::Acquire), 0);
                }
                if c > 0 {
                    assert_ne!(cells[r * cols + c - 1].load(Ordering::Acquire), 0);
                }
                cells[r * cols + c].store(1 + (r * cols + c) as u64, Ordering::Release);
            });
            assert!(
                cells.iter().all(|c| c.load(Ordering::Relaxed) != 0),
                "round {round}"
            );
        }
    }

    #[test]
    fn pool_matches_scoped_executor_results() {
        let rows = 9;
        let cols = 11;
        let compute_pool = |threads: usize| -> Vec<u64> {
            let mut pool = WorkerPool::new(threads);
            let table: Vec<AtomicU64> = (0..rows * cols).map(|_| AtomicU64::new(0)).collect();
            pool.run(rows, cols, |_, _| false, &|r, c| {
                let up = if r > 0 {
                    table[(r - 1) * cols + c].load(Ordering::Acquire)
                } else {
                    1
                };
                let left = if c > 0 {
                    table[r * cols + c - 1].load(Ordering::Acquire)
                } else {
                    1
                };
                table[r * cols + c].store(up + left + (r * cols + c) as u64, Ordering::Release);
            });
            table.into_iter().map(|a| a.into_inner()).collect()
        };
        let seq = compute_pool(1);
        for threads in [2usize, 4, 8] {
            assert_eq!(compute_pool(threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn pool_honours_skip_mask() {
        let mut pool = WorkerPool::new(4);
        let count = AtomicU64::new(0);
        pool.run(6, 6, |r, c| r >= 4 && c >= 3, &|_r, _c| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.into_inner(), 36 - 6);
    }

    #[test]
    fn single_thread_pool_is_sequential() {
        let mut pool = WorkerPool::new(1);
        let order = StdMutex::new(Vec::new());
        pool.run(3, 3, |_, _| false, &|r, c| {
            order.lock().unwrap().push((r, c))
        });
        let order = order.into_inner().unwrap();
        assert_eq!(order.len(), 9);
        assert_eq!(order[0], (0, 0));
        assert_eq!(*order.last().unwrap(), (2, 2));
    }

    #[test]
    fn empty_and_fully_skipped_jobs_return_immediately() {
        let mut pool = WorkerPool::new(3);
        pool.run(0, 4, |_, _| false, &|_, _| panic!("no tiles"));
        pool.run(3, 3, |_, _| true, &|_, _| panic!("all skipped"));
    }

    #[test]
    fn panicking_tile_fails_the_job_but_not_the_pool() {
        let mut pool = WorkerPool::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(4, 4, |_, _| false, &|r, c| {
                if (r, c) == (2, 2) {
                    panic!("tile failure");
                }
            });
        }));
        assert!(result.is_err());
        // The pool survives a poisoned job and runs the next one cleanly.
        let count = AtomicU64::new(0);
        pool.run(3, 3, |_, _| false, &|_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.into_inner(), 9);
    }

    #[test]
    fn traced_pool_run_links_tiles_to_their_fill() {
        use flsa_trace::{EventKind, Recorder, TileKind, TileTracer};
        let recorder = Recorder::new();
        let mut pool = WorkerPool::new(4);
        for round in 0..3 {
            let tracer = TileTracer::new(&recorder, TileKind::BaseFill);
            pool.run_traced(3, 3, |_, _| false, &|_, _| {}, Some(&tracer));
            let trace = recorder.snapshot();
            let this_fill = trace
                .events
                .iter()
                .filter(
                    |e| matches!(e.kind, EventKind::Tile { fill, .. } if fill == tracer.fill_id()),
                )
                .count();
            assert_eq!(this_fill, 9, "round {round}");
        }
        // Untraced path records nothing.
        let before = recorder.snapshot().events.len();
        pool.run_traced(2, 2, |_, _| false, &|_, _| {}, None);
        assert_eq!(recorder.snapshot().events.len(), before);
    }

    #[test]
    fn pool_survives_many_tiny_jobs() {
        let mut pool = WorkerPool::new(4);
        let total = AtomicU64::new(0);
        for _ in 0..500 {
            pool.run(1, 1, |_, _| false, &|_, _| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.into_inner(), 500);
    }
}

//! Synchronization shim: the primitive surface the wavefront protocol is
//! written against.
//!
//! The scheduling protocol in [`crate::protocol`] touches exactly three
//! kinds of primitives: a monitor (mutex + condition variable fused, the
//! classic Hoare monitor — `parking_lot`'s condvar is bound to a single
//! mutex anyway), a `u32` atomic (per-tile in-degrees) and a `usize`
//! atomic (the remaining-tiles counter). This module abstracts those
//! behind the [`SyncModel`] trait so the *same* protocol code runs on two
//! implementations:
//!
//! * [`StdSync`] — real `parking_lot` locks and `std` atomics, used by
//!   [`crate::pool::WorkerPool`] and [`crate::executor::run_wavefront`]
//!   in production. Every method is an `#[inline]` delegation, so the
//!   monomorphized protocol compiles to the exact code it replaced.
//! * `VirtSync` in the `flsa-check` crate — instrumented virtual
//!   primitives under a deterministic scheduler that explores thread
//!   interleavings and tracks happens-before edges with vector clocks
//!   (a loom-style model checker; see DESIGN.md §8).
//!
//! The [`Ordering`] arguments are forwarded verbatim: the production
//! implementation hands them to the hardware, the checked implementation
//! interprets them (only `Acquire`/`Release`/`AcqRel`/`SeqCst` transfer
//! clock state, so a wrongly-`Relaxed` operation shows up as a detected
//! race instead of silently working on x86).

use std::ops::DerefMut;
use std::sync::atomic::Ordering;

/// A family of synchronization primitives the wavefront protocol can run
/// on. See the module docs for the two implementations.
pub trait SyncModel: 'static {
    /// Mutex + condvar over a value of type `T`.
    type Monitor<T: Send + 'static>: Monitor<T>;
    /// Atomic `u32` (per-tile in-degree counters).
    type AtomicU32: AtomicInt<u32>;
    /// Atomic `usize` (remaining-tiles counter, poison flag).
    type AtomicUsize: AtomicInt<usize>;
}

/// A mutex fused with its condition variable.
///
/// `wait` takes the guard by `&mut` (parking_lot style): it atomically
/// releases the lock, blocks, and re-acquires before returning. Waits may
/// wake spuriously; callers must re-check their predicate in a loop (the
/// model checker exercises spurious wakeups deliberately).
pub trait Monitor<T: Send>: Send + Sync {
    /// RAII lock guard.
    type Guard<'a>: DerefMut<Target = T>
    where
        Self: 'a,
        T: 'a;

    /// Creates the monitor owning `value`.
    fn new(value: T) -> Self;
    /// Blocks until the lock is held.
    fn lock(&self) -> Self::Guard<'_>;
    /// Atomically unlocks, sleeps, and re-locks. May wake spuriously.
    fn wait<'a>(&'a self, guard: &mut Self::Guard<'a>);
    /// Wakes one waiter (if any).
    fn notify_one(&self);
    /// Wakes every waiter.
    fn notify_all(&self);
}

/// An atomic integer with explicit memory orderings.
pub trait AtomicInt<V: Copy>: Send + Sync {
    /// Creates the atomic holding `v`.
    fn new(v: V) -> Self;
    /// Atomic load.
    fn load(&self, order: Ordering) -> V;
    /// Atomic store.
    fn store(&self, v: V, order: Ordering);
    /// Atomic subtract, returning the previous value.
    fn fetch_sub(&self, v: V, order: Ordering) -> V;
    /// Atomic compare-and-swap: when the value equals `current`, replaces
    /// it with `new` under `success` ordering and returns `Ok(current)`;
    /// otherwise returns `Err(actual)` under `failure` ordering.
    fn compare_exchange(
        &self,
        current: V,
        new: V,
        success: Ordering,
        failure: Ordering,
    ) -> Result<V, V>;
}

/// The production model: `parking_lot` locks, `std` atomics.
pub struct StdSync;

/// [`Monitor`] on `parking_lot::{Mutex, Condvar}`.
pub struct StdMonitor<T> {
    mutex: parking_lot::Mutex<T>,
    cv: parking_lot::Condvar,
}

impl<T: Send> Monitor<T> for StdMonitor<T> {
    type Guard<'a>
        = parking_lot::MutexGuard<'a, T>
    where
        T: 'a;

    #[inline]
    fn new(value: T) -> Self {
        StdMonitor {
            mutex: parking_lot::Mutex::new(value),
            cv: parking_lot::Condvar::new(),
        }
    }

    #[inline]
    fn lock(&self) -> Self::Guard<'_> {
        self.mutex.lock()
    }

    #[inline]
    fn wait<'a>(&'a self, guard: &mut Self::Guard<'a>) {
        self.cv.wait(guard);
    }

    #[inline]
    fn notify_one(&self) {
        self.cv.notify_one();
    }

    #[inline]
    fn notify_all(&self) {
        self.cv.notify_all();
    }
}

macro_rules! std_atomic {
    ($atomic:ty, $value:ty) => {
        impl AtomicInt<$value> for $atomic {
            #[inline]
            fn new(v: $value) -> Self {
                <$atomic>::new(v)
            }

            #[inline]
            fn load(&self, order: Ordering) -> $value {
                self.load(order)
            }

            #[inline]
            fn store(&self, v: $value, order: Ordering) {
                self.store(v, order)
            }

            #[inline]
            fn fetch_sub(&self, v: $value, order: Ordering) -> $value {
                self.fetch_sub(v, order)
            }

            #[inline]
            fn compare_exchange(
                &self,
                current: $value,
                new: $value,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$value, $value> {
                <$atomic>::compare_exchange(self, current, new, success, failure)
            }
        }
    };
}

std_atomic!(std::sync::atomic::AtomicU32, u32);
std_atomic!(std::sync::atomic::AtomicUsize, usize);

impl SyncModel for StdSync {
    type Monitor<T: Send + 'static> = StdMonitor<T>;
    type AtomicU32 = std::sync::atomic::AtomicU32;
    type AtomicUsize = std::sync::atomic::AtomicUsize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_monitor_round_trip() {
        let m: StdMonitor<i32> = Monitor::new(7);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 8);
        m.notify_one();
        m.notify_all();
    }

    #[test]
    fn std_atomics_delegate() {
        let a = <std::sync::atomic::AtomicU32 as AtomicInt<u32>>::new(5);
        assert_eq!(AtomicInt::fetch_sub(&a, 2, Ordering::AcqRel), 5);
        assert_eq!(AtomicInt::load(&a, Ordering::Acquire), 3);
        AtomicInt::store(&a, 9, Ordering::Release);
        assert_eq!(AtomicInt::load(&a, Ordering::Acquire), 9);
        assert_eq!(
            AtomicInt::compare_exchange(&a, 9, 4, Ordering::AcqRel, Ordering::Acquire),
            Ok(9)
        );
        assert_eq!(
            AtomicInt::compare_exchange(&a, 9, 7, Ordering::AcqRel, Ordering::Acquire),
            Err(4)
        );
    }

    #[test]
    fn monitor_wait_wakes_on_notify() {
        use std::sync::Arc;
        let m: Arc<StdMonitor<bool>> = Arc::new(Monitor::new(false));
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                m2.wait(&mut g);
            }
        });
        // Flip the flag under the lock, then wake the waiter.
        *m.lock() = true;
        m.notify_all();
        h.join().unwrap();
    }
}

//! Deterministic virtual-processor schedule simulation.
//!
//! The paper's parallel experiments ran on a multiprocessor with up to
//! dozens of CPUs. To reproduce the *shape* of its speedup and efficiency
//! figures on a machine with fewer cores, this module replays a wavefront
//! tile DAG under list scheduling on `P` virtual processors and reports
//! the makespan. Tile costs are supplied by the caller (cell counts, or
//! measured per-tile nanoseconds), so the simulation captures exactly the
//! dependency structure and load balance the paper analyses in §5 — the
//! only effects it abstracts away are memory-system interference between
//! processors.
//!
//! Scheduling policy: FIFO list scheduling — among ready tiles, the one
//! with the earliest ready time runs next (ties: lower anti-diagonal,
//! then lower row), on the processor that frees earliest. Deterministic
//! by construction.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Outcome of one simulated schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleResult {
    /// Virtual processors used.
    pub threads: usize,
    /// Schedule length (same unit as the tile costs).
    pub makespan: u64,
    /// Sum of all tile costs (the 1-processor makespan).
    pub total_cost: u64,
    /// Longest dependency chain (the ∞-processor makespan).
    pub critical_path: u64,
    /// Busy time per processor (sums to `total_cost`).
    pub busy: Vec<u64>,
    /// Number of live tiles scheduled.
    pub tiles: usize,
}

impl ScheduleResult {
    /// Speedup over the 1-processor schedule.
    pub fn speedup(&self) -> f64 {
        if self.makespan == 0 {
            return 1.0;
        }
        self.total_cost as f64 / self.makespan as f64
    }

    /// Efficiency = speedup / P.
    pub fn efficiency(&self) -> f64 {
        self.speedup() / self.threads as f64
    }
}

/// Simulates list scheduling of an `rows × cols` wavefront grid on
/// `threads` virtual processors.
///
/// `cost(r, c)` is each tile's execution time; `skip` marks tiles that do
/// not exist (FastLSA's bottom-right block during Fill Cache).
///
/// # Panics
///
/// Panics when `threads == 0`.
pub fn simulate_schedule(
    rows: usize,
    cols: usize,
    threads: usize,
    skip: Option<&dyn Fn(usize, usize) -> bool>,
    cost: &dyn Fn(usize, usize) -> u64,
) -> ScheduleResult {
    simulate_schedule_comm(rows, cols, threads, skip, cost, 0)
}

/// [`simulate_schedule`] with a **communication cost**: when a tile's
/// dependency was computed on a *different* processor, the consumer must
/// wait an extra `comm` time units for the boundary data to arrive
/// (modelling the remote-cache/interconnect transfers of the paper's
/// multiprocessor testbed). `comm = 0` reproduces [`simulate_schedule`]
/// exactly; a single processor never pays communication.
pub fn simulate_schedule_comm(
    rows: usize,
    cols: usize,
    threads: usize,
    skip: Option<&dyn Fn(usize, usize) -> bool>,
    cost: &dyn Fn(usize, usize) -> u64,
    comm: u64,
) -> ScheduleResult {
    assert!(threads > 0, "at least one processor");
    let live = |r: usize, c: usize| skip.map(|f| !f(r, c)).unwrap_or(true);

    let mut result = ScheduleResult {
        threads,
        makespan: 0,
        total_cost: 0,
        critical_path: 0,
        busy: vec![0; threads],
        tiles: 0,
    };
    if rows == 0 || cols == 0 {
        return result;
    }

    // In-degree and critical path per tile.
    let idx = |r: usize, c: usize| r * cols + c;
    let mut indeg = vec![0u8; rows * cols];
    let mut finish = vec![0u64; rows * cols];
    let mut cp = vec![0u64; rows * cols];
    let mut proc_of = vec![usize::MAX; rows * cols];

    // Ready heap: (ready_time, diag, r) — min-first via Reverse.
    let mut ready: BinaryHeap<Reverse<(u64, usize, usize, usize)>> = BinaryHeap::new();
    for r in 0..rows {
        for c in 0..cols {
            if !live(r, c) {
                continue;
            }
            result.tiles += 1;
            let mut d = 0;
            if r > 0 && live(r - 1, c) {
                d += 1;
            }
            if c > 0 && live(r, c - 1) {
                d += 1;
            }
            indeg[idx(r, c)] = d;
            if d == 0 {
                ready.push(Reverse((0, r + c, r, c)));
            }
        }
    }

    // Processor pool: free times, min-first.
    let mut procs: BinaryHeap<Reverse<(u64, usize)>> =
        (0..threads).map(|p| Reverse((0u64, p))).collect();

    let mut scheduled = 0usize;
    while let Some(Reverse((ready_time, _diag, r, c))) = ready.pop() {
        // flsa-check: allow(unwrap) — threads >= 1, so the heap is non-empty
        let Reverse((free_at, p)) = procs.pop().expect("processor pool is never empty");
        let t_cost = cost(r, c);
        // Cross-processor dependencies delay the start by `comm`.
        let eff_ready = if comm == 0 {
            ready_time
        } else {
            let mut t = 0u64;
            for (pr, pc) in [(r.wrapping_sub(1), c), (r, c.wrapping_sub(1))] {
                if pr < rows && pc < cols && live(pr, pc) {
                    let extra = if proc_of[idx(pr, pc)] != p { comm } else { 0 };
                    t = t.max(finish[idx(pr, pc)] + extra);
                }
            }
            t
        };
        let start = eff_ready.max(free_at);
        let end = start + t_cost;
        proc_of[idx(r, c)] = p;
        procs.push(Reverse((end, p)));
        result.busy[p] += t_cost;
        result.total_cost += t_cost;
        result.makespan = result.makespan.max(end);
        finish[idx(r, c)] = end;
        cp[idx(r, c)] = t_cost + {
            let up = if r > 0 && live(r - 1, c) {
                cp[idx(r - 1, c)]
            } else {
                0
            };
            let left = if c > 0 && live(r, c - 1) {
                cp[idx(r, c - 1)]
            } else {
                0
            };
            up.max(left)
        };
        result.critical_path = result.critical_path.max(cp[idx(r, c)]);
        scheduled += 1;

        for (nr, nc) in [(r + 1, c), (r, c + 1)] {
            if nr < rows && nc < cols && live(nr, nc) && indeg[idx(nr, nc)] > 0 {
                indeg[idx(nr, nc)] -= 1;
                if indeg[idx(nr, nc)] == 0 {
                    let up = if nr > 0 && live(nr - 1, nc) {
                        finish[idx(nr - 1, nc)]
                    } else {
                        0
                    };
                    let left = if nc > 0 && live(nr, nc - 1) {
                        finish[idx(nr, nc - 1)]
                    } else {
                        0
                    };
                    ready.push(Reverse((up.max(left), nr + nc, nr, nc)));
                }
            }
        }
    }
    assert_eq!(
        scheduled, result.tiles,
        "schedule must cover every live tile"
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(_r: usize, _c: usize) -> u64 {
        1
    }

    #[test]
    fn one_processor_makespan_is_total_cost() {
        let r = simulate_schedule(6, 7, 1, None, &unit);
        assert_eq!(r.makespan, 42);
        assert_eq!(r.total_cost, 42);
        assert!((r.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unlimited_processors_reach_critical_path() {
        // Critical path of an R x C unit grid is R + C - 1.
        let r = simulate_schedule(6, 7, 64, None, &unit);
        assert_eq!(r.critical_path, 12);
        assert_eq!(r.makespan, 12);
    }

    #[test]
    fn makespan_is_monotone_in_processor_count() {
        let cost = |r: usize, c: usize| 1 + ((r * 31 + c * 17) % 7) as u64;
        let mut prev = u64::MAX;
        for p in 1..=12 {
            let res = simulate_schedule(10, 10, p, None, &cost);
            assert!(res.makespan <= prev, "P={p}");
            assert!(res.makespan >= res.critical_path);
            assert!(res.makespan >= res.total_cost.div_ceil(p as u64));
            prev = res.makespan;
        }
    }

    #[test]
    fn busy_time_sums_to_total_cost() {
        let r = simulate_schedule(9, 9, 4, None, &unit);
        assert_eq!(r.busy.iter().sum::<u64>(), r.total_cost);
        assert_eq!(r.busy.len(), 4);
    }

    #[test]
    fn speedup_close_to_p_for_large_grids() {
        // The paper's observation: efficiency rises with problem size.
        let small = simulate_schedule(8, 8, 8, None, &unit);
        let large = simulate_schedule(64, 64, 8, None, &unit);
        assert!(large.efficiency() > small.efficiency());
        assert!(large.efficiency() > 0.85, "eff {}", large.efficiency());
    }

    #[test]
    fn makespan_respects_theorem_4_style_bound() {
        // Paper Eq. 31: fill time ≤ (R·C + P² − P)/P tile units for unit
        // tiles. The simulated (better-informed) schedule must not exceed
        // the analytical worst case.
        for &(rows, cols, p) in &[(12usize, 12usize, 8usize), (16, 16, 4), (24, 8, 6)] {
            let res = simulate_schedule(rows, cols, p, None, &unit);
            let bound = ((rows * cols + p * p - p) as f64) / p as f64;
            assert!(
                (res.makespan as f64) <= bound.ceil(),
                "makespan {} > bound {bound} for ({rows},{cols},{p})",
                res.makespan
            );
        }
    }

    #[test]
    fn skip_mask_removes_cost() {
        let skip = |r: usize, c: usize| r >= 4 && c >= 4;
        let res = simulate_schedule(6, 6, 2, Some(&skip), &unit);
        assert_eq!(res.tiles, 32);
        assert_eq!(res.total_cost, 32);
    }

    #[test]
    fn zero_comm_matches_plain_simulation() {
        let cost = |r: usize, c: usize| 1 + ((r * 7 + c * 3) % 5) as u64;
        let plain = simulate_schedule(10, 10, 4, None, &cost);
        let comm0 = simulate_schedule_comm(10, 10, 4, None, &cost, 0);
        assert_eq!(plain, comm0);
    }

    #[test]
    fn communication_cost_slows_parallel_but_not_sequential() {
        let seq = simulate_schedule_comm(12, 12, 1, None, &unit, 10);
        assert_eq!(seq.makespan, 144, "one processor never communicates");
        let p0 = simulate_schedule_comm(12, 12, 8, None, &unit, 0);
        let p5 = simulate_schedule_comm(12, 12, 8, None, &unit, 5);
        let p50 = simulate_schedule_comm(12, 12, 8, None, &unit, 50);
        assert!(p5.makespan > p0.makespan);
        assert!(p50.makespan > p5.makespan);
        // With huge communication costs, parallelism should not beat the
        // sequential schedule by much (may even lose).
        assert!(p50.makespan as f64 > seq.makespan as f64 * 0.5);
    }

    #[test]
    fn comm_makespan_is_monotone_in_comm() {
        let cost = |r: usize, c: usize| 2 + ((r + c) % 3) as u64;
        let mut prev = 0;
        for comm in [0u64, 1, 2, 4, 8, 16] {
            let res = simulate_schedule_comm(16, 16, 6, None, &cost, comm);
            assert!(res.makespan >= prev, "comm={comm}");
            prev = res.makespan;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let cost = |r: usize, c: usize| 1 + ((r * 13 + c * 29) % 11) as u64;
        let a = simulate_schedule(15, 12, 5, None, &cost);
        let b = simulate_schedule(15, 12, 5, None, &cost);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_grid() {
        let r = simulate_schedule(0, 5, 3, None, &unit);
        assert_eq!(r.makespan, 0);
        assert_eq!(r.tiles, 0);
    }
}

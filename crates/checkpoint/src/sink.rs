//! Durable and in-memory checkpoint sinks.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use fastlsa_core::checkpoint::{CheckpointSink, CheckpointState};
use fastlsa_core::FastLsaConfig;
use flsa_metrics::{names, Counter, Histogram, Registry};

use crate::format::{encode, DegradeNote, Snapshot, SnapshotMeta};
use crate::CheckpointError;

/// Reads and verifies a snapshot file.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, CheckpointError> {
    let bytes =
        fs::read(path).map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
    crate::format::decode(&bytes)
}

/// Atomic, double-buffered snapshot writer.
///
/// Each save encodes the full snapshot, writes it to one of two
/// alternating temp names next to the target, fsyncs the file, then
/// renames it over the target (and best-effort fsyncs the directory).
/// Rename is atomic on POSIX filesystems, and the alternating temp names
/// mean a crash at *any* instruction leaves either the previous valid
/// snapshot at the target path or nothing there at all — never a torn
/// file that a resume could misread (the CRC framing would reject a torn
/// file anyway; this sink makes sure one is never observed).
pub struct FileCheckpointSink {
    path: PathBuf,
    /// Run identity captured at start; `note_degrade` appends to it so
    /// later snapshots carry the full degradation history.
    meta: Mutex<SnapshotMeta>,
    saves: AtomicU64,
    metrics: Option<CheckpointMetrics>,
}

/// Cached registry handles for checkpoint durability accounting.
#[derive(Clone, Debug)]
pub struct CheckpointMetrics {
    saves: Counter,
    bytes: Counter,
    fsync_ns: Histogram,
}

impl CheckpointMetrics {
    /// Binds the checkpoint handles in `reg`.
    pub fn new(reg: &Registry) -> Self {
        CheckpointMetrics {
            saves: reg.counter(names::CHECKPOINT_SAVES_TOTAL),
            bytes: reg.counter(names::CHECKPOINT_BYTES_TOTAL),
            fsync_ns: reg.histogram(names::CHECKPOINT_FSYNC_NS),
        }
    }
}

impl FileCheckpointSink {
    pub fn new(path: impl Into<PathBuf>, meta: SnapshotMeta) -> Self {
        FileCheckpointSink {
            path: path.into(),
            meta: Mutex::new(meta),
            saves: AtomicU64::new(0),
            metrics: None,
        }
    }

    /// Attaches durability metrics: every completed save records its
    /// size and the latency of the durable portion (file fsync + rename
    /// + directory fsync) into the registry the handles came from.
    pub fn with_metrics(mut self, metrics: CheckpointMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The snapshot path this sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of completed saves.
    pub fn saves(&self) -> u64 {
        self.saves.load(Ordering::Relaxed) // Relaxed: diagnostic counter
    }

    fn io_err(&self, what: &str, e: std::io::Error) -> String {
        format!("{what} {}: {e}", self.path.display())
    }
}

impl CheckpointSink for FileCheckpointSink {
    fn save(&self, state: &CheckpointState) -> Result<u64, String> {
        let meta = self
            .meta
            .lock()
            .unwrap_or_else(|p| p.into_inner()) // flsa-check: allow(unwrap) — poison recovery, never panics
            .clone();
        let bytes = encode(&meta, state);
        // Relaxed: the counter only alternates temp names; saves are
        // already serialized by the solver's single drive loop.
        let n = self.saves.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .path
            .with_extension(if n % 2 == 0 { "tmp0" } else { "tmp1" });
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| self.io_err("create temp for", e))?;
        f.write_all(&bytes)
            .map_err(|e| self.io_err("write temp for", e))?;
        // Time the durable portion — file fsync, publish rename, and
        // directory fsync — which is where checkpoint latency actually
        // lives (the encode + buffered write above is memory-speed).
        let fsync_start = std::time::Instant::now();
        f.sync_all().map_err(|e| self.io_err("write temp for", e))?;
        drop(f);
        fs::rename(&tmp, &self.path).map_err(|e| self.io_err("publish", e))?;
        // Durability of the rename itself: fsync the directory. Best
        // effort — some filesystems refuse directory handles.
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        if let Some(m) = &self.metrics {
            m.fsync_ns.record(fsync_start.elapsed().as_nanos() as u64);
            m.saves.inc();
            m.bytes.add(bytes.len() as u64);
        }
        Ok(bytes.len() as u64)
    }

    fn note_degrade(&self, reason: &'static str, rung: u32, config: &FastLsaConfig) {
        let mut meta = self.meta.lock().unwrap_or_else(|p| p.into_inner()); // flsa-check: allow(unwrap) — poison recovery
        meta.degrades.push(DegradeNote {
            reason: reason.to_string(),
            rung,
            k: config.k,
            base_cells: config.base_cells,
            threads: config.threads(),
        });
    }
}

/// In-memory sink for tests: keeps every encoded snapshot.
#[derive(Default)]
pub struct MemorySink {
    meta: Mutex<Option<SnapshotMeta>>,
    snapshots: Mutex<Vec<Vec<u8>>>,
}

impl MemorySink {
    pub fn new(meta: SnapshotMeta) -> Self {
        MemorySink {
            meta: Mutex::new(Some(meta)),
            snapshots: Mutex::new(Vec::new()),
        }
    }

    /// All snapshots saved so far, oldest first.
    pub fn snapshots(&self) -> Vec<Vec<u8>> {
        self.snapshots
            .lock()
            .unwrap_or_else(|p| p.into_inner()) // flsa-check: allow(unwrap) — poison recovery
            .clone()
    }

    /// The most recent snapshot, if any.
    pub fn last(&self) -> Option<Vec<u8>> {
        self.snapshots().pop()
    }
}

impl CheckpointSink for MemorySink {
    fn save(&self, state: &CheckpointState) -> Result<u64, String> {
        let meta = self
            .meta
            .lock()
            .unwrap_or_else(|p| p.into_inner()) // flsa-check: allow(unwrap) — poison recovery
            .clone()
            .ok_or_else(|| "MemorySink has no meta".to_string())?;
        let bytes = encode(&meta, state);
        let len = bytes.len() as u64;
        self.snapshots
            .lock()
            .unwrap_or_else(|p| p.into_inner()) // flsa-check: allow(unwrap) — poison recovery
            .push(bytes);
        Ok(len)
    }

    fn note_degrade(&self, reason: &'static str, rung: u32, config: &FastLsaConfig) {
        let mut meta = self.meta.lock().unwrap_or_else(|p| p.into_inner()); // flsa-check: allow(unwrap) — poison recovery
        if let Some(meta) = meta.as_mut() {
            meta.degrades.push(DegradeNote {
                reason: reason.to_string(),
                rung,
                k: config.k,
                base_cells: config.base_cells,
                threads: config.threads(),
            });
        }
    }
}

//! Crash-safe checkpoint/resume for FastLSA (DESIGN.md §10).
//!
//! The linear-space recursion keeps all of its live state in an explicit
//! frame stack ([`fastlsa_core::CheckpointState`]); this crate gives that
//! state a durable on-disk form:
//!
//! - [`format`]: a versioned, CRC32-framed binary snapshot embedding the
//!   inputs (sequences, scheme digest, config) next to the recursion
//!   state, so a snapshot can be resumed with nothing but the file —
//!   and can *never* be resumed against the wrong inputs.
//! - [`FileCheckpointSink`]: an atomic, double-buffered file writer
//!   (write temp → fsync → rename) wired into
//!   [`fastlsa_core::AlignOptions::checkpoint`]; a crash mid-write
//!   always leaves the previous valid snapshot behind.
//! - [`resume_from_snapshot`]: the one-call entry point the CLI's
//!   `flsa resume` uses — decode, validate, rebuild, continue.
//!
//! Corruption anywhere — a flipped bit, a truncated file, a swapped
//! input — surfaces as a structured [`CheckpointError`], never a panic
//! and never a silently wrong alignment.
#![forbid(unsafe_code)]

mod format;
mod sink;
pub mod wire;

pub use format::{
    decode, encode, scheme_digest, sequence_digest, DegradeNote, Snapshot, SnapshotMeta,
    FORMAT_VERSION, MAGIC,
};
pub use sink::{read_snapshot, CheckpointMetrics, FileCheckpointSink, MemorySink};

use fastlsa_core::{align_resume, AlignError, AlignOptions};
use flsa_dp::{AlignResult, Metrics};
use flsa_scoring::ScoringScheme;

/// Why a snapshot could not be read or used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The bytes are not a valid snapshot: bad magic, failed CRC,
    /// truncation, or an internally inconsistent recursion state.
    Corrupt(String),
    /// The snapshot is well-formed but belongs to a different run
    /// (scheme digest or alphabet disagrees with the caller's).
    Mismatch(String),
    /// The file could not be read or written.
    Io(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Corrupt(d) => write!(f, "corrupt checkpoint: {d}"),
            CheckpointError::Mismatch(d) => write!(f, "checkpoint/input mismatch: {d}"),
            CheckpointError::Io(d) => write!(f, "checkpoint i/o error: {d}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<CheckpointError> for AlignError {
    fn from(e: CheckpointError) -> Self {
        AlignError::CorruptCheckpoint {
            detail: e.to_string(),
        }
    }
}

/// Resumes an interrupted run from a decoded snapshot.
///
/// The caller reconstructs the scoring scheme named in `snapshot.meta`
/// (the digest is verified here); the sequences come out of the snapshot
/// itself. `opts` should carry a fresh checkpoint sink so the resumed
/// run keeps checkpointing.
pub fn resume_from_snapshot(
    snapshot: &Snapshot,
    scheme: &ScoringScheme,
    opts: &AlignOptions,
    metrics: &Metrics,
) -> Result<AlignResult, AlignError> {
    let (a, b) = snapshot.sequences(scheme)?;
    align_resume(&a, &b, scheme, snapshot.state.clone(), opts, metrics)
}

//! The versioned snapshot format (DESIGN.md §10).
//!
//! ```text
//! magic "FLSACKP1" (8 bytes)  version u32
//! section*:  tag u8 | payload_len u64 | payload | crc32(payload) u32
//! tags:      1 meta · 2 run header · 3 partial path · 4 frame (×N) · 5 end
//! ```
//!
//! Every section is independently CRC32-framed, the end section makes
//! truncation detectable, and the meta section carries content digests
//! (scheme, sequences, config) so a snapshot can never be resumed
//! against the wrong inputs. Snapshots are *self-contained*: they embed
//! the encoded sequences, so `flsa resume <path>` needs no other files.

use fastlsa_core::checkpoint::{CheckpointState, FrameState, GridState};
use fastlsa_core::{FastLsaConfig, ParallelConfig};
use flsa_dp::Move;
use flsa_scoring::ScoringScheme;
use flsa_seq::Sequence;

use crate::wire::{crc32, Cur, Enc, Fnv1a};
use crate::CheckpointError;

pub const MAGIC: &[u8; 8] = b"FLSACKP1";
pub const FORMAT_VERSION: u32 = 1;

const TAG_META: u8 = 1;
const TAG_HEADER: u8 = 2;
const TAG_PATH: u8 = 3;
const TAG_FRAME: u8 = 4;
const TAG_END: u8 = 5;

/// One degradation-ladder step recorded in the snapshot, so the degrade
/// history survives process death.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradeNote {
    pub reason: String,
    pub rung: u32,
    pub k: usize,
    pub base_cells: usize,
    pub threads: usize,
}

/// Run identity and inputs: everything `flsa resume` needs besides the
/// recursion state itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Checkpoint cadence the run was started with (resume keeps it).
    pub every_blocks: u64,
    /// Name of the scoring scheme as the CLI understands it
    /// (e.g. "dna", "blosum62").
    pub scheme_name: String,
    /// Linear gap penalty of the scheme.
    pub gap_penalty: i32,
    /// FNV-1a digest over the scheme's matrix, alphabet, and gap —
    /// verified against the reconstructed scheme before resuming.
    pub scheme_digest: u64,
    /// Alphabet the sequences are encoded in.
    pub alphabet_name: String,
    pub seq_a_id: String,
    /// Encoded residues of sequence A (alphabet codes, not ASCII).
    pub seq_a: Vec<u8>,
    pub seq_b_id: String,
    pub seq_b: Vec<u8>,
    /// Degradation steps taken before this snapshot, oldest first.
    pub degrades: Vec<DegradeNote>,
}

impl SnapshotMeta {
    /// Builds the meta block for a fresh run.
    pub fn for_run(
        scheme_name: &str,
        scheme: &ScoringScheme,
        a: &Sequence,
        b: &Sequence,
        every_blocks: u64,
    ) -> Self {
        SnapshotMeta {
            every_blocks,
            scheme_name: scheme_name.to_string(),
            gap_penalty: scheme.gap().linear_penalty(),
            scheme_digest: scheme_digest(scheme),
            alphabet_name: scheme.alphabet().name().to_string(),
            seq_a_id: a.id().to_string(),
            seq_a: a.codes().to_vec(),
            seq_b_id: b.id().to_string(),
            seq_b: b.codes().to_vec(),
            degrades: Vec::new(),
        }
    }
}

/// A decoded snapshot: run identity plus the recursion state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    pub meta: SnapshotMeta,
    pub state: CheckpointState,
}

impl Snapshot {
    /// Rebuilds the input sequences after the caller reconstructs the
    /// scoring scheme named in `meta`. Verifies the scheme digest, the
    /// alphabet, and every residue code before constructing — a
    /// mismatched or damaged snapshot surfaces as a structured error,
    /// never a wrong alignment or a panic.
    pub fn sequences(
        &self,
        scheme: &ScoringScheme,
    ) -> Result<(Sequence, Sequence), CheckpointError> {
        if scheme.alphabet().name() != self.meta.alphabet_name {
            return Err(CheckpointError::Mismatch(format!(
                "snapshot is over alphabet {:?}, scheme uses {:?}",
                self.meta.alphabet_name,
                scheme.alphabet().name()
            )));
        }
        let digest = scheme_digest(scheme);
        if digest != self.meta.scheme_digest {
            return Err(CheckpointError::Mismatch(format!(
                "scoring scheme digest {digest:#018x} does not match the snapshot's {:#018x}",
                self.meta.scheme_digest
            )));
        }
        let n = scheme.alphabet().len() as u8;
        for (codes, what) in [(&self.meta.seq_a, "A"), (&self.meta.seq_b, "B")] {
            if let Some(&bad) = codes.iter().find(|&&c| c >= n) {
                return Err(CheckpointError::Corrupt(format!(
                    "sequence {what} contains code {bad} outside the {n}-symbol alphabet"
                )));
            }
        }
        Ok((
            Sequence::from_codes(
                &self.meta.seq_a_id,
                scheme.alphabet(),
                self.meta.seq_a.clone(),
            ),
            Sequence::from_codes(
                &self.meta.seq_b_id,
                scheme.alphabet(),
                self.meta.seq_b.clone(),
            ),
        ))
    }
}

/// Content digest of a scoring scheme: alphabet symbols, matrix name,
/// the full substitution table, and the gap penalty.
pub fn scheme_digest(scheme: &ScoringScheme) -> u64 {
    let mut h = Fnv1a::default();
    let alphabet = scheme.alphabet();
    h.update(alphabet.name().as_bytes());
    let len = alphabet.len() as u8;
    for c in 0..len {
        h.update(&[alphabet.decode(c) as u8]);
    }
    h.update(scheme.matrix().name().as_bytes());
    for a in 0..len {
        for b in 0..len {
            h.update_i32(scheme.matrix().score(a, b));
        }
    }
    h.update_i32(scheme.gap().linear_penalty());
    h.finish()
}

/// Content digest of an encoded sequence (id + codes).
pub fn sequence_digest(id: &str, codes: &[u8]) -> u64 {
    let mut h = Fnv1a::default();
    h.update(id.as_bytes());
    h.update_u64(codes.len() as u64);
    h.update(codes);
    h.finish()
}

fn config_digest(c: &FastLsaConfig) -> u64 {
    let mut h = Fnv1a::default();
    h.update_u64(c.k as u64);
    h.update_u64(c.base_cells as u64);
    h.update_u64(c.threads() as u64);
    h.update_u64(c.parallel.map_or(0, |p| p.tiles_per_block) as u64);
    h.finish()
}

fn push_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

fn encode_meta(meta: &SnapshotMeta) -> Vec<u8> {
    let mut e = Enc::default();
    e.u64(meta.every_blocks);
    e.str(&meta.scheme_name);
    e.i32(meta.gap_penalty);
    e.u64(meta.scheme_digest);
    e.str(&meta.alphabet_name);
    e.str(&meta.seq_a_id);
    e.u64(sequence_digest(&meta.seq_a_id, &meta.seq_a));
    e.bytes(&meta.seq_a);
    e.str(&meta.seq_b_id);
    e.u64(sequence_digest(&meta.seq_b_id, &meta.seq_b));
    e.bytes(&meta.seq_b);
    e.u32(meta.degrades.len() as u32);
    for d in &meta.degrades {
        e.str(&d.reason);
        e.u32(d.rung);
        e.usize(d.k);
        e.usize(d.base_cells);
        e.usize(d.threads);
    }
    e.buf
}

fn decode_meta(payload: &[u8]) -> Result<SnapshotMeta, CheckpointError> {
    let mut c = Cur::new(payload);
    let every_blocks = c.u64()?;
    let scheme_name = c.str()?;
    let gap_penalty = c.i32()?;
    let scheme_digest = c.u64()?;
    let alphabet_name = c.str()?;
    let seq_a_id = c.str()?;
    let digest_a = c.u64()?;
    let seq_a = c.bytes()?;
    let seq_b_id = c.str()?;
    let digest_b = c.u64()?;
    let seq_b = c.bytes()?;
    for (id, codes, digest, what) in [
        (&seq_a_id, &seq_a, digest_a, "A"),
        (&seq_b_id, &seq_b, digest_b, "B"),
    ] {
        if sequence_digest(id, codes) != digest {
            return Err(CheckpointError::Corrupt(format!(
                "sequence {what} digest mismatch"
            )));
        }
    }
    let n_degrades = c.u32()?;
    let mut degrades = Vec::new();
    for _ in 0..n_degrades {
        degrades.push(DegradeNote {
            reason: c.str()?,
            rung: c.u32()?,
            k: c.usize()?,
            base_cells: c.usize()?,
            threads: c.usize()?,
        });
    }
    if !c.done() {
        return Err(CheckpointError::Corrupt("trailing bytes in meta".into()));
    }
    Ok(SnapshotMeta {
        every_blocks,
        scheme_name,
        gap_penalty,
        scheme_digest,
        alphabet_name,
        seq_a_id,
        seq_a,
        seq_b_id,
        seq_b,
        degrades,
    })
}

fn encode_header(state: &CheckpointState) -> Vec<u8> {
    let mut e = Enc::default();
    e.usize(state.config.k);
    e.usize(state.config.base_cells);
    match state.config.parallel {
        Some(p) => {
            e.u8(1);
            e.usize(p.threads);
            e.usize(p.tiles_per_block);
        }
        None => e.u8(0),
    }
    e.u64(config_digest(&state.config));
    e.u64(state.blocks_done);
    e.u32(state.generation);
    e.u32(state.frames.len() as u32);
    e.buf
}

struct Header {
    config: FastLsaConfig,
    blocks_done: u64,
    generation: u32,
    frame_count: u32,
}

fn decode_header(payload: &[u8]) -> Result<Header, CheckpointError> {
    let mut c = Cur::new(payload);
    let k = c.usize()?;
    let base_cells = c.usize()?;
    let parallel = match c.u8()? {
        0 => None,
        1 => Some(ParallelConfig {
            threads: c.usize()?,
            tiles_per_block: c.usize()?,
        }),
        other => {
            return Err(CheckpointError::Corrupt(format!(
                "bad parallel flag {other}"
            )))
        }
    };
    let config = FastLsaConfig {
        k,
        base_cells,
        parallel,
    };
    let digest = c.u64()?;
    if digest != config_digest(&config) {
        return Err(CheckpointError::Corrupt("config digest mismatch".into()));
    }
    let blocks_done = c.u64()?;
    let generation = c.u32()?;
    let frame_count = c.u32()?;
    if !c.done() {
        return Err(CheckpointError::Corrupt("trailing bytes in header".into()));
    }
    Ok(Header {
        config,
        blocks_done,
        generation,
        frame_count,
    })
}

fn encode_path(moves: &[Move]) -> Vec<u8> {
    let mut e = Enc::default();
    e.usize(moves.len());
    for &m in moves {
        e.u8(m.code());
    }
    e.buf
}

fn decode_path(payload: &[u8]) -> Result<Vec<Move>, CheckpointError> {
    let mut c = Cur::new(payload);
    let n = c.len(1)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let code = c.u8()?;
        out.push(
            Move::from_code(code).ok_or_else(|| {
                CheckpointError::Corrupt(format!("invalid path move code {code}"))
            })?,
        );
    }
    if !c.done() {
        return Err(CheckpointError::Corrupt("trailing bytes in path".into()));
    }
    Ok(out)
}

fn encode_frame(f: &FrameState) -> Vec<u8> {
    let mut e = Enc::default();
    e.usize(f.r0);
    e.usize(f.c0);
    e.usize(f.rows);
    e.usize(f.cols);
    e.usize(f.head.0);
    e.usize(f.head.1);
    e.i32s(&f.top);
    e.i32s(&f.left);
    match &f.grid {
        None => e.u8(0),
        Some(g) => {
            e.u8(1);
            e.usizes(&g.row_bounds);
            e.usizes(&g.col_bounds);
            e.u32(g.rows_cache.len() as u32);
            for row in &g.rows_cache {
                e.i32s(row);
            }
            e.u32(g.cols_cache.len() as u32);
            for col in &g.cols_cache {
                e.i32s(col);
            }
        }
    }
    e.buf
}

fn decode_frame(payload: &[u8]) -> Result<FrameState, CheckpointError> {
    let mut c = Cur::new(payload);
    let r0 = c.usize()?;
    let c0 = c.usize()?;
    let rows = c.usize()?;
    let cols = c.usize()?;
    let head = (c.usize()?, c.usize()?);
    let top = c.i32s()?;
    let left = c.i32s()?;
    let grid = match c.u8()? {
        0 => None,
        1 => {
            let row_bounds = c.usizes()?;
            let col_bounds = c.usizes()?;
            let n_rows = c.u32()? as usize;
            let mut rows_cache = Vec::new();
            for _ in 0..n_rows {
                rows_cache.push(c.i32s()?);
            }
            let n_cols = c.u32()? as usize;
            let mut cols_cache = Vec::new();
            for _ in 0..n_cols {
                cols_cache.push(c.i32s()?);
            }
            Some(GridState {
                row_bounds,
                col_bounds,
                rows_cache,
                cols_cache,
            })
        }
        other => {
            return Err(CheckpointError::Corrupt(format!("bad grid flag {other}")));
        }
    };
    if !c.done() {
        return Err(CheckpointError::Corrupt("trailing bytes in frame".into()));
    }
    Ok(FrameState {
        r0,
        c0,
        rows,
        cols,
        head,
        top,
        left,
        grid,
    })
}

/// Serializes a snapshot to its durable byte form.
pub fn encode(meta: &SnapshotMeta, state: &CheckpointState) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    push_section(&mut out, TAG_META, &encode_meta(meta));
    push_section(&mut out, TAG_HEADER, &encode_header(state));
    push_section(&mut out, TAG_PATH, &encode_path(&state.rev_moves));
    for f in &state.frames {
        push_section(&mut out, TAG_FRAME, &encode_frame(f));
    }
    push_section(&mut out, TAG_END, &[]);
    out
}

/// Parses and verifies a snapshot. Every framing, CRC, digest, or
/// structural violation is a [`CheckpointError::Corrupt`]; no input can
/// make this panic or over-allocate.
pub fn decode(bytes: &[u8]) -> Result<Snapshot, CheckpointError> {
    let mut c = Cur::new(bytes);
    if c.take(8)? != MAGIC {
        return Err(CheckpointError::Corrupt(
            "bad magic (not a FastLSA checkpoint)".into(),
        ));
    }
    let version = c.u32()?;
    if version != FORMAT_VERSION {
        return Err(CheckpointError::Corrupt(format!(
            "unsupported format version {version} (expected {FORMAT_VERSION})"
        )));
    }

    let mut meta: Option<SnapshotMeta> = None;
    let mut header: Option<Header> = None;
    let mut path: Option<Vec<Move>> = None;
    let mut frames: Vec<FrameState> = Vec::new();
    let mut ended = false;
    while !c.done() {
        if ended {
            return Err(CheckpointError::Corrupt(
                "data after the end section".into(),
            ));
        }
        let tag = c.u8()?;
        let len = c.len(1)?;
        let payload = c.take(len)?;
        let stored_crc = c.u32()?;
        let actual = crc32(payload);
        if stored_crc != actual {
            return Err(CheckpointError::Corrupt(format!(
                "section {tag} CRC mismatch (stored {stored_crc:#010x}, computed {actual:#010x})"
            )));
        }
        match tag {
            TAG_META if meta.is_none() => meta = Some(decode_meta(payload)?),
            TAG_HEADER if header.is_none() => header = Some(decode_header(payload)?),
            TAG_PATH if path.is_none() => path = Some(decode_path(payload)?),
            TAG_FRAME => frames.push(decode_frame(payload)?),
            TAG_END if payload.is_empty() => ended = true,
            _ => {
                return Err(CheckpointError::Corrupt(format!(
                    "unexpected or duplicate section tag {tag}"
                )));
            }
        }
    }
    if !ended {
        return Err(CheckpointError::Corrupt(
            "snapshot truncated (no end section)".into(),
        ));
    }
    let meta = meta.ok_or_else(|| CheckpointError::Corrupt("missing meta section".into()))?;
    let header =
        header.ok_or_else(|| CheckpointError::Corrupt("missing run header section".into()))?;
    let rev_moves = path.ok_or_else(|| CheckpointError::Corrupt("missing path section".into()))?;
    if frames.len() != header.frame_count as usize {
        return Err(CheckpointError::Corrupt(format!(
            "header promises {} frames, found {}",
            header.frame_count,
            frames.len()
        )));
    }
    let state = CheckpointState {
        config: header.config,
        blocks_done: header.blocks_done,
        generation: header.generation,
        rev_moves,
        frames,
    };
    // Structural validation against the embedded sequence dimensions, so
    // callers get one error surface for "this snapshot cannot be
    // resumed" regardless of which layer caught it.
    state
        .validate(meta.seq_a.len(), meta.seq_b.len())
        .map_err(CheckpointError::Corrupt)?;
    Ok(Snapshot { meta, state })
}

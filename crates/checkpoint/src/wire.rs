//! Byte-level primitives for the snapshot format: little-endian scalar
//! encoding, a bounds-checked read cursor, CRC32 (IEEE) section
//! checksums, and FNV-1a 64 content digests.
//!
//! Everything here is written against hostile input: the cursor never
//! reads past its slice, and every length field is validated against the
//! bytes actually present *before* any allocation, so truncated or
//! bit-flipped snapshots fail with a structured error instead of an
//! allocation bomb or a panic.

use std::sync::OnceLock;

use crate::CheckpointError;

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the framing
/// checksum of every snapshot section.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// FNV-1a 64 over a byte stream — the content digest used for the
/// scheme, sequences, and configuration.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    pub fn update_i32(&mut self, v: i32) {
        self.update(&v.to_le_bytes());
    }

    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Append-only encoder for section payloads.
#[derive(Default)]
pub struct Enc {
    pub buf: Vec<u8>,
}

impl Enc {
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }
    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
    /// Length-prefixed `i32` array.
    pub fn i32s(&mut self, v: &[i32]) {
        self.usize(v.len());
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }
    /// Length-prefixed `usize` array (as u64s).
    pub fn usizes(&mut self, v: &[usize]) {
        self.usize(v.len());
        for &x in v {
            self.u64(x as u64);
        }
    }
}

fn corrupt(detail: impl Into<String>) -> CheckpointError {
    CheckpointError::Corrupt(detail.into())
}

/// Bounds-checked read cursor over a payload slice.
pub struct Cur<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        Cur { data, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn done(&self) -> bool {
        self.pos == self.data.len()
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if n > self.remaining() {
            return Err(corrupt(format!(
                "need {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn i32(&mut self) -> Result<i32, CheckpointError> {
        let b = self.take(4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// A length field that must describe at most `remaining / elem_size`
    /// elements — checked before any allocation so corrupt lengths can't
    /// trigger huge reservations.
    pub fn len(&mut self, elem_size: usize) -> Result<usize, CheckpointError> {
        let n = self.u64()?;
        let max = self.remaining() / elem_size.max(1);
        if n > max as u64 {
            return Err(corrupt(format!(
                "length {n} exceeds the {max} elements actually present"
            )));
        }
        Ok(n as usize)
    }

    pub fn bytes(&mut self) -> Result<Vec<u8>, CheckpointError> {
        let n = self.len(1)?;
        Ok(self.take(n)?.to_vec())
    }

    pub fn str(&mut self) -> Result<String, CheckpointError> {
        let b = self.bytes()?;
        String::from_utf8(b).map_err(|_| corrupt("string is not UTF-8"))
    }

    pub fn i32s(&mut self) -> Result<Vec<i32>, CheckpointError> {
        let n = self.len(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.i32()?);
        }
        Ok(out)
    }

    pub fn usizes(&mut self) -> Result<Vec<usize>, CheckpointError> {
        let n = self.len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let v = self.u64()?;
            usize::try_from(v)
                .map(|v| out.push(v))
                .map_err(|_| corrupt(format!("value {v} does not fit a usize")))?;
        }
        Ok(out)
    }

    pub fn usize(&mut self) -> Result<usize, CheckpointError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| corrupt(format!("value {v} does not fit a usize")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fnv_matches_known_vectors() {
        let mut h = Fnv1a::default();
        h.update(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::default();
        h.update(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn round_trip_scalars_and_arrays() {
        let mut e = Enc::default();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 3);
        e.i32(-42);
        e.str("héllo");
        e.i32s(&[1, -2, 3]);
        e.usizes(&[0, 9, 100]);
        e.bytes(&[1, 2, 3]);
        let mut c = Cur::new(&e.buf);
        assert_eq!(c.u8().unwrap(), 7);
        assert_eq!(c.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.u64().unwrap(), u64::MAX - 3);
        assert_eq!(c.i32().unwrap(), -42);
        assert_eq!(c.str().unwrap(), "héllo");
        assert_eq!(c.i32s().unwrap(), vec![1, -2, 3]);
        assert_eq!(c.usizes().unwrap(), vec![0, 9, 100]);
        assert_eq!(c.bytes().unwrap(), vec![1, 2, 3]);
        assert!(c.done());
    }

    #[test]
    fn oversized_length_fields_are_rejected_before_allocation() {
        let mut e = Enc::default();
        e.u64(u64::MAX); // claims ~2^64 elements
        let mut c = Cur::new(&e.buf);
        assert!(c.i32s().is_err());
        let mut c = Cur::new(&e.buf);
        assert!(c.bytes().is_err());
    }

    #[test]
    fn truncated_reads_error_cleanly() {
        let mut c = Cur::new(&[1, 2]);
        assert!(c.u64().is_err());
        assert_eq!(c.u8().unwrap(), 1); // cursor unchanged by the failed read
    }
}

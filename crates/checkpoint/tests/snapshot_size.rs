//! Snapshot size stays linear: O(k·(m+n)) for the grid caches plus the
//! embedded inputs — never the O(m·n) of a full DP matrix, and never a
//! function of the Base Case buffer BM (base cases are atomic between
//! checkpoints, so the BM buffer is never serialized).

use std::sync::Arc;

use fastlsa_core::{align_opts, AlignOptions, CheckpointPolicy, FastLsaConfig};
use flsa_checkpoint::{MemorySink, SnapshotMeta};
use flsa_dp::Metrics;
use flsa_scoring::ScoringScheme;
use flsa_seq::generate::homologous_pair;
use flsa_seq::{Alphabet, Sequence};

/// Largest snapshot emitted by a run with the given config,
/// checkpointing at every completed block (worst-case capture points).
fn max_snapshot_bytes(a: &Sequence, b: &Sequence, cfg: FastLsaConfig) -> usize {
    let scheme = ScoringScheme::dna_default();
    let meta = SnapshotMeta::for_run("dna", &scheme, a, b, 1);
    let sink = Arc::new(MemorySink::new(meta));
    let opts = AlignOptions {
        checkpoint: Some(CheckpointPolicy::new(1, sink.clone())),
        ..AlignOptions::default()
    };
    align_opts(a, b, &scheme, cfg, &opts, &Metrics::new()).unwrap();
    let snapshots = sink.snapshots();
    assert!(!snapshots.is_empty());
    snapshots.iter().map(Vec::len).max().unwrap()
}

#[test]
fn snapshots_are_linear_in_k_times_m_plus_n() {
    let len = 300;
    let (a, b) = homologous_pair("size", &Alphabet::dna(), len, 0.8, 13).unwrap();
    let (m, n) = (a.len(), b.len());
    let quadratic = (m + 1) * (n + 1) * 4; // full DP matrix footprint
    for k in [2usize, 4, 8] {
        let bytes = max_snapshot_bytes(&a, &b, FastLsaConfig::new(k, 512));
        // Grid caches: ≤ 4·k·(m+n) i32s across the whole frame stack
        // (geometric decay over nesting); frame top/left edges add
        // ≤ 4·(m+n) more; the embedded sequences, path, and framing are
        // linear with small constants. 2 KiB covers fixed overhead.
        let linear_bound = 4 * (4 * k * (m + n)) + 4 * (4 * (m + n)) + 3 * (m + n) + 2048;
        assert!(
            bytes <= linear_bound,
            "k={k}: snapshot {bytes} B exceeds linear bound {linear_bound} B"
        );
        assert!(
            bytes * 4 < quadratic,
            "k={k}: snapshot {bytes} B is within 4x of the quadratic {quadratic} B"
        );
    }
}

#[test]
fn base_case_buffer_size_never_leaks_into_snapshots() {
    let (a, b) = homologous_pair("bm", &Alphabet::dna(), 300, 0.8, 17).unwrap();
    let small_bm = max_snapshot_bytes(&a, &b, FastLsaConfig::new(4, 128));
    let large_bm = max_snapshot_bytes(&a, &b, FastLsaConfig::new(4, 8192));
    // A 64× larger BM buffer must not inflate the snapshot: bigger base
    // cases mean a *shallower* recursion, so if anything snapshots
    // shrink. Allow 2 KiB of slack for differing frame counts.
    assert!(
        large_bm <= small_bm + 2048,
        "BM=8192 snapshot ({large_bm} B) outgrew BM=128 snapshot ({small_bm} B)"
    );
}

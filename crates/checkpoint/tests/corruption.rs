//! Corruption fuzzing: every single-bit flip, every truncation, and
//! trailing garbage must surface as a structured [`CheckpointError`] —
//! never a panic, an allocation bomb, or a silently different snapshot.

use std::sync::Arc;

use fastlsa_core::{align_opts, AlignOptions, CheckpointPolicy, FastLsaConfig};
use flsa_checkpoint::{decode, MemorySink, SnapshotMeta};
use flsa_dp::Metrics;
use flsa_scoring::ScoringScheme;
use flsa_seq::generate::homologous_pair;
use flsa_seq::Alphabet;

/// A small but structurally rich snapshot: real recursion frames with
/// grid caches and a partial path, kept to a few KB so the
/// flip-every-bit sweep stays fast.
fn sample_snapshot() -> Vec<u8> {
    let scheme = ScoringScheme::dna_default();
    let (a, b) = homologous_pair("fuzz", &Alphabet::dna(), 48, 0.8, 21).unwrap();
    let meta = SnapshotMeta::for_run("dna", &scheme, &a, &b, 1);
    let sink = Arc::new(MemorySink::new(meta));
    let opts = AlignOptions {
        checkpoint: Some(CheckpointPolicy::new(1, sink.clone())),
        ..AlignOptions::default()
    };
    align_opts(
        &a,
        &b,
        &scheme,
        FastLsaConfig::new(2, 64),
        &opts,
        &Metrics::new(),
    )
    .unwrap();
    let snapshots = sink.snapshots();
    assert!(snapshots.len() >= 3, "need mid-run snapshots");
    // A middle snapshot: non-empty frame stack, some path, some grids.
    let bytes = snapshots[snapshots.len() / 2].clone();
    let snap = decode(&bytes).unwrap();
    assert!(!snap.state.frames.is_empty());
    bytes
}

#[test]
fn every_single_bit_flip_is_rejected() {
    let bytes = sample_snapshot();
    let baseline = decode(&bytes).unwrap();
    let mut flipped = 0u64;
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut m = bytes.clone();
            m[i] ^= 1 << bit;
            // Must not panic; CRC framing (payloads), explicit checks
            // (magic, version, tags, lengths) catch everything else.
            match decode(&m) {
                Err(_) => flipped += 1,
                Ok(snap) => panic!(
                    "bit {bit} of byte {i} flipped undetected (decoded {} frames vs {})",
                    snap.state.frames.len(),
                    baseline.state.frames.len()
                ),
            }
        }
    }
    assert_eq!(flipped, bytes.len() as u64 * 8);
}

#[test]
fn every_truncation_is_rejected() {
    let bytes = sample_snapshot();
    for len in 0..bytes.len() {
        assert!(
            decode(&bytes[..len]).is_err(),
            "truncation to {len}/{} bytes went undetected",
            bytes.len()
        );
    }
    assert!(decode(&bytes).is_ok());
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = sample_snapshot();
    for extra in [vec![0u8], vec![0xFF; 7], b"FLSACKP1".to_vec()] {
        let mut m = bytes.clone();
        m.extend_from_slice(&extra);
        assert!(
            decode(&m).is_err(),
            "{} trailing bytes accepted",
            extra.len()
        );
    }
    // Swapping two whole sections (frames out of order relative to the
    // header's promise) must also fail structural validation — exercise
    // it by duplicating the final END section marker mid-stream.
    bytes.truncate(bytes.len() - 13); // strip END section (tag+len+crc)
    assert!(decode(&bytes).is_err(), "missing end section accepted");
}

//! Corruption fuzzing: every single-bit flip, every truncation, and
//! trailing garbage must surface as a structured [`CheckpointError`] —
//! never a panic, an allocation bomb, or a silently different snapshot.

use std::sync::Arc;

use fastlsa_core::{align_opts, AlignOptions, CheckpointPolicy, FastLsaConfig};
use flsa_checkpoint::{decode, CheckpointError, MemorySink, SnapshotMeta};
use flsa_dp::Metrics;
use flsa_scoring::ScoringScheme;
use flsa_seq::generate::homologous_pair;
use flsa_seq::Alphabet;

/// A small but structurally rich snapshot: real recursion frames with
/// grid caches and a partial path, kept to a few KB so the
/// flip-every-bit sweep stays fast.
fn sample_snapshot() -> Vec<u8> {
    let scheme = ScoringScheme::dna_default();
    let (a, b) = homologous_pair("fuzz", &Alphabet::dna(), 48, 0.8, 21).unwrap();
    let meta = SnapshotMeta::for_run("dna", &scheme, &a, &b, 1);
    let sink = Arc::new(MemorySink::new(meta));
    let opts = AlignOptions {
        checkpoint: Some(CheckpointPolicy::new(1, sink.clone())),
        ..AlignOptions::default()
    };
    align_opts(
        &a,
        &b,
        &scheme,
        FastLsaConfig::new(2, 64),
        &opts,
        &Metrics::new(),
    )
    .unwrap();
    let snapshots = sink.snapshots();
    assert!(snapshots.len() >= 3, "need mid-run snapshots");
    // A middle snapshot: non-empty frame stack, some path, some grids.
    let bytes = snapshots[snapshots.len() / 2].clone();
    let snap = decode(&bytes).unwrap();
    assert!(!snap.state.frames.is_empty());
    bytes
}

#[test]
fn every_single_bit_flip_is_rejected() {
    let bytes = sample_snapshot();
    let baseline = decode(&bytes).unwrap();
    let mut flipped = 0u64;
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut m = bytes.clone();
            m[i] ^= 1 << bit;
            // Must not panic; CRC framing (payloads), explicit checks
            // (magic, version, tags, lengths) catch everything else.
            match decode(&m) {
                Err(_) => flipped += 1,
                Ok(snap) => panic!(
                    "bit {bit} of byte {i} flipped undetected (decoded {} frames vs {})",
                    snap.state.frames.len(),
                    baseline.state.frames.len()
                ),
            }
        }
    }
    assert_eq!(flipped, bytes.len() as u64 * 8);
}

#[test]
fn every_truncation_is_rejected() {
    let bytes = sample_snapshot();
    for len in 0..bytes.len() {
        assert!(
            decode(&bytes[..len]).is_err(),
            "truncation to {len}/{} bytes went undetected",
            bytes.len()
        );
    }
    assert!(decode(&bytes).is_ok());
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = sample_snapshot();
    for extra in [vec![0u8], vec![0xFF; 7], b"FLSACKP1".to_vec()] {
        let mut m = bytes.clone();
        m.extend_from_slice(&extra);
        assert!(
            decode(&m).is_err(),
            "{} trailing bytes accepted",
            extra.len()
        );
    }
    // Swapping two whole sections (frames out of order relative to the
    // header's promise) must also fail structural validation — exercise
    // it by duplicating the final END section marker mid-stream.
    bytes.truncate(bytes.len() - 13); // strip END section (tag+len+crc)
    assert!(decode(&bytes).is_err(), "missing end section accepted");
}

const TAG_FRAME: u8 = 4;

/// Splits an encoded snapshot into its 12-byte preamble
/// (magic + version) and the intact CRC-framed sections, so tests can
/// shuffle whole sections without invalidating any CRC — the attacks
/// below must be caught structurally, not by checksums.
fn split_sections(bytes: &[u8]) -> (Vec<u8>, Vec<(u8, Vec<u8>)>) {
    let preamble = bytes[..12].to_vec();
    let mut sections = Vec::new();
    let mut i = 12;
    while i < bytes.len() {
        let tag = bytes[i];
        let len = u64::from_le_bytes(bytes[i + 1..i + 9].try_into().unwrap()) as usize;
        let end = i + 9 + len + 4; // tag + len + payload + crc
        sections.push((tag, bytes[i..end].to_vec()));
        i = end;
    }
    (preamble, sections)
}

fn rejoin(preamble: &[u8], sections: &[(u8, Vec<u8>)]) -> Vec<u8> {
    let mut out = preamble.to_vec();
    for (_, s) in sections {
        out.extend_from_slice(s);
    }
    out
}

#[test]
fn duplicated_frame_section_is_rejected() {
    let bytes = sample_snapshot();
    let (preamble, sections) = split_sections(&bytes);
    // The splitter itself must be faithful.
    assert_eq!(rejoin(&preamble, &sections), bytes);
    let frame_at = sections
        .iter()
        .position(|(t, _)| *t == TAG_FRAME)
        .expect("snapshot has a frame section");
    let mut dup = sections.clone();
    dup.insert(frame_at, sections[frame_at].clone());
    // Every CRC still passes; the header's frame count is the only
    // witness — it must reject the replay as corruption.
    match decode(&rejoin(&preamble, &dup)) {
        Err(CheckpointError::Corrupt(d)) => {
            assert!(d.contains("frames"), "unexpected detail: {d}")
        }
        other => panic!("duplicated frame accepted: {other:?}"),
    }
}

#[test]
fn reordered_frame_sections_are_rejected() {
    let bytes = sample_snapshot();
    let (preamble, sections) = split_sections(&bytes);
    let frame_idxs: Vec<usize> = sections
        .iter()
        .enumerate()
        .filter(|(_, (t, _))| *t == TAG_FRAME)
        .map(|(i, _)| i)
        .collect();
    assert!(
        frame_idxs.len() >= 2,
        "need a recursion stack at least two frames deep to reorder"
    );
    // Swap every adjacent pair of frame sections: the count matches the
    // header's promise and every CRC passes, so only the structural
    // nesting check (each frame inside its parent, interior frames
    // carrying grid caches) can — and must — catch the reorder.
    for w in frame_idxs.windows(2) {
        let mut swapped = sections.clone();
        swapped.swap(w[0], w[1]);
        match decode(&rejoin(&preamble, &swapped)) {
            Err(CheckpointError::Corrupt(_)) => {}
            other => panic!(
                "swapping frame sections {} and {} accepted: {other:?}",
                w[0], w[1]
            ),
        }
    }
}

//! End-to-end snapshot round trips: a checkpointed run's snapshots
//! decode, validate, and resume to the byte-identical optimal result —
//! through the in-memory sink and through the durable file sink.

use std::sync::Arc;

use fastlsa_core::{align_opts, align_with, AlignOptions, CheckpointPolicy, FastLsaConfig};
use flsa_checkpoint::{
    decode, read_snapshot, resume_from_snapshot, CheckpointError, CheckpointMetrics,
    FileCheckpointSink, MemorySink, SnapshotMeta,
};
use flsa_dp::Metrics;
use flsa_scoring::ScoringScheme;
use flsa_seq::generate::homologous_pair;
use flsa_seq::Alphabet;

fn inputs(len: usize, seed: u64) -> (flsa_seq::Sequence, flsa_seq::Sequence) {
    homologous_pair("rt", &Alphabet::dna(), len, 0.8, seed).unwrap()
}

#[test]
fn every_snapshot_resumes_to_the_reference_result() {
    let scheme = ScoringScheme::dna_default();
    let (a, b) = inputs(240, 11);
    for threads in [1usize, 3] {
        let cfg = FastLsaConfig::new(4, 256).with_threads(threads);
        let reference = align_with(&a, &b, &scheme, cfg, &Metrics::new()).unwrap();

        let meta = SnapshotMeta::for_run("dna", &scheme, &a, &b, 1);
        let sink = Arc::new(MemorySink::new(meta));
        let opts = AlignOptions {
            checkpoint: Some(CheckpointPolicy::new(1, sink.clone())),
            ..AlignOptions::default()
        };
        align_opts(&a, &b, &scheme, cfg, &opts, &Metrics::new()).unwrap();

        let snapshots = sink.snapshots();
        assert!(snapshots.len() > 3, "got {} snapshots", snapshots.len());
        for (i, bytes) in snapshots.iter().enumerate() {
            let snap =
                decode(bytes).unwrap_or_else(|e| panic!("snapshot {i} failed to decode: {e}"));
            // The snapshot is self-contained: sequences come back out.
            let (ra, rb) = snap.sequences(&scheme).unwrap();
            assert_eq!(ra.codes(), a.codes());
            assert_eq!(rb.codes(), b.codes());
            let r = resume_from_snapshot(&snap, &scheme, &AlignOptions::default(), &Metrics::new())
                .unwrap_or_else(|e| panic!("snapshot {i} failed to resume: {e}"));
            assert_eq!(r.score, reference.score, "threads={threads} snapshot {i}");
            assert_eq!(r.path, reference.path, "threads={threads} snapshot {i}");
        }
    }
}

#[test]
fn file_sink_writes_atomically_and_reads_back() {
    let scheme = ScoringScheme::dna_default();
    let (a, b) = inputs(160, 3);
    let cfg = FastLsaConfig::new(4, 256);
    let reference = align_with(&a, &b, &scheme, cfg, &Metrics::new()).unwrap();

    let dir = std::env::temp_dir().join(format!("flsa-ckpt-rt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.ckpt");
    let meta = SnapshotMeta::for_run("dna", &scheme, &a, &b, 2);
    let registry = flsa_metrics::Registry::new();
    let sink = Arc::new(
        FileCheckpointSink::new(&path, meta).with_metrics(CheckpointMetrics::new(&registry)),
    );
    let opts = AlignOptions {
        checkpoint: Some(CheckpointPolicy::new(2, sink.clone())),
        ..AlignOptions::default()
    };
    align_opts(&a, &b, &scheme, cfg, &opts, &Metrics::new()).unwrap();

    assert!(
        sink.saves() > 1,
        "expected multiple saves, got {}",
        sink.saves()
    );
    // Every completed save was accounted to the registry, including its
    // fsync latency.
    let snap_metrics = registry.snapshot();
    use flsa_metrics::names;
    assert_eq!(
        snap_metrics.counter(names::CHECKPOINT_SAVES_TOTAL),
        Some(sink.saves())
    );
    assert!(snap_metrics.counter(names::CHECKPOINT_BYTES_TOTAL).unwrap() > 0);
    let fsync = snap_metrics.histogram(names::CHECKPOINT_FSYNC_NS).unwrap();
    assert_eq!(fsync.count, sink.saves());
    assert!(fsync.sum > 0);
    // The published file is always the latest complete snapshot.
    let snap = read_snapshot(&path).unwrap();
    assert_eq!(snap.meta.every_blocks, 2);
    let r =
        resume_from_snapshot(&snap, &scheme, &AlignOptions::default(), &Metrics::new()).unwrap();
    assert_eq!(r.score, reference.score);
    assert_eq!(r.path, reference.path);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mismatched_scheme_is_rejected_structurally() {
    let scheme = ScoringScheme::dna_default();
    let (a, b) = inputs(120, 5);
    let meta = SnapshotMeta::for_run("dna", &scheme, &a, &b, 1);
    let sink = Arc::new(MemorySink::new(meta));
    let opts = AlignOptions {
        checkpoint: Some(CheckpointPolicy::new(1, sink.clone())),
        ..AlignOptions::default()
    };
    align_opts(
        &a,
        &b,
        &scheme,
        FastLsaConfig::new(4, 128),
        &opts,
        &Metrics::new(),
    )
    .unwrap();
    let snap = decode(&sink.last().unwrap()).unwrap();

    // Different alphabet entirely.
    let protein = ScoringScheme::protein_default();
    match snap.sequences(&protein) {
        Err(CheckpointError::Mismatch(_)) => {}
        other => panic!("expected alphabet mismatch, got {other:?}"),
    }

    // Same alphabet, different scoring parameters → digest mismatch.
    let tweaked = flsa_scoring::ScoringScheme::new(
        flsa_scoring::SubstitutionMatrix::match_mismatch("dna+2/-3", Alphabet::dna(), 2, -3),
        flsa_scoring::GapModel::linear(-1),
    );
    match snap.sequences(&tweaked) {
        Err(CheckpointError::Mismatch(_)) => {}
        other => panic!("expected digest mismatch, got {other:?}"),
    }

    // The matching scheme still works.
    assert!(snap.sequences(&scheme).is_ok());
}

#[test]
fn missing_file_is_an_io_error() {
    let err = read_snapshot(std::path::Path::new("/nonexistent/flsa.ckpt")).unwrap_err();
    assert!(matches!(err, CheckpointError::Io(_)), "{err:?}");
}

//! `flsa` — command-line front end for the FastLSA alignment library.
//!
//! ```text
//! flsa align [options] A.fasta B.fasta     align two sequences
//! flsa gen   [options]                     generate a synthetic homologous pair
//! flsa info                                list matrices and the workload suite
//! ```
//!
//! Run `flsa help` for the full option list.
#![forbid(unsafe_code)]

mod args;

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fastlsa_core::{
    AlignError, AlignOptions, CancelToken, CheckpointPolicy, FastLsaConfig, ParallelConfig,
};
use flsa_checkpoint::{
    read_snapshot, resume_from_snapshot, CheckpointMetrics, FileCheckpointSink, SnapshotMeta,
};
use flsa_dp::{Alignment, Kernel, KernelBackend, Metrics};
use flsa_metrics::{MetricsSnapshot, Registry};
use flsa_scoring::{tables, GapModel, ScoringScheme};
use flsa_seq::{fasta, generate, Alphabet, Sequence};
use flsa_trace::Recorder;

const HELP: &str = "\
flsa - FastLSA sequence alignment (Driga et al., ICPP 2003)

USAGE:
    flsa align [options] A.fasta [B.fasta]
    flsa batch [options] PAIRS.fasta [B.fasta]  align many pairs at once on the
                                            inter-sequence batch kernel
    flsa resume [options] CKPT              continue an interrupted checkpointed run
    flsa msa   [options] FAMILY.fasta       center-star multiple alignment
    flsa serve [options]                    alignment daemon (TCP, crash-safe)
    flsa report [TRACE] [--metrics FILE]    analyze a trace and/or metrics export
    flsa bench kernels [options]            DP kernel backend throughput sweep
    flsa bench metrics [options]            metrics-layer overhead bench + gate
    flsa bench serve [options]              seeded load harness for the daemon
    flsa bench shard [options]              sharded-execution bench + chaos gate
    flsa gen   [options]
    flsa info
    flsa help

ALIGN OPTIONS:
    --algo ALGO        fastlsa (default) | nw | nw-packed | hirschberg | sw
                       | banded | gotoh | mm-affine | fastlsa-affine | fit | overlap
    --matrix NAME      dna (default) | blosum62 | pam250 | identity | paper
    --matrix-file F    load an NCBI-format matrix file instead
    --gap N            linear gap penalty (default -10)
    --gap-open N       affine gap open (gotoh/mm-affine; default -10)
    --gap-extend N     affine gap extend (gotoh/mm-affine; default -2)
    --band W           band half-width for --algo banded (default 32)
    -k, --k N          FastLSA grid division factor (default 8)
    --base-cells N     FastLSA base-case buffer, DPM entries (default 1Mi)
    --memory BYTES     derive k/base-cells from a memory budget instead;
                       also enforced at runtime: allocations beyond the
                       budget walk the degradation ladder (smaller
                       base-case buffer, then smaller k)
    --deadline-ms N    cancel the alignment after N milliseconds
    --threads P        parallel FastLSA with P threads (default 1)
    --tiles F          tiles per grid block per dimension (default auto)
    --shards N         (fastlsa only) multi-process execution: a
                       coordinator farms grid-block tasks out to N
                       `flsa shard-worker` processes over CRC-framed
                       pipes, with per-task deadlines, heartbeats,
                       reassignment, and worker quarantine; the output
                       is byte-identical to the sequential run under
                       any worker failure mix. Exclusive with
                       --threads, --checkpoint, --matrix-file,
                       --memory, --deadline-ms, and --kernel.
    --shard-fault S    per-slot worker fault specs for chaos runs,
                       semicolon-separated (`kill:N`, `hang:N`,
                       `corrupt:N`, `slow:MS`; empty slot = clean)
    --kernel K         DP kernel backend: auto (default) | scalar
                       | sse4.1 | avx2 | avx512. Every backend is
                       bit-identical; unavailable backends are rejected.
                       Applies to fastlsa, nw, and hirschberg.
    --stats            print cells/memory/time metrics
    --json             print score and metrics as one JSON object instead
    --trace FILE       record an execution trace (spans, wavefront tiles,
                       kernels) to FILE; analyze with `flsa report FILE`
                       or load in Perfetto / chrome://tracing
    --trace-format F   chrome (default) | jsonl
    --checkpoint FILE  (fastlsa only) write a crash-safe snapshot of the
                       recursion state to FILE, atomically, as the run
                       progresses; after a crash or kill, `flsa resume
                       FILE` continues from the last snapshot. The file
                       is removed when the run completes.
    --checkpoint-every-blocks N
                       snapshot cadence in completed grid blocks
                       (default 64)
    --metrics FILE     export the run's metrics registry (counters,
                       gauges, latency histograms) to FILE on exit —
                       JSON when FILE ends in .json, Prometheus text
                       format otherwise. With --checkpoint the file is
                       also refreshed periodically during the run, so a
                       killed run leaves a snapshot `flsa resume` folds
                       into its own totals.
    --progress         live status line on stderr (percent done,
                       cells/sec, ETA, engine phase, kernel backend),
                       refreshed at a bounded ~5 Hz
    --quiet            suppress the alignment rendering
    --width N          alignment rendering width (default 60)

BATCH OPTIONS:
    flsa batch aligns many independent pairs in one call: small pairs
    ride the striped inter-sequence batch kernel (8 or 16 pairs per
    SIMD dispatch, one pair per i16 lane), with a bit-identical exact
    fallback for lanes that could saturate. One FASTA pairs
    consecutive records (1&2, 3&4, ...); two FASTA files pair record
    i of the first with record i of the second. Output is one
    tab-separated `id_a id_b score cigar` line per pair.
    --matrix NAME      dna (default) | blosum62 | pam250 | identity | paper
    --gap N            linear gap penalty (default -10)
    --kernel K         as for align: auto (default) | scalar | sse4.1
                       | avx2 | avx512
    --json             print one JSON array instead of the table
    --stats            print pair count, backend, cells, memory, time

RESUME OPTIONS (plus --stats/--json/--quiet/--trace/--metrics/
                --progress as for align):
    flsa resume CKPT   validates the snapshot (CRC-framed; scheme and
                       sequence digests must match) and continues the
                       run to completion, checkpointing at the same
                       cadence. A corrupt or mismatched snapshot exits
                       with code 3 and touches nothing. With --metrics
                       FILE, an existing export at FILE (from the killed
                       run) is folded in so the final export covers the
                       whole logical alignment.

SERVE OPTIONS:
    --addr A:P         listen address (default 127.0.0.1:7878; port 0
                       picks a free port, printed as `listening on ...`)
    --workers N        worker threads executing jobs (default 2)
    --queue-cap N      bounded admission queue; a full queue answers
                       Overloaded with a retry-after hint (default 64)
    --memory BYTES     server-wide admission budget: jobs that can never
                       fit get a typed TooLarge, jobs that do not fit
                       right now wait their turn (default unbudgeted)
    --retries N        retry attempts after a contained worker panic
                       (default 2)
    --deadline-ms N    default deadline for requests that carry none
                       (default 0 = none)
    --spool DIR        crash-safe spool: large jobs are journaled and
                       checkpointed under DIR, so a SIGKILL'd daemon
                       finishes them byte-identically after restart
    --spool-min-cells N
                       jobs with m*n cells at or above N are spooled
                       (default 250000)
    --spool-retain N   keep only the newest N completed results in the
                       spool; older job files are garbage-collected in
                       a crash-safe order (.done before .req), so a
                       restart mid-GC never orphans an accepted job
                       (default 256)
    --checkpoint-every-blocks N
                       checkpoint cadence for spooled jobs (default 4)
    --metrics FILE     export the serve registry (requests, retries,
                       panics, queue depth, latency histograms) to FILE
                       when the daemon drains
    --fault-seed N     inject the seeded ServeFaultPlan N (chaos/CI
                       only): panics, stalls, or tight deadlines on a
                       deterministic target job

    The daemon runs until SIGTERM/SIGINT (graceful drain: stop
    accepting, finish or checkpoint in-flight work, answer queued jobs
    with Draining) or a client Shutdown frame. Exit codes: 0 clean
    drain, 2 bind/config error, 3 unrecoverable spool corruption.

REPORT OPTIONS:
    flsa report accepts a trace file, or --metrics alone, or both.
    --metrics FILE     load a metrics export written by `flsa align
                       --metrics` or `flsa serve --metrics`. With a
                       trace, cross-check it: per-backend cell counts
                       must match the trace-derived totals exactly, and
                       the worker busy/idle split is folded into an
                       occupancy figure. Serve exports additionally get
                       a service section (outcome counts, retries and
                       contained panics, queue depth peak, request and
                       admission-wait latency quantiles).

BENCH OPTIONS (flsa bench metrics):
    --len N            square problem side for the end-to-end overhead
                       measurement (default 10000)
    --reps N           timed repetitions per configuration, best kept
                       (default 3)
    --threads P        worker threads for the parallel align (default 4,
                       capped at the host's parallelism)
    --gate F           fail (exit 1) if metrics-on overhead exceeds F
                       percent end-to-end
    -o, --out FILE     JSON report path (default BENCH_metrics.json)

BENCH OPTIONS (flsa bench serve):
    --mix M            read-heavy | rapid-grow (default: both)
    --mode M           closed | open (default: both)
    --clients N        concurrent client connections (default 4)
    --ops N            requests per client (default 32)
    --rate F           open-loop submission rate per client, req/s
                       (default 100)
    --seed N           workload seed (default 42; same seed, same jobs)
    --threads P        daemon worker threads (default 4, capped at the
                       host's parallelism)
    --memory BYTES     daemon admission budget (default unbudgeted)
    --gate F           fail (exit 1) unless every request was answered
                       and the slowest closed-loop cell sustains F req/s
    -o, --out FILE     JSON report path (default BENCH_serve.json)

BENCH OPTIONS (flsa bench shard):
    --len N            square problem side (default 600)
    --reps N           timed repetitions, best kept (default 3)
    --shards N         worker processes for the clean sharded run
                       (default 4)
    --ops N            chaos plans from the seeded matrix to run
                       (default 8)
    --seed N           base seed for the chaos plans (default 0)
    --gate MS          fail (exit 1) unless every run (clean and chaos)
                       is byte-identical to the sequential engine and
                       the slowest chaos run recovers end to end within
                       MS milliseconds
    -o, --out FILE     JSON report path (default BENCH_shard.json)

BENCH OPTIONS (flsa bench kernels):
    --len CSV          comma-separated square problem sides
                       (default 1024,4096,10000)
    --reps N           timed repetitions per case, best kept (default 3)
    --gate F           fail (exit 1) unless the best vectorized backend
                       reaches F x scalar cells/sec on the largest size
    -o, --out FILE     JSON report path (default BENCH_kernels.json)

GEN OPTIONS:
    --kind dna|protein (default dna)
    --len N            ancestor length (default 1000)
    --identity F       target identity 0..1 (default 0.85)
    --seed N           RNG seed (default 42)
    -o, --out FILE     output FASTA (default stdout)

EXIT CODES:
    0  success
    1  runtime fault (memory exhausted, deadline hit, worker panic, I/O)
    2  bad configuration or arguments
    3  malformed or unreadable input
";

/// A CLI failure: the message printed to stderr plus the process exit
/// code. The taxonomy (1 runtime fault, 2 bad config/args, 3 malformed
/// input) lets scripts distinguish "your command was wrong" from "your
/// data was wrong" from "the run itself failed".
struct CliError {
    code: u8,
    msg: String,
}

impl CliError {
    /// Exit 2: bad arguments, unknown names, invalid configuration.
    fn usage(msg: impl Into<String>) -> Self {
        Self {
            code: 2,
            msg: msg.into(),
        }
    }

    /// Exit 3: input files that are missing, unreadable, or malformed.
    fn input(msg: impl Into<String>) -> Self {
        Self {
            code: 3,
            msg: msg.into(),
        }
    }

    /// Exit 1: faults at run time — allocation exhaustion past the
    /// bottom of the degradation ladder, cancellation, worker panics,
    /// output I/O errors.
    fn runtime(msg: impl Into<String>) -> Self {
        Self {
            code: 1,
            msg: msg.into(),
        }
    }
}

impl From<AlignError> for CliError {
    fn from(e: AlignError) -> Self {
        match &e {
            AlignError::Config(_) => Self::usage(e.to_string()),
            AlignError::AlphabetMismatch { .. } => Self::input(e.to_string()),
            // A snapshot that fails validation is malformed input, like
            // a bad FASTA file — distinct from faults during the run.
            AlignError::CorruptCheckpoint { .. } => Self::input(e.to_string()),
            _ => Self::runtime(e.to_string()),
        }
    }
}

impl From<flsa_shard::ShardError> for CliError {
    fn from(e: flsa_shard::ShardError) -> Self {
        match e {
            flsa_shard::ShardError::Config { .. } => Self::usage(e.to_string()),
            flsa_shard::ShardError::Align(inner) => Self::from(inner),
            // NoWorkers / TaskFailed: the fleet failed at run time.
            _ => Self::runtime(e.to_string()),
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("flsa: {}", e.msg);
            ExitCode::from(e.code)
        }
    }
}

fn run(argv: &[String]) -> Result<(), CliError> {
    let parsed = args::parse(argv).map_err(CliError::usage)?;
    if parsed.has_flag("help") {
        print!("{HELP}");
        return Ok(());
    }
    match parsed.command.as_str() {
        "align" => cmd_align(&parsed),
        "batch" => cmd_batch(&parsed),
        "resume" => cmd_resume(&parsed),
        "msa" => cmd_msa(&parsed),
        "serve" => cmd_serve(&parsed),
        "shard-worker" => cmd_shard_worker(&parsed),
        "report" => cmd_report(&parsed),
        "bench" => cmd_bench(&parsed),
        "gen" => cmd_gen(&parsed),
        "info" => cmd_info(),
        "" | "help" => {
            print!("{HELP}");
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown command {other:?}; try `flsa help`"
        ))),
    }
}

fn scheme_for(name: &str, gap: i32) -> Result<ScoringScheme, String> {
    tables::scheme_by_name(name, gap).ok_or_else(|| format!("unknown matrix {name:?}"))
}

fn load_pair(paths: &[String], alphabet: &Alphabet) -> Result<(Sequence, Sequence), CliError> {
    match paths {
        [one] => {
            let recs =
                fasta::read_file(one, alphabet).map_err(|e| CliError::input(e.to_string()))?;
            let mut it = recs.into_iter();
            match (it.next(), it.next()) {
                (Some(sa), Some(sb)) => Ok((sa, sb)),
                (got, _) => Err(CliError::input(format!(
                    "{one} holds {} record(s); need two",
                    got.map_or(0, |_| 1)
                ))),
            }
        }
        [a, b] => {
            let ra = fasta::read_file(a, alphabet).map_err(|e| CliError::input(e.to_string()))?;
            let rb = fasta::read_file(b, alphabet).map_err(|e| CliError::input(e.to_string()))?;
            let sa = ra
                .into_iter()
                .next()
                .ok_or_else(|| CliError::input(format!("{a} is empty")))?;
            let sb = rb
                .into_iter()
                .next()
                .ok_or_else(|| CliError::input(format!("{b} is empty")))?;
            Ok((sa, sb))
        }
        _ => Err(CliError::usage(
            "align needs one FASTA with two records, or two FASTA files",
        )),
    }
}

/// Parses and validates `--kernel`: `None` means auto-select, `Some` is
/// a named backend the current CPU can actually run.
fn parse_kernel(a: &args::Args) -> Result<Option<KernelBackend>, CliError> {
    match a.str_or("kernel", "auto") {
        "auto" => Ok(None),
        name => {
            let b = KernelBackend::parse(name).ok_or_else(|| {
                CliError::usage(format!(
                    "unknown kernel backend {name:?} \
                     (expected auto, scalar, sse4.1, avx2, avx512)"
                ))
            })?;
            if !b.is_available() {
                return Err(CliError::usage(format!(
                    "kernel backend {name} is not available on this CPU \
                     (available: {})",
                    KernelBackend::available()
                        .iter()
                        .map(|b| b.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
            Ok(Some(b))
        }
    }
}

/// A run's metrics registry, when `--metrics` or `--progress` asked for
/// one. `None` keeps the metrics-off path allocation-free.
fn registry_for(a: &args::Args) -> Option<Arc<Registry>> {
    (a.options.contains_key("metrics") || a.has_flag("progress")).then(|| Arc::new(Registry::new()))
}

/// Writes a registry snapshot to `path`, atomically (tmp + rename): JSON
/// when the path ends in `.json`, Prometheus text format otherwise.
fn write_metrics_file(path: &str, snap: &MetricsSnapshot) -> Result<(), String> {
    let body = if path.ends_with(".json") {
        snap.to_json()
    } else {
        snap.to_prometheus()
    };
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, body).map_err(|e| format!("{path}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("{path}: {e}"))
}

/// The background observer behind `--progress` and the periodic metrics
/// refresh: one thread, woken every 200 ms, that repaints the status
/// line and (when checkpointing, so a killed run leaves something to
/// resume *and* to seed metrics from) rewrites the metrics export about
/// once a second.
struct LiveObserver {
    stop: std::sync::mpsc::Sender<()>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl LiveObserver {
    /// Spawns the observer, or returns `None` when it would have nothing
    /// to do (no progress line, nothing to refresh) — a bare `--metrics`
    /// run pays only the final export.
    fn spawn(reg: &Arc<Registry>, progress: bool, refresh_path: Option<String>) -> Option<Self> {
        if !progress && refresh_path.is_none() {
            return None;
        }
        // The channel doubles as the stop signal: `finish` drops the
        // sender, turning the 200ms `recv_timeout` tick into an
        // immediate `Disconnected` — shutdown never waits out a sleep.
        let (stop, tick) = std::sync::mpsc::channel::<()>();
        let reg = Arc::clone(reg);
        let handle = std::thread::spawn(move || {
            let line = progress.then(|| flsa_metrics::progress::Progress::new(&reg));
            let start = Instant::now();
            let mut ticks = 0u64;
            loop {
                let disconnected = matches!(
                    tick.recv_timeout(Duration::from_millis(200)),
                    Err(std::sync::mpsc::RecvTimeoutError::Disconnected)
                );
                if disconnected {
                    break;
                }
                if let Some(p) = &line {
                    use std::io::Write as _;
                    eprint!("\r{}", p.line(start.elapsed().as_secs_f64()));
                    let _ = std::io::stderr().flush();
                }
                ticks += 1;
                if ticks % 5 == 0 {
                    if let Some(path) = &refresh_path {
                        let _ = write_metrics_file(path, &reg.snapshot());
                    }
                }
            }
            if line.is_some() {
                eprintln!();
            }
        });
        Some(LiveObserver {
            stop,
            handle: Some(handle),
        })
    }

    /// Stops the refresh loop and waits for the final repaint.
    fn finish(mut self) {
        drop(self.stop);
        if let Some(h) = self.handle.take() {
            h.join().ok();
        }
    }

    /// `finish` for an optional observer.
    fn finish_opt(live: Option<Self>) {
        if let Some(l) = live {
            l.finish();
        }
    }
}

/// Final `--metrics` export. Called after the run settles (success or
/// fault — a deadline-hit or exhausted run still leaves its numbers); a
/// write failure is only promoted to an error when the run itself
/// succeeded, so it never masks the run's own fault.
fn export_metrics(
    a: &args::Args,
    registry: Option<&Arc<Registry>>,
    run_failed: bool,
) -> Result<(), CliError> {
    let (Some(reg), Some(path)) = (registry, a.options.get("metrics")) else {
        return Ok(());
    };
    match write_metrics_file(path, &reg.snapshot()) {
        Ok(()) => Ok(()),
        Err(e) if run_failed => {
            eprintln!("flsa: warning: metrics export failed: {e}");
            Ok(())
        }
        Err(e) => Err(CliError::runtime(e)),
    }
}

fn cmd_align(a: &args::Args) -> Result<(), CliError> {
    let gap: i32 = a.get_or("gap", -10).map_err(CliError::usage)?;
    let scheme = if let Some(path) = a.options.get("matrix-file") {
        let text =
            std::fs::read_to_string(path).map_err(|e| CliError::input(format!("{path}: {e}")))?;
        let matrix = flsa_scoring::parse_ncbi(path, &text)
            .map_err(|e| CliError::input(format!("{path}: {e}")))?;
        ScoringScheme::new(matrix, GapModel::linear(gap))
    } else {
        scheme_for(a.str_or("matrix", "dna"), gap).map_err(CliError::usage)?
    };
    let (sa, sb) = load_pair(&a.positional, scheme.alphabet())?;

    let algo = a.str_or("algo", "fastlsa");
    if a.options.contains_key("checkpoint") {
        if algo != "fastlsa" {
            return Err(CliError::usage(
                "--checkpoint is only supported for --algo fastlsa",
            ));
        }
        if a.options.contains_key("matrix-file") {
            return Err(CliError::usage(
                "--checkpoint needs a named --matrix (snapshots record the scheme by name \
                 so `flsa resume` can rebuild it)",
            ));
        }
    }
    if a.options.contains_key("shards") && algo != "fastlsa" {
        return Err(CliError::usage(
            "--shards is only supported for --algo fastlsa",
        ));
    }
    let threads: usize = a.get_or("threads", 1).map_err(CliError::usage)?;
    let kernel_choice = parse_kernel(a)?;
    let trace_format = a.str_or("trace-format", "chrome");
    if !matches!(trace_format, "chrome" | "jsonl") {
        return Err(CliError::usage(format!(
            "unknown trace format {trace_format:?} (expected chrome or jsonl)"
        )));
    }
    let recorder = a.options.get("trace").map(|_| Arc::new(Recorder::new()));
    let registry = registry_for(a);
    let mut metrics = match &recorder {
        Some(r) => Metrics::with_recorder(Arc::clone(r)),
        None => Metrics::new(),
    };
    if let Some(reg) = &registry {
        metrics = metrics.with_registry(reg);
    }
    let live = registry.as_ref().and_then(|reg| {
        // Refresh the export mid-run only when a checkpoint makes the
        // partial totals resumable; otherwise it is written once on exit.
        let refresh = a
            .options
            .contains_key("checkpoint")
            .then(|| a.options.get("metrics").cloned())
            .flatten();
        LiveObserver::spawn(reg, a.has_flag("progress"), refresh)
    });
    let start = Instant::now();

    let outcome = (|| -> Result<(i64, Option<flsa_dp::Path>), CliError> {
        Ok(match algo {
            "fastlsa" => {
                let shards: usize = a.get_or("shards", 0).map_err(CliError::usage)?;
                if shards > 0 {
                    return run_sharded(
                        a,
                        shards,
                        &sa,
                        &sb,
                        gap,
                        threads,
                        kernel_choice.is_some(),
                        &registry,
                        &metrics,
                    );
                }
                let mut budget_bytes = None;
                let mut cfg = if let Some(mem) = a.options.get("memory") {
                    let bytes: usize = mem
                        .parse()
                        .map_err(|_| CliError::usage(format!("invalid --memory value {mem:?}")))?;
                    budget_bytes = Some(bytes);
                    FastLsaConfig::for_memory(bytes, sa.len(), sb.len())
                } else {
                    FastLsaConfig::new(
                        a.get_or("k", 8).map_err(CliError::usage)?,
                        a.get_or("base-cells", 1usize << 20)
                            .map_err(CliError::usage)?,
                    )
                };
                if threads > 1 {
                    let tiles = a.get_or("tiles", 0usize).map_err(CliError::usage)?;
                    cfg = if tiles > 0 {
                        cfg.with_parallel(ParallelConfig {
                            threads,
                            tiles_per_block: tiles,
                        })
                    } else {
                        cfg.with_threads(threads)
                    };
                }
                let cancel = match a.options.get("deadline-ms") {
                    Some(ms) => {
                        let ms: u64 = ms.parse().map_err(|_| {
                            CliError::usage(format!("invalid --deadline-ms value {ms:?}"))
                        })?;
                        Some(CancelToken::with_deadline(Duration::from_millis(ms)))
                    }
                    None => None,
                };
                let checkpoint = match a.options.get("checkpoint") {
                    Some(ckpt_path) => {
                        let every: u64 = a
                            .get_or("checkpoint-every-blocks", 64)
                            .map_err(CliError::usage)?;
                        if every == 0 {
                            return Err(CliError::usage(
                                "--checkpoint-every-blocks must be at least 1",
                            ));
                        }
                        let meta = SnapshotMeta::for_run(
                            a.str_or("matrix", "dna"),
                            &scheme,
                            &sa,
                            &sb,
                            every,
                        );
                        let mut sink = FileCheckpointSink::new(ckpt_path.as_str(), meta);
                        if let Some(reg) = &registry {
                            sink = sink.with_metrics(CheckpointMetrics::new(reg));
                        }
                        Some(CheckpointPolicy::new(every, Arc::new(sink)))
                    }
                    None => None,
                };
                let opts = AlignOptions {
                    budget_bytes,
                    cancel,
                    checkpoint,
                    kernel: kernel_choice,
                    registry: registry.clone(),
                    ..AlignOptions::default()
                };
                let r = fastlsa_core::align_opts(&sa, &sb, &scheme, cfg, &opts, &metrics)?;
                // The job finished: the snapshot has served its purpose.
                if let Some(ckpt_path) = a.options.get("checkpoint") {
                    cleanup_checkpoint(ckpt_path);
                }
                (r.score, Some(r.path))
            }
            "nw" => {
                // The reference FM algorithm defaults to the scalar kernel;
                // an explicit --kernel switches the fill backend.
                let r = match kernel_choice {
                    Some(b) => {
                        let kernel = Kernel::try_new(b).expect("pre-validated backend");
                        flsa_fullmatrix::needleman_wunsch_kernel(
                            &sa, &sb, &scheme, &kernel, &metrics,
                        )
                    }
                    None => flsa_fullmatrix::needleman_wunsch(&sa, &sb, &scheme, &metrics),
                };
                (r.score, Some(r.path))
            }
            "nw-packed" => {
                let r = flsa_fullmatrix::needleman_wunsch_packed(&sa, &sb, &scheme, &metrics);
                (r.score, Some(r.path))
            }
            "hirschberg" => {
                let kernel = match kernel_choice {
                    Some(b) => Kernel::try_new(b).expect("pre-validated backend"),
                    None => Kernel::auto(),
                };
                let r = flsa_hirschberg::hirschberg_kernel(
                    &sa,
                    &sb,
                    &scheme,
                    flsa_hirschberg::HirschbergConfig::default(),
                    &kernel,
                    &metrics,
                );
                (r.score, Some(r.path))
            }
            "banded" => {
                let w: usize = a.get_or("band", 32).map_err(CliError::usage)?;
                let r = flsa_fullmatrix::banded_needleman_wunsch(&sa, &sb, &scheme, w, &metrics);
                (r.score, Some(r.path))
            }
            "gotoh" | "mm-affine" | "fastlsa-affine" => {
                let open: i32 = a.get_or("gap-open", -10).map_err(CliError::usage)?;
                let extend: i32 = a.get_or("gap-extend", -2).map_err(CliError::usage)?;
                let affine =
                    ScoringScheme::new(scheme.matrix().clone(), GapModel::affine(open, extend));
                let r = match algo {
                    "gotoh" => flsa_fullmatrix::gotoh(&sa, &sb, &affine, &metrics),
                    "mm-affine" => {
                        flsa_hirschberg::myers_miller_affine(&sa, &sb, &affine, &metrics)
                    }
                    _ => {
                        let cfg = FastLsaConfig::new(
                            a.get_or("k", 8).map_err(CliError::usage)?,
                            a.get_or("base-cells", 1usize << 20)
                                .map_err(CliError::usage)?,
                        );
                        fastlsa_core::align_affine(&sa, &sb, &affine, cfg, &metrics)?
                    }
                };
                (r.score, Some(r.path))
            }
            "fit" => {
                let r = flsa_fullmatrix::semiglobal(
                    &sa,
                    &sb,
                    &scheme,
                    flsa_fullmatrix::EndsFree::FIT_A_IN_B,
                    &metrics,
                );
                (r.score, Some(r.path))
            }
            "overlap" => {
                let r = flsa_fullmatrix::semiglobal(
                    &sa,
                    &sb,
                    &scheme,
                    flsa_fullmatrix::EndsFree::OVERLAP_A_THEN_B,
                    &metrics,
                );
                (r.score, Some(r.path))
            }
            "sw" => {
                let r = flsa_fullmatrix::smith_waterman(&sa, &sb, &scheme, &metrics);
                println!(
                    "local score {} over {}[{:?}] x {}[{:?}]",
                    r.score,
                    sa.id(),
                    r.a_range(),
                    sb.id(),
                    r.b_range()
                );
                (r.score, None)
            }
            other => return Err(CliError::usage(format!("unknown algorithm {other:?}"))),
        })
    })();
    let elapsed = start.elapsed();
    LiveObserver::finish_opt(live);
    export_metrics(a, registry.as_ref(), outcome.is_err())?;
    let (score, path) = outcome?;
    report_run(
        a,
        algo,
        score,
        path.as_ref(),
        &sa,
        &sb,
        &scheme,
        elapsed,
        &metrics,
        recorder.as_ref(),
        threads,
        trace_format,
    )
}

/// The `--shards` path of `flsa align --algo fastlsa`: a coordinator in
/// this process farms grid-block tasks out to worker processes — this
/// very binary re-invoked as `flsa shard-worker` — and the result flows
/// into the same reporting path as the sequential engine, because it is
/// byte-identical to it.
#[allow(clippy::too_many_arguments)]
fn run_sharded(
    a: &args::Args,
    shards: usize,
    sa: &Sequence,
    sb: &Sequence,
    gap: i32,
    threads: usize,
    explicit_kernel: bool,
    registry: &Option<Arc<Registry>>,
    metrics: &Metrics,
) -> Result<(i64, Option<flsa_dp::Path>), CliError> {
    for bad in ["checkpoint", "matrix-file", "memory", "deadline-ms"] {
        if a.options.contains_key(bad) {
            return Err(CliError::usage(format!(
                "--{bad} is not supported with --shards"
            )));
        }
    }
    if threads > 1 {
        return Err(CliError::usage(
            "--threads and --shards are exclusive: threads parallelize one \
             process, shards spread the run over worker processes",
        ));
    }
    if explicit_kernel {
        return Err(CliError::usage(
            "--kernel applies in-process; shard workers auto-select their backend",
        ));
    }
    let cfg = FastLsaConfig::new(
        a.get_or("k", 8).map_err(CliError::usage)?,
        a.get_or("base-cells", 1usize << 20)
            .map_err(CliError::usage)?,
    );
    let exe = std::env::current_exe()
        .map_err(|e| CliError::runtime(format!("cannot locate own binary: {e}")))?;
    let mut opts = flsa_shard::ShardOptions::new(
        shards,
        vec![
            exe.to_string_lossy().into_owned(),
            "shard-worker".to_string(),
        ],
    );
    if let Some(spec) = a.options.get("shard-fault") {
        opts.worker_faults = spec.split(';').map(str::to_string).collect();
    }
    opts.registry = registry.clone();
    let r = flsa_shard::align_sharded(sa, sb, a.str_or("matrix", "dna"), gap, cfg, &opts, metrics)?;
    Ok((r.score, Some(r.path)))
}

/// `flsa shard-worker`: the worker-process end of `--shards`, spoken to
/// over stdin/stdout with the `FLSASHD1` protocol. Never invoked by
/// hand; the coordinator spawns it and owns both pipes (stdout carries
/// protocol frames, so nothing may print there).
fn cmd_shard_worker(a: &args::Args) -> Result<(), CliError> {
    if !a.positional.is_empty() {
        return Err(CliError::usage(
            "shard-worker takes no positional arguments",
        ));
    }
    let mut opts = flsa_shard::WorkerOptions::default();
    opts.heartbeat_ms = a
        .get_or("heartbeat-ms", opts.heartbeat_ms)
        .map_err(CliError::usage)?;
    if let Some(spec) = a.options.get("fault") {
        opts.fault = flsa_shard::WorkerFault::parse(spec).map_err(CliError::usage)?;
    }
    // The worker's exit code is the protocol's, not the CLI taxonomy's:
    // exit straight from the loop so a Shutdown frame maps to 0.
    std::process::exit(flsa_shard::worker::run(&opts))
}

/// Prints a finished run in whichever form the flags ask for. Shared by
/// `align` and `resume` so a resumed run's output is byte-identical to
/// the uninterrupted run's.
#[allow(clippy::too_many_arguments)]
fn report_run(
    a: &args::Args,
    algo: &str,
    score: i64,
    path: Option<&flsa_dp::Path>,
    sa: &Sequence,
    sb: &Sequence,
    scheme: &ScoringScheme,
    elapsed: Duration,
    metrics: &Metrics,
    recorder: Option<&Arc<Recorder>>,
    threads: usize,
    trace_format: &str,
) -> Result<(), CliError> {
    let trace_events = match (a.options.get("trace"), recorder) {
        (Some(out), Some(r)) => {
            r.set_label(format!("{algo} {}x{}", sa.len(), sb.len()));
            r.set_threads(threads as u32);
            Some((
                out.as_str(),
                write_trace(out, trace_format, r).map_err(CliError::runtime)?,
            ))
        }
        _ => None,
    };

    if a.has_flag("json") {
        let s = metrics.snapshot();
        println!(
            "{{\"algo\":\"{algo}\",\"score\":{score},\"len_a\":{},\"len_b\":{},\
             \"threads\":{threads},\"time_ns\":{},\"cells_computed\":{},\
             \"cells_base_case\":{},\"traceback_steps\":{},\"kernel_calls\":{},\
             \"peak_bytes\":{},\"cell_factor\":{:.6}}}",
            sa.len(),
            sb.len(),
            elapsed.as_nanos(),
            s.cells_computed,
            s.cells_base_case,
            s.traceback_steps,
            s.kernel_calls,
            s.peak_bytes,
            s.cell_factor(sa.len(), sb.len())
        );
        return Ok(());
    }

    println!(
        "score {score}   ({} x {} residues, {algo})",
        sa.len(),
        sb.len()
    );
    if let Some(path) = path {
        if !a.has_flag("quiet") {
            let al = Alignment::from_path(sa, sb, path, scheme);
            println!("identity {:.1}%", al.identity() * 100.0);
            print!("{al}");
        }
    }
    if a.has_flag("stats") {
        let s = metrics.snapshot();
        println!("time            {:?}", elapsed);
        println!("cells computed  {}", s.cells_computed);
        println!("cell factor     {:.3}", s.cell_factor(sa.len(), sb.len()));
        println!("traceback steps {}", s.traceback_steps);
        println!("peak aux memory {} bytes", s.peak_bytes);
    }
    if let Some((out, events)) = trace_events {
        println!("trace           {events} events -> {out} ({trace_format})");
    }
    Ok(())
}

/// Removes a completed run's snapshot and any leftover temp buffers.
fn cleanup_checkpoint(path: &str) {
    let p = std::path::Path::new(path);
    std::fs::remove_file(p).ok();
    std::fs::remove_file(p.with_extension("tmp0")).ok();
    std::fs::remove_file(p.with_extension("tmp1")).ok();
}

/// `flsa resume CKPT`: validate a snapshot written by
/// `flsa align --checkpoint` and run the alignment to completion.
fn cmd_resume(a: &args::Args) -> Result<(), CliError> {
    let [ckpt_path] = &a.positional[..] else {
        return Err(CliError::usage(
            "resume needs exactly one checkpoint file (from `flsa align --checkpoint`)",
        ));
    };
    let snap = read_snapshot(std::path::Path::new(ckpt_path))
        .map_err(|e| CliError::input(e.to_string()))?;
    let scheme = scheme_for(&snap.meta.scheme_name, snap.meta.gap_penalty).map_err(|msg| {
        CliError::input(format!(
            "cannot rebuild the snapshot's scoring scheme: {msg}"
        ))
    })?;
    // `sequences` re-verifies the scheme digest and every residue code.
    let (sa, sb) = snap
        .sequences(&scheme)
        .map_err(|e| CliError::input(e.to_string()))?;

    let trace_format = a.str_or("trace-format", "chrome");
    if !matches!(trace_format, "chrome" | "jsonl") {
        return Err(CliError::usage(format!(
            "unknown trace format {trace_format:?} (expected chrome or jsonl)"
        )));
    }
    let recorder = a.options.get("trace").map(|_| Arc::new(Recorder::new()));
    let registry = registry_for(a);
    if let (Some(reg), Some(mpath)) = (&registry, a.options.get("metrics")) {
        // Fold in whatever the killed run managed to export (counters
        // add, gauges carry over) so the final export covers the whole
        // logical alignment, not just the resumed half.
        if let Ok(text) = std::fs::read_to_string(mpath) {
            match MetricsSnapshot::parse(&text) {
                Ok(prev) => reg.seed(&prev),
                Err(e) => {
                    eprintln!("flsa: warning: ignoring unparsable metrics file {mpath}: {e}")
                }
            }
        }
    }
    let mut metrics = match &recorder {
        Some(r) => Metrics::with_recorder(Arc::clone(r)),
        None => Metrics::new(),
    };
    if let Some(reg) = &registry {
        metrics = metrics.with_registry(reg);
    }
    let threads = snap.state.config.threads();

    // Keep checkpointing to the same file at the recorded cadence, with
    // the degrade history carried over, so a resumed run is just as
    // killable as the original.
    let mut sink = FileCheckpointSink::new(ckpt_path.as_str(), snap.meta.clone());
    if let Some(reg) = &registry {
        sink = sink.with_metrics(CheckpointMetrics::new(reg));
    }
    let opts = AlignOptions {
        checkpoint: Some(CheckpointPolicy::new(
            snap.meta.every_blocks,
            Arc::new(sink),
        )),
        registry: registry.clone(),
        ..AlignOptions::default()
    };
    let live = registry.as_ref().and_then(|reg| {
        LiveObserver::spawn(
            reg,
            a.has_flag("progress"),
            a.options.get("metrics").cloned(),
        )
    });
    let start = Instant::now();
    let outcome = resume_from_snapshot(&snap, &scheme, &opts, &metrics).map_err(CliError::from);
    let elapsed = start.elapsed();
    LiveObserver::finish_opt(live);
    export_metrics(a, registry.as_ref(), outcome.is_err())?;
    let r = outcome?;
    cleanup_checkpoint(ckpt_path);
    report_run(
        a,
        "fastlsa",
        r.score,
        Some(&r.path),
        &sa,
        &sb,
        &scheme,
        elapsed,
        &metrics,
        recorder.as_ref(),
        threads,
        trace_format,
    )
}

/// Snapshots `recorder` and writes it to `path` in `format`, returning the
/// event count.
fn write_trace(path: &str, format: &str, recorder: &Recorder) -> Result<usize, String> {
    use std::io::Write as _;
    let trace = recorder.snapshot();
    let events = trace.events.len();
    let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    match format {
        "jsonl" => flsa_trace::write_jsonl(&trace, &mut w),
        _ => flsa_trace::write_chrome(&trace, &mut w),
    }
    .and_then(|()| w.flush())
    .map_err(|e| format!("{path}: {e}"))?;
    Ok(events)
}

/// `flsa report [TRACE] [--metrics FILE]`: reads a trace (either export
/// format) and prints the utilization / pipeline-phase / recursion
/// analysis; a metrics export is cross-checked against the trace, or
/// summarized on its own when no trace is given (the `flsa serve
/// --metrics` workflow has no trace to pair with).
fn cmd_report(a: &args::Args) -> Result<(), CliError> {
    let metrics = match a.options.get("metrics") {
        Some(mpath) => {
            let mtext = std::fs::read_to_string(mpath)
                .map_err(|e| CliError::input(format!("{mpath}: {e}")))?;
            let snap = MetricsSnapshot::parse(&mtext)
                .map_err(|e| CliError::input(format!("{mpath}: {e}")))?;
            Some((mpath.as_str(), snap))
        }
        None => None,
    };
    match (&a.positional[..], &metrics) {
        ([path], _) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::input(format!("{path}: {e}")))?;
            let trace = flsa_trace::read_trace(&text)
                .map_err(|e| CliError::input(format!("{path}: {e}")))?;
            let analysis = flsa_trace::analyze(&trace);
            print!("{}", flsa_trace::render_report(&analysis));
            if let Some((mpath, snap)) = &metrics {
                print!("{}", render_metrics_crosscheck(mpath, snap, &analysis));
                print!("{}", render_serve_metrics(snap));
            }
            Ok(())
        }
        ([], Some((mpath, snap))) => {
            println!("metrics report ({mpath}):");
            let serve = render_serve_metrics(snap);
            if serve.is_empty() {
                // Not a serve export: show the engine-side totals that
                // make sense without a trace to cross-check against.
                use flsa_metrics::names;
                println!(
                    "  kernel cells    {}",
                    snap.counter(names::CELLS_TOTAL).unwrap_or(0)
                );
                println!(
                    "  kernel calls    {}",
                    snap.counter(names::KERNEL_CALLS_TOTAL).unwrap_or(0)
                );
            } else {
                print!("{serve}");
            }
            Ok(())
        }
        _ => Err(CliError::usage(
            "report needs a trace file (from `flsa align --trace`), \
             a --metrics export, or both",
        )),
    }
}

/// The service section of `flsa report --metrics`: rendered only when
/// the export came from a daemon (any `flsa_serve_*` series present).
fn render_serve_metrics(snap: &MetricsSnapshot) -> String {
    use flsa_metrics::names;
    use std::fmt::Write as _;
    let c = |name| snap.counter(name).unwrap_or(0);
    if c(names::SERVE_REQUESTS_TOTAL) == 0 && c(names::SERVE_CONNECTIONS_TOTAL) == 0 {
        return String::new();
    }
    let mut out = String::new();
    let _ = writeln!(out, "\nserve:");
    let _ = writeln!(
        out,
        "  requests        {} over {} connections",
        c(names::SERVE_REQUESTS_TOTAL),
        c(names::SERVE_CONNECTIONS_TOTAL)
    );
    let _ = writeln!(
        out,
        "  outcomes        {} ok, {} failed, {} overloaded ({} deadline-expired)",
        c(names::SERVE_COMPLETED_TOTAL),
        c(names::SERVE_FAILED_TOTAL),
        c(names::SERVE_REJECTED_TOTAL),
        c(names::SERVE_DEADLINE_EXPIRED_TOTAL)
    );
    let _ = writeln!(
        out,
        "  faults          {} contained panics, {} retries, {} protocol errors",
        c(names::SERVE_PANICS_TOTAL),
        c(names::SERVE_RETRIES_TOTAL),
        c(names::SERVE_PROTOCOL_ERRORS_TOTAL)
    );
    let _ = writeln!(
        out,
        "  crash safety    {} spooled, {} recovered after restart",
        c(names::SERVE_SPOOLED_TOTAL),
        c(names::SERVE_RECOVERED_TOTAL)
    );
    let _ = writeln!(
        out,
        "  queue           depth peak {}, inflight now {}",
        snap.gauge(names::SERVE_QUEUE_DEPTH_PEAK).unwrap_or(0),
        snap.gauge(names::SERVE_INFLIGHT).unwrap_or(0)
    );
    for (label, name) in [
        ("request latency", names::SERVE_REQUEST_NS),
        ("admission wait", names::SERVE_ADMIT_WAIT_NS),
    ] {
        if let Some(h) = snap.histogram(name).filter(|h| h.count > 0) {
            let _ = writeln!(
                out,
                "  {label:<15} p50 {} p99 {} over {} samples",
                fmt_dur_ns(h.quantile(0.5)),
                fmt_dur_ns(h.quantile(0.99)),
                h.count
            );
        }
    }
    out
}

fn fmt_dur_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The `flsa report --metrics` section: the same run seen through two
/// independent instruments — the event trace and the metrics registry —
/// must tell the same story. Per-backend cell counts are compared
/// exactly (the DP layer keeps both attributions in lockstep by
/// construction); the wavefront busy/idle totals, which only the
/// registry has, are folded into a computed occupancy figure.
fn render_metrics_crosscheck(
    mpath: &str,
    snap: &MetricsSnapshot,
    a: &flsa_trace::Analysis,
) -> String {
    use flsa_metrics::names;
    use std::fmt::Write as _;
    let verdict = |ok: bool| if ok { "MATCH" } else { "MISMATCH" };
    let mut out = String::new();
    let _ = writeln!(out, "\nmetrics cross-check ({mpath}):");
    let cells = snap.counter(names::CELLS_TOTAL).unwrap_or(0);
    let _ = writeln!(
        out,
        "  kernel cells    metrics {:>16}   trace {:>16}   {}",
        cells,
        a.kernel_cells,
        verdict(cells == a.kernel_cells)
    );
    let calls = snap.counter(names::KERNEL_CALLS_TOTAL).unwrap_or(0);
    let _ = writeln!(
        out,
        "  kernel calls    metrics {:>16}   trace {:>16}   {}",
        calls,
        a.kernel_events,
        verdict(calls == a.kernel_events as u64)
    );
    for b in names::BACKENDS {
        let m = snap.counter(names::cells_for_backend(b)).unwrap_or(0);
        let t = a
            .kernel_backends
            .iter()
            .find(|s| s.backend == *b)
            .map_or(0, |s| s.cells);
        if m == 0 && t == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "    cells[{:<6}] metrics {:>16}   trace {:>16}   {}",
            b,
            m,
            t,
            verdict(m == t)
        );
    }
    let busy = snap.counter(names::WORKER_BUSY_NS_TOTAL).unwrap_or(0);
    let idle = snap.counter(names::WORKER_IDLE_NS_TOTAL).unwrap_or(0);
    if busy + idle > 0 {
        let occupancy = busy as f64 / (busy + idle) as f64 * 100.0;
        let _ = writeln!(
            out,
            "  worker occupancy {occupancy:.1}%  (busy {} / idle {}; {} parks, {} tiles, inflight peak {})",
            fmt_dur_ns(busy),
            fmt_dur_ns(idle),
            snap.counter(names::WORKER_PARKS_TOTAL).unwrap_or(0),
            snap.counter(names::TILES_TOTAL).unwrap_or(0),
            snap.gauge(names::TILES_INFLIGHT_PEAK).unwrap_or(0)
        );
    }
    if let Some(saves) = snap
        .counter(names::CHECKPOINT_SAVES_TOTAL)
        .filter(|&s| s > 0)
    {
        let fsync = snap.histogram(names::CHECKPOINT_FSYNC_NS);
        let _ = writeln!(
            out,
            "  checkpoints     {} saves, {} bytes, fsync p50 {} p99 {}",
            saves,
            snap.counter(names::CHECKPOINT_BYTES_TOTAL).unwrap_or(0),
            fsync.map_or("-".to_string(), |h| fmt_dur_ns(h.quantile(0.5))),
            fsync.map_or("-".to_string(), |h| fmt_dur_ns(h.quantile(0.99)))
        );
    }
    out
}

/// `flsa batch`: aligns many pairs in one call through
/// [`fastlsa_core::align_batch`], which runs them on the striped
/// inter-sequence batch kernel (8/16 pairs per SIMD dispatch) with a
/// bit-identical single-pair fallback. One FASTA pairs consecutive
/// records (1&2, 3&4, ...); two FASTA files pair record `i` of the
/// first with record `i` of the second.
fn cmd_batch(a: &args::Args) -> Result<(), CliError> {
    let gap: i32 = a.get_or("gap", -10).map_err(CliError::usage)?;
    let scheme = scheme_for(a.str_or("matrix", "dna"), gap).map_err(CliError::usage)?;
    let kernel = parse_kernel(a)?;

    let seqs: Vec<Sequence> = match &a.positional[..] {
        [one] => {
            let recs = fasta::read_file(one, scheme.alphabet())
                .map_err(|e| CliError::input(e.to_string()))?;
            if recs.len() < 2 || recs.len() % 2 != 0 {
                return Err(CliError::input(format!(
                    "{one} holds {} record(s); batch needs an even number (consecutive \
                     records are paired)",
                    recs.len()
                )));
            }
            recs
        }
        [qa, qb] => {
            let ra = fasta::read_file(qa, scheme.alphabet())
                .map_err(|e| CliError::input(e.to_string()))?;
            let rb = fasta::read_file(qb, scheme.alphabet())
                .map_err(|e| CliError::input(e.to_string()))?;
            if ra.len() != rb.len() || ra.is_empty() {
                return Err(CliError::input(format!(
                    "{qa} holds {} record(s) but {qb} holds {}; batch pairs them one-to-one",
                    ra.len(),
                    rb.len()
                )));
            }
            // Interleave so the "consecutive records" pairing below
            // covers both input shapes with one code path.
            ra.into_iter()
                .zip(rb)
                .flat_map(|(x, y)| [x, y])
                .collect()
        }
        _ => {
            return Err(CliError::usage(
                "batch needs one FASTA with an even number of records, or two FASTA \
                 files with matching record counts",
            ))
        }
    };
    let pairs: Vec<(&Sequence, &Sequence)> = seqs.chunks_exact(2).map(|c| (&c[0], &c[1])).collect();

    let opts = AlignOptions {
        kernel,
        ..AlignOptions::default()
    };
    let metrics = Metrics::new();
    let start = Instant::now();
    let results = fastlsa_core::align_batch(&pairs, &scheme, &opts, &metrics)?;
    let elapsed = start.elapsed();

    if a.has_flag("json") {
        let mut out = String::from("[");
        for (i, ((sa, sb), r)) in pairs.iter().zip(&results).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"a\":\"{}\",\"b\":\"{}\",\"score\":{},\"cigar\":\"{}\"}}",
                sa.id(),
                sb.id(),
                r.score,
                flsa_serve::job::cigar(&r.path)
            ));
        }
        out.push(']');
        println!("{out}");
    } else {
        for ((sa, sb), r) in pairs.iter().zip(&results) {
            println!(
                "{}\t{}\t{}\t{}",
                sa.id(),
                sb.id(),
                r.score,
                flsa_serve::job::cigar(&r.path)
            );
        }
    }
    if a.has_flag("stats") {
        let s = metrics.snapshot();
        let backend = kernel.unwrap_or_else(KernelBackend::detect_best);
        println!("pairs           {}", pairs.len());
        println!("kernel backend  {}", backend.name());
        println!("time            {elapsed:?}");
        println!("cells computed  {}", s.cells_computed);
        println!("peak aux memory {} bytes", s.peak_bytes);
    }
    Ok(())
}

fn cmd_msa(a: &args::Args) -> Result<(), CliError> {
    let gap: i32 = a.get_or("gap", -10).map_err(CliError::usage)?;
    let scheme = scheme_for(a.str_or("matrix", "dna"), gap).map_err(CliError::usage)?;
    let [path] = &a.positional[..] else {
        return Err(CliError::usage(
            "msa needs exactly one FASTA file with the family",
        ));
    };
    let seqs =
        fasta::read_file(path, scheme.alphabet()).map_err(|e| CliError::input(e.to_string()))?;
    let cfg = FastLsaConfig::new(
        a.get_or("k", 8).map_err(CliError::usage)?,
        a.get_or("base-cells", 1usize << 20)
            .map_err(CliError::usage)?,
    );
    let metrics = Metrics::new();
    let start = Instant::now();
    let result = flsa_msa::center_star(&seqs, &scheme, cfg, &metrics).map_err(|e| match e {
        flsa_msa::MsaError::Align(inner) => CliError::from(inner),
        other => CliError::input(other.to_string()),
    })?;
    let elapsed = start.elapsed();
    println!(
        "{} sequences, {} columns, center {}, conservation {:.1}%, sum-of-pairs {}",
        result.msa.num_rows(),
        result.msa.num_cols(),
        seqs[result.center].id(),
        result.msa.conservation() * 100.0,
        result.msa.sum_of_pairs(&scheme)
    );
    if !a.has_flag("quiet") {
        print!("{}", result.msa);
    }
    if a.has_flag("stats") {
        let s = metrics.snapshot();
        println!("time            {elapsed:?}");
        println!("cells computed  {}", s.cells_computed);
        println!("peak aux memory {} bytes", s.peak_bytes);
    }
    Ok(())
}

/// Adapts a seeded [`flsa_fault::serve::ServeFaultPlan`] to the daemon's
/// [`flsa_serve::JobHooks`], so CI's chaos job can fault-inject a *real*
/// daemon process the same way the in-process chaos harness does. The
/// target job is addressed by server sequence number: a fresh daemon
/// numbers jobs from 1 in submission order, so submitted job `i` is
/// seq `i + 1`.
struct FaultSeedHooks {
    plan: flsa_fault::serve::ServeFaultPlan,
    target_seq: u64,
}

impl flsa_serve::JobHooks for FaultSeedHooks {
    fn on_attempt(&self, seq: u64, attempt: u32) {
        use flsa_fault::serve::ServeFaultKind;
        match self.plan.kind {
            ServeFaultKind::WorkerPanic => {
                if seq == self.target_seq && attempt <= self.plan.panic_attempts {
                    panic!(
                        "fault-seed {}: injected worker panic (attempt {attempt})",
                        self.plan.seed
                    );
                }
            }
            ServeFaultKind::SlowJob => {
                if seq == self.target_seq {
                    std::thread::sleep(Duration::from_millis(self.plan.slow_ms));
                }
            }
            ServeFaultKind::DeadlineExpiry => {
                std::thread::sleep(Duration::from_millis(self.plan.slow_ms));
            }
            ServeFaultKind::BudgetSqueeze => {}
        }
    }
}

/// `flsa serve`: run the alignment daemon until SIGTERM/SIGINT or a
/// client `Shutdown` frame, then drain gracefully and exit 0.
fn cmd_serve(a: &args::Args) -> Result<(), CliError> {
    if !a.positional.is_empty() {
        return Err(CliError::usage("serve takes no positional arguments"));
    }
    let registry = registry_for(a);
    let mut cfg = flsa_serve::ServeConfig::new(a.str_or("addr", "127.0.0.1:7878"));
    cfg.workers = a.get_or("workers", cfg.workers).map_err(CliError::usage)?;
    cfg.queue_cap = a
        .get_or("queue-cap", cfg.queue_cap)
        .map_err(CliError::usage)?;
    cfg.max_retries = a
        .get_or("retries", cfg.max_retries)
        .map_err(CliError::usage)?;
    cfg.default_deadline_ms = a
        .get_or("deadline-ms", cfg.default_deadline_ms)
        .map_err(CliError::usage)?;
    cfg.spool_min_cells = a
        .get_or("spool-min-cells", cfg.spool_min_cells)
        .map_err(CliError::usage)?;
    cfg.spool_retain_done = a
        .get_or("spool-retain", cfg.spool_retain_done)
        .map_err(CliError::usage)?;
    cfg.checkpoint_every_blocks = a
        .get_or("checkpoint-every-blocks", cfg.checkpoint_every_blocks)
        .map_err(CliError::usage)?;
    if let Some(mem) = a.options.get("memory") {
        let bytes: usize = mem
            .parse()
            .map_err(|_| CliError::usage(format!("invalid --memory value {mem:?}")))?;
        cfg.budget_bytes = Some(bytes);
    }
    if let Some(dir) = a.options.get("spool") {
        cfg.spool_dir = Some(std::path::PathBuf::from(dir));
    }
    if let Some(seed) = a.options.get("fault-seed") {
        let seed: u64 = seed
            .parse()
            .map_err(|_| CliError::usage(format!("invalid --fault-seed value {seed:?}")))?;
        let plan = flsa_fault::serve::ServeFaultPlan::from_seed(seed);
        // BudgetSqueeze plans carry the squeeze; an explicit --memory
        // still wins so operators can reproduce with their own budget.
        if cfg.budget_bytes.is_none() {
            cfg.budget_bytes = plan.budget_bytes;
        }
        eprintln!(
            "flsa: fault injection active: seed {seed}, class {}, target job {}",
            plan.kind.name(),
            plan.target_job
        );
        cfg.hooks = Some(Arc::new(FaultSeedHooks {
            target_seq: plan.target_job + 1,
            plan,
        }));
    }
    cfg.registry = registry.clone();

    flsa_serve::signal::install();
    let server = flsa_serve::Server::start(cfg).map_err(|e| match &e {
        flsa_serve::ServeError::Bind { .. } | flsa_serve::ServeError::Config { .. } => {
            CliError::usage(e.to_string())
        }
        flsa_serve::ServeError::SpoolCorrupt { .. } => CliError::input(e.to_string()),
        flsa_serve::ServeError::SpoolIo { .. } => CliError::runtime(e.to_string()),
    })?;
    // Scripts (and the integration tests) read this line to learn the
    // bound port; stdout is line-buffered, so it is visible immediately.
    println!("listening on {}", server.local_addr());

    while !(flsa_serve::signal::drain_requested() || server.drain_requested()) {
        std::thread::sleep(Duration::from_millis(25));
    }
    server.drain();
    let summary = server.join();
    println!(
        "drained: {} completed, {} failed, {} overloaded, {} drained, {} spooled pending",
        summary.completed,
        summary.failed,
        summary.rejected,
        summary.drained,
        summary.spooled_pending
    );
    export_metrics(a, registry.as_ref(), false)
}

/// `flsa bench serve`: the seeded load harness — an in-process daemon
/// driven by multi-threaded clients over both workload mixes and both
/// pacing disciplines, with latency percentiles and a throughput gate.
fn cmd_bench_serve(a: &args::Args) -> Result<(), CliError> {
    use flsa_bench::serve::{LoadConfig, Mix, Mode};
    let mut cfg = LoadConfig::default();
    if let Some(m) = a.options.get("mix") {
        cfg.mixes = vec![Mix::parse(m).ok_or_else(|| {
            CliError::usage(format!(
                "unknown mix {m:?} (expected read-heavy or rapid-grow)"
            ))
        })?];
    }
    if let Some(m) = a.options.get("mode") {
        cfg.modes = vec![Mode::parse(m).ok_or_else(|| {
            CliError::usage(format!("unknown mode {m:?} (expected closed or open)"))
        })?];
    }
    cfg.clients = a.get_or("clients", cfg.clients).map_err(CliError::usage)?;
    cfg.ops = a.get_or("ops", cfg.ops).map_err(CliError::usage)?;
    cfg.rate = a.get_or("rate", cfg.rate).map_err(CliError::usage)?;
    cfg.seed = a.get_or("seed", cfg.seed).map_err(CliError::usage)?;
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    cfg.workers = a
        .get_or("threads", cfg.workers.min(host))
        .map_err(CliError::usage)?;
    if let Some(mem) = a.options.get("memory") {
        let bytes: usize = mem
            .parse()
            .map_err(|_| CliError::usage(format!("invalid --memory value {mem:?}")))?;
        cfg.budget_bytes = Some(bytes);
    }
    if cfg.clients == 0 || cfg.ops == 0 || cfg.workers == 0 {
        return Err(CliError::usage(
            "--clients, --ops, and --threads must be at least 1",
        ));
    }
    if !cfg.rate.is_finite() || cfg.rate <= 0.0 {
        return Err(CliError::usage("--rate must be positive"));
    }

    let report = flsa_bench::serve::run(&cfg);
    print!("{}", report.render());
    let out = a.str_or("out", "BENCH_serve.json");
    std::fs::write(out, report.to_json()).map_err(|e| CliError::runtime(format!("{out}: {e}")))?;
    println!("report          -> {out}");
    if let Some(gate) = a.options.get("gate") {
        let gate: f64 = gate
            .parse()
            .map_err(|_| CliError::usage(format!("invalid --gate value {gate:?}")))?;
        if !report.all_answered() {
            return Err(CliError::runtime(
                "load harness lost responses: submitted != completed + failed + rejected",
            ));
        }
        let throughput = report.gate_throughput();
        if throughput.is_infinite() {
            return Err(CliError::usage(
                "--gate needs at least one closed-loop cell (open-loop throughput \
                 is capped by the submission schedule, not the server)",
            ));
        }
        println!("throughput gate {throughput:.1} req/s measured, {gate:.1} required");
        if throughput < gate {
            return Err(CliError::runtime(format!(
                "serve throughput regression: slowest closed-loop cell sustained \
                 only {throughput:.1} req/s (gate {gate:.1})"
            )));
        }
    }
    Ok(())
}

/// `flsa bench kernels`: sweeps every available DP kernel backend over a
/// set of square problem sizes, prints a throughput table, writes the
/// JSON report, and optionally gates on the SIMD-vs-scalar speedup.
fn cmd_bench(a: &args::Args) -> Result<(), CliError> {
    match a.positional.first().map(String::as_str) {
        Some("kernels") => cmd_bench_kernels(a),
        Some("metrics") => cmd_bench_metrics(a),
        Some("serve") => cmd_bench_serve(a),
        Some("shard") => cmd_bench_shard(a),
        other => Err(CliError::usage(format!(
            "unknown bench suite {other:?}; try `flsa bench kernels`, \
             `flsa bench metrics`, `flsa bench serve`, or `flsa bench shard`"
        ))),
    }
}

/// `flsa bench shard`: times the multi-process coordinator against the
/// sequential engine — a clean sharded run plus a slice of the seeded
/// chaos matrix — verifying byte-identity throughout, and optionally
/// gates on the worst-case chaos recovery overhead.
fn cmd_bench_shard(a: &args::Args) -> Result<(), CliError> {
    let mut cfg = flsa_bench::shard::ShardBenchConfig::default();
    cfg.len = a.get_or("len", cfg.len).map_err(CliError::usage)?;
    cfg.reps = a.get_or("reps", cfg.reps).map_err(CliError::usage)?;
    cfg.shards = a.get_or("shards", cfg.shards).map_err(CliError::usage)?;
    cfg.chaos_plans = a.get_or("ops", cfg.chaos_plans).map_err(CliError::usage)?;
    cfg.seed = a.get_or("seed", cfg.seed).map_err(CliError::usage)?;
    if cfg.len == 0 || cfg.reps == 0 || cfg.shards == 0 {
        return Err(CliError::usage(
            "--len, --reps, and --shards must be at least 1",
        ));
    }
    let exe = std::env::current_exe()
        .map_err(|e| CliError::runtime(format!("cannot locate own binary: {e}")))?;
    cfg.worker_cmd = vec![
        exe.to_string_lossy().into_owned(),
        "shard-worker".to_string(),
    ];
    let report = flsa_bench::shard::run(&cfg).map_err(CliError::runtime)?;
    print!("{}", report.render());
    let out = a.str_or("out", "BENCH_shard.json");
    std::fs::write(out, report.to_json()).map_err(|e| CliError::runtime(format!("{out}: {e}")))?;
    println!("report          -> {out}");
    if let Some(gate) = a.options.get("gate") {
        let gate: f64 = gate
            .parse()
            .map_err(|_| CliError::usage(format!("invalid --gate value {gate:?}")))?;
        if !report.all_identical() {
            return Err(CliError::runtime(
                "shard bench correctness failure: a run diverged from the sequential engine",
            ));
        }
        let worst = report.worst_chaos_ms();
        println!("chaos gate      {worst:.0} ms worst recovery, {gate:.0} ms allowed");
        if worst > gate {
            return Err(CliError::runtime(format!(
                "shard recovery regression: slowest chaos run took {worst:.0} ms \
                 end to end (gate {gate:.0} ms)"
            )));
        }
    }
    Ok(())
}

fn cmd_bench_kernels(a: &args::Args) -> Result<(), CliError> {
    let lens: Vec<usize> = match a.options.get("len") {
        None => vec![1024, 4096, 10_000],
        Some(csv) => csv
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|_| CliError::usage(format!("invalid --len element {s:?}")))
            })
            .collect::<Result<_, _>>()?,
    };
    let reps: usize = a.get_or("reps", 3).map_err(CliError::usage)?;
    if lens.is_empty() || reps == 0 {
        return Err(CliError::usage("--len and --reps must be non-empty"));
    }
    let report = flsa_bench::kernels::run(&lens, reps);
    print!("{}", report.render());
    println!(
        "cpu features: {}   best backend: {}",
        if report.cpu_features.is_empty() {
            "none".to_string()
        } else {
            report.cpu_features.join(", ")
        },
        report.best_backend
    );
    let out = a.str_or("out", "BENCH_kernels.json");
    std::fs::write(out, report.to_json()).map_err(|e| CliError::runtime(format!("{out}: {e}")))?;
    println!("report          -> {out}");
    if let Some(gate) = a.options.get("gate") {
        let gate: f64 = gate
            .parse()
            .map_err(|_| CliError::usage(format!("invalid --gate value {gate:?}")))?;
        let speedup = report.best_speedup().unwrap_or(0.0);
        println!("speedup gate    {speedup:.2}x measured, {gate:.2}x required");
        if speedup < gate {
            return Err(CliError::runtime(format!(
                "kernel speedup regression: best vectorized backend reached only \
                 {speedup:.2}x scalar (gate {gate:.2}x)"
            )));
        }
        // Dispatch-order sanity: detect_best prefers the widest vector
        // backend, so the widest must not be slower than the next-widest.
        if let Some(ratio) = report.widest_vs_next() {
            println!("dispatch gate   widest vector backend {ratio:.2}x next-widest, 1.00x required");
            if ratio < 1.0 {
                return Err(CliError::runtime(format!(
                    "kernel dispatch regression: widest vector backend runs at only \
                     {ratio:.2}x the next-widest, so auto-dispatch picks a slower kernel"
                )));
            }
        }
        // The inter-sequence batch kernel must earn its keep: >= 3x the
        // single-pair path on its best measured size.
        let batch = report.batch_best_speedup().unwrap_or(0.0);
        println!("batch gate      {batch:.2}x measured, 3.00x required");
        if batch < 3.0 {
            return Err(CliError::runtime(format!(
                "batch kernel regression: batched alignment reached only \
                 {batch:.2}x the single-pair path (gate 3.00x)"
            )));
        }
    }
    Ok(())
}

/// `flsa bench metrics`: measures what the metrics layer costs — the
/// record-path nanobenches plus a metrics-on vs metrics-off end-to-end
/// parallel align — writes the JSON report, and optionally gates on the
/// end-to-end overhead percentage.
fn cmd_bench_metrics(a: &args::Args) -> Result<(), CliError> {
    let len: usize = a.get_or("len", 10_000).map_err(CliError::usage)?;
    let reps: usize = a.get_or("reps", 3).map_err(CliError::usage)?;
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads: usize = a.get_or("threads", 4.min(host)).map_err(CliError::usage)?;
    if len == 0 || reps == 0 || threads == 0 {
        return Err(CliError::usage(
            "--len, --reps, and --threads must be at least 1",
        ));
    }
    let report = flsa_bench::metrics::run(len, reps, threads);
    print!("{}", report.render());
    println!(
        "cpu features: {}   best backend: {}",
        if report.cpu_features.is_empty() {
            "none".to_string()
        } else {
            report.cpu_features.join(", ")
        },
        report.best_backend
    );
    let out = a.str_or("out", "BENCH_metrics.json");
    std::fs::write(out, report.to_json()).map_err(|e| CliError::runtime(format!("{out}: {e}")))?;
    println!("report          -> {out}");
    if let Some(gate) = a.options.get("gate") {
        let gate: f64 = gate
            .parse()
            .map_err(|_| CliError::usage(format!("invalid --gate value {gate:?}")))?;
        let overhead = report.overhead_pct();
        println!("overhead gate   {overhead:+.2}% measured, {gate:.2}% allowed");
        if overhead > gate {
            return Err(CliError::runtime(format!(
                "metrics overhead regression: metrics-on align cost {overhead:.2}% \
                 over metrics-off (gate {gate:.2}%)"
            )));
        }
    }
    Ok(())
}

fn cmd_gen(a: &args::Args) -> Result<(), CliError> {
    let kind = a.str_or("kind", "dna");
    let alphabet = match kind {
        "dna" => Alphabet::dna(),
        "protein" => Alphabet::protein(),
        other => return Err(CliError::usage(format!("unknown kind {other:?}"))),
    };
    let len: usize = a.get_or("len", 1000).map_err(CliError::usage)?;
    let identity: f64 = a.get_or("identity", 0.85).map_err(CliError::usage)?;
    let seed: u64 = a.get_or("seed", 42).map_err(CliError::usage)?;
    let (sa, sb) = generate::homologous_pair("pair", &alphabet, len, identity, seed)
        .map_err(|e| CliError::usage(e.to_string()))?;
    let text = fasta::to_string(&[sa, sb]);
    match a.options.get("out") {
        Some(path) => {
            std::fs::write(path, text).map_err(|e| CliError::runtime(format!("{path}: {e}")))?
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_info() -> Result<(), CliError> {
    println!("substitution matrices:");
    for m in [
        tables::dna_default(),
        tables::blosum62(),
        tables::pam250(),
        tables::mdm_fragment(),
    ] {
        println!(
            "  {:16} alphabet={} scores {}..{}",
            m.name(),
            m.alphabet().name(),
            m.min_score(),
            m.max_score()
        );
    }
    println!("\nworkload suite (synthetic Table 3 stand-in):");
    for w in flsa_seq::workload::SUITE {
        println!(
            "  {:12} {:?} len={} identity={:.2} seed={}",
            w.name, w.kind, w.len, w.identity, w.seed
        );
    }
    let features = flsa_dp::detected_cpu_features();
    println!(
        "\ncpu simd features: {}",
        if features.is_empty() {
            "none detected".to_string()
        } else {
            features.join(", ")
        }
    );
    println!("kernel backends:");
    for b in KernelBackend::ALL {
        println!(
            "  {:8} {}{}",
            b.name(),
            if b.is_available() {
                "available"
            } else {
                "unavailable on this CPU"
            },
            if b == KernelBackend::detect_best() {
                "  (auto pick)"
            } else {
                ""
            },
        );
    }
    Ok(())
}

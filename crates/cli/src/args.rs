//! Minimal dependency-free argument parsing for the `flsa` binary.

use std::collections::HashMap;

/// Parsed command line: a subcommand, `--key value` options, `--flag`
/// switches, and positional arguments.
#[derive(Debug, Default, Clone)]
pub struct Args {
    /// First non-option token.
    pub command: String,
    /// `--key value` pairs.
    pub options: HashMap<String, String>,
    /// Bare `--flag` switches.
    pub flags: Vec<String>,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
}

/// Option keys that take a value (everything else starting with `--` is a
/// switch).
const VALUED: &[&str] = &[
    "algo",
    "matrix",
    "matrix-file",
    "gap",
    "gap-open",
    "gap-extend",
    "k",
    "base-cells",
    "threads",
    "tiles",
    "kind",
    "len",
    "identity",
    "seed",
    "out",
    "memory",
    "deadline-ms",
    "width",
    "band",
    "trace",
    "trace-format",
    "checkpoint",
    "checkpoint-every-blocks",
    "kernel",
    "gate",
    "reps",
    "metrics",
    "addr",
    "workers",
    "queue-cap",
    "spool",
    "spool-min-cells",
    "spool-retain",
    "retries",
    "fault-seed",
    "mix",
    "mode",
    "ops",
    "clients",
    "rate",
    "shards",
    "shard-fault",
    "heartbeat-ms",
    "fault",
];

/// The known bare switches; anything else starting with `--` is an error
/// (a typo'd valued option would otherwise silently become a switch).
const FLAGS: &[&str] = &["stats", "quiet", "json", "help", "progress"];

/// Parses `argv[1..]`.
pub fn parse(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter().peekable();
    while let Some(tok) = it.next() {
        if let Some(name) = tok.strip_prefix("--") {
            if VALUED.contains(&name) {
                let val = it
                    .next()
                    .ok_or_else(|| format!("option --{name} requires a value"))?;
                args.options.insert(name.to_string(), val.clone());
            } else if FLAGS.contains(&name) {
                args.flags.push(name.to_string());
            } else {
                return Err(format!("unknown option --{name}; try `flsa help`"));
            }
        } else if let Some(name) = tok.strip_prefix('-') {
            // Short forms: -k N, -o FILE.
            match name {
                "k" => {
                    let val = it.next().ok_or("option -k requires a value")?;
                    args.options.insert("k".to_string(), val.clone());
                }
                "o" => {
                    let val = it.next().ok_or("option -o requires a value")?;
                    args.options.insert("out".to_string(), val.clone());
                }
                _ => return Err(format!("unknown option -{name}")),
            }
        } else if args.command.is_empty() {
            args.command = tok.clone();
        } else {
            args.positional.push(tok.clone());
        }
    }
    Ok(args)
}

impl Args {
    /// A `--key` value parsed as `T`, or `default`.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value {v:?} for --{key}")),
        }
    }

    /// A `--key` string value, or `default`.
    pub fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(String::as_str).unwrap_or(default)
    }

    /// True when `--flag` was given.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_subcommand_options_and_positionals() {
        let a = parse(&argv("align --algo fastlsa -k 8 --stats a.fa b.fa")).unwrap();
        assert_eq!(a.command, "align");
        assert_eq!(a.str_or("algo", "x"), "fastlsa");
        assert_eq!(a.get_or("k", 2usize).unwrap(), 8);
        assert!(a.has_flag("stats"));
        assert_eq!(a.positional, vec!["a.fa", "b.fa"]);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&argv("align --algo")).is_err());
    }

    #[test]
    fn invalid_numeric_value_is_an_error() {
        let a = parse(&argv("align -k banana")).unwrap();
        assert!(a.get_or("k", 2usize).is_err());
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse(&argv("align")).unwrap();
        assert_eq!(a.get_or("threads", 1usize).unwrap(), 1);
        assert_eq!(a.str_or("matrix", "dna"), "dna");
        assert!(!a.has_flag("stats"));
    }

    #[test]
    fn unknown_short_option_rejected() {
        assert!(parse(&argv("align -z 3")).is_err());
    }

    #[test]
    fn unknown_long_option_rejected() {
        let err = parse(&argv("align --threds 4 a.fa")).unwrap_err();
        assert!(err.contains("--threds"), "{err}");
        assert!(parse(&argv("align --no-such-flag a.fa")).is_err());
    }

    #[test]
    fn trace_options_take_values() {
        let a = parse(&argv("align --trace out.json --trace-format jsonl a.fa")).unwrap();
        assert_eq!(a.options.get("trace").unwrap(), "out.json");
        assert_eq!(a.str_or("trace-format", "chrome"), "jsonl");
        assert!(parse(&argv("align --trace")).is_err());
    }
}

//! End-to-end tests of the `flsa` binary: generate data, align it with
//! every algorithm, and check the reports agree.

use std::path::PathBuf;
use std::process::{Command, Output};

fn flsa(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_flsa"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("flsa-cli-test-{}-{name}", std::process::id()));
    p
}

fn score_line(text: &str) -> i64 {
    text.lines()
        .find(|l| l.starts_with("score "))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no score line in:\n{text}"))
}

#[test]
fn gen_then_align_all_global_algorithms_agree() {
    let fa = tmp("pair.fa");
    let out = flsa(&[
        "gen",
        "--len",
        "300",
        "--seed",
        "5",
        "-o",
        fa.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");

    let mut scores = Vec::new();
    for algo in ["fastlsa", "nw", "nw-packed", "hirschberg"] {
        let out = flsa(&["align", "--algo", algo, "--quiet", fa.to_str().unwrap()]);
        assert!(out.status.success(), "{algo}: {out:?}");
        scores.push(score_line(&stdout(&out)));
    }
    assert!(scores.windows(2).all(|w| w[0] == w[1]), "{scores:?}");
    std::fs::remove_file(fa).ok();
}

#[test]
fn paper_example_via_matrix_flag() {
    let fa = tmp("paper.fa");
    std::fs::write(&fa, ">a\nTLDKLLKD\n>b\nTDVLKAD\n").unwrap();
    let out = flsa(&[
        "align",
        "--matrix",
        "paper",
        "--quiet",
        fa.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    assert_eq!(score_line(&stdout(&out)), 82);
    std::fs::remove_file(fa).ok();
}

#[test]
fn stats_flag_reports_metrics() {
    let fa = tmp("stats.fa");
    std::fs::write(&fa, ">a\nACGTACGT\n>b\nACGTTCGT\n").unwrap();
    let out = flsa(&["align", "--stats", "--quiet", fa.to_str().unwrap()]);
    let text = stdout(&out);
    assert!(text.contains("cells computed"), "{text}");
    assert!(text.contains("peak aux memory"), "{text}");
    std::fs::remove_file(fa).ok();
}

#[test]
fn parallel_threads_give_same_score() {
    let fa = tmp("par.fa");
    let out = flsa(&[
        "gen",
        "--len",
        "500",
        "--seed",
        "9",
        "-o",
        fa.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let s1 = score_line(&stdout(&flsa(&[
        "align",
        "--quiet",
        "-k",
        "4",
        "--base-cells",
        "1024",
        fa.to_str().unwrap(),
    ])));
    let s4 = score_line(&stdout(&flsa(&[
        "align",
        "--quiet",
        "-k",
        "4",
        "--base-cells",
        "1024",
        "--threads",
        "4",
        fa.to_str().unwrap(),
    ])));
    assert_eq!(s1, s4);
    std::fs::remove_file(fa).ok();
}

#[test]
fn custom_matrix_file_is_honoured() {
    let fa = tmp("mat.fa");
    std::fs::write(&fa, ">a\nAC\n>b\nAC\n").unwrap();
    let mat = tmp("matrix.txt");
    std::fs::write(
        &mat,
        "  A C G T\nA 9 0 0 0\nC 0 9 0 0\nG 0 0 9 0\nT 0 0 0 9\n",
    )
    .unwrap();
    let out = flsa(&[
        "align",
        "--matrix-file",
        mat.to_str().unwrap(),
        "--quiet",
        fa.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    assert_eq!(score_line(&stdout(&out)), 18);
    std::fs::remove_file(fa).ok();
    std::fs::remove_file(mat).ok();
}

#[test]
fn affine_algorithms_agree_with_each_other() {
    let fa = tmp("affine.fa");
    let out = flsa(&[
        "gen",
        "--len",
        "200",
        "--seed",
        "3",
        "-o",
        fa.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let g = score_line(&stdout(&flsa(&[
        "align",
        "--algo",
        "gotoh",
        "--gap-open",
        "-12",
        "--gap-extend",
        "-2",
        "--quiet",
        fa.to_str().unwrap(),
    ])));
    let m = score_line(&stdout(&flsa(&[
        "align",
        "--algo",
        "mm-affine",
        "--gap-open",
        "-12",
        "--gap-extend",
        "-2",
        "--quiet",
        fa.to_str().unwrap(),
    ])));
    assert_eq!(g, m);
    std::fs::remove_file(fa).ok();
}

#[test]
fn local_and_semiglobal_modes_run() {
    let fa = tmp("modes.fa");
    std::fs::write(&fa, ">a\nGATTACA\n>b\nCCCCGATTACACCCC\n").unwrap();
    for algo in ["sw", "fit", "overlap", "banded"] {
        let out = flsa(&["align", "--algo", algo, "--quiet", fa.to_str().unwrap()]);
        assert!(out.status.success(), "{algo}: {out:?}");
    }
    // fit: the query embeds perfectly, 7 matches at +5.
    let out = flsa(&["align", "--algo", "fit", "--quiet", fa.to_str().unwrap()]);
    assert_eq!(score_line(&stdout(&out)), 35);
    std::fs::remove_file(fa).ok();
}

#[test]
fn unknown_algorithm_fails_cleanly() {
    let fa = tmp("bad.fa");
    std::fs::write(&fa, ">a\nAC\n>b\nAC\n").unwrap();
    let out = flsa(&["align", "--algo", "nope", fa.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));
    std::fs::remove_file(fa).ok();
}

#[test]
fn msa_subcommand_aligns_a_family() {
    let fa = tmp("family.fa");
    std::fs::write(
        &fa,
        ">s1\nACGTACGT\n>s2\nACGTCGT\n>s3\nACGGACGT\n>s4\nACGTACGT\n",
    )
    .unwrap();
    let out = flsa(&["msa", fa.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("4 sequences"), "{text}");
    assert!(text.contains("sum-of-pairs"), "{text}");
    std::fs::remove_file(fa).ok();
}

#[test]
fn help_and_info_print() {
    assert!(stdout(&flsa(&["help"])).contains("USAGE"));
    assert!(stdout(&flsa(&["info"])).contains("blosum62"));
}

#[test]
fn json_flag_emits_machine_readable_stats() {
    let fa = tmp("json.fa");
    let out = flsa(&[
        "gen",
        "--len",
        "400",
        "--seed",
        "13",
        "-o",
        fa.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = flsa(&["align", "--json", fa.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    // One line, one JSON object, all the MetricsSnapshot fields present.
    assert_eq!(text.trim().lines().count(), 1, "{text}");
    let doc = flsa_trace::json::parse(text.trim()).unwrap_or_else(|e| panic!("{e}:\n{text}"));
    assert_eq!(doc.get("algo").and_then(|v| v.as_str()), Some("fastlsa"));
    for key in [
        "score",
        "len_a",
        "len_b",
        "threads",
        "time_ns",
        "cells_computed",
        "cells_base_case",
        "traceback_steps",
        "kernel_calls",
        "peak_bytes",
        "cell_factor",
    ] {
        assert!(doc.get(key).is_some(), "missing {key} in {text}");
    }
    assert!(doc.get("cells_computed").unwrap().as_u64().unwrap() > 0);
    std::fs::remove_file(fa).ok();
}

#[test]
fn trace_then_report_round_trips_both_formats() {
    let fa = tmp("trace.fa");
    let out = flsa(&[
        "gen",
        "--len",
        "600",
        "--seed",
        "21",
        "-o",
        fa.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    for format in ["chrome", "jsonl"] {
        let tr = tmp(&format!("trace.{format}"));
        let out = flsa(&[
            "align",
            "--threads",
            "2",
            "-k",
            "4",
            "--base-cells",
            "4096",
            "--quiet",
            "--trace",
            tr.to_str().unwrap(),
            "--trace-format",
            format,
            fa.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "{format}: {out:?}");
        let trace = flsa_trace::read_trace(&std::fs::read_to_string(&tr).unwrap()).unwrap();
        assert!(trace.kernel_cells() > 0, "{format}: no kernel events");
        assert_eq!(trace.meta.threads, 2);

        let out = flsa(&["report", tr.to_str().unwrap()]);
        assert!(out.status.success(), "{format}: {out:?}");
        let text = stdout(&out);
        assert!(text.contains("per-thread utilization"), "{text}");
        assert!(text.contains("ramp-up / saturated / drain"), "{text}");
        std::fs::remove_file(tr).ok();
    }
    std::fs::remove_file(fa).ok();
}

#[test]
fn unknown_long_flag_fails_cleanly() {
    let out = flsa(&["align", "--threds", "4", "x.fa"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threds"));
    let out = flsa(&["align", "--notaflag", "x.fa"]);
    assert!(!out.status.success());
}

// --- exit-code taxonomy: 0 ok, 1 runtime fault, 2 bad config/args, ---
// --- 3 malformed input                                             ---

fn write_pair(name: &str) -> PathBuf {
    let fa = tmp(name);
    std::fs::write(&fa, ">a\nACGTACGTACGTACGT\n>b\nACGTTCGTACGGACGT\n").unwrap();
    fa
}

#[test]
fn exit_code_0_on_successful_alignment() {
    let fa = write_pair("exit0.fa");
    let out = flsa(&["align", "--quiet", fa.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    std::fs::remove_file(fa).ok();
}

#[test]
fn exit_code_1_when_the_deadline_cancels_the_run() {
    let fa = write_pair("exit1.fa");
    let out = flsa(&[
        "align",
        "--deadline-ms",
        "0",
        "--quiet",
        fa.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("cancelled"), "{err}");
    std::fs::remove_file(fa).ok();
}

#[test]
fn exit_code_2_on_bad_config_or_args() {
    let fa = write_pair("exit2.fa");
    // Invalid FastLSA configuration (k must be >= 2).
    let out = flsa(&["align", "-k", "1", "--quiet", fa.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("k must be >= 2"));
    // Unknown algorithm and unknown subcommand are argument errors too.
    let out = flsa(&["align", "--algo", "nope", fa.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = flsa(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // Invalid numeric option value.
    let out = flsa(&["align", "--deadline-ms", "soon", fa.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    std::fs::remove_file(fa).ok();
}

#[test]
fn exit_code_3_on_malformed_or_missing_input() {
    // Sequence data before any FASTA header.
    let bad = tmp("exit3.fa");
    std::fs::write(&bad, "ACGT this is not a fasta file\n").unwrap();
    let out = flsa(&["align", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    std::fs::remove_file(&bad).ok();
    // Missing file.
    let out = flsa(&["align", "/nonexistent/pair.fa"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    // Too few records in an otherwise valid file.
    let one = tmp("exit3-one.fa");
    std::fs::write(&one, ">only\nACGT\n").unwrap();
    let out = flsa(&["align", one.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("need two"));
    std::fs::remove_file(one).ok();
}

#[test]
fn memory_budget_degrades_but_still_exits_zero() {
    let fa = write_pair("budget.fa");
    let out = flsa(&["align", "--memory", "4096", "--quiet", fa.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(stdout(&out).contains("score "), "{out:?}");
    std::fs::remove_file(fa).ok();
}

#[test]
fn report_rejects_missing_and_invalid_files() {
    let out = flsa(&["report", "/nonexistent/trace.json"]);
    assert!(!out.status.success());
    let bad = tmp("bad-trace.json");
    std::fs::write(&bad, "not a trace").unwrap();
    let out = flsa(&["report", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    std::fs::remove_file(bad).ok();
}

// --- checkpoint / resume -------------------------------------------------

/// A pair long enough that `--checkpoint-every-blocks 1` leaves several
/// snapshots behind when a run is cut short.
fn write_checkpoint_pair(name: &str) -> PathBuf {
    let fa = tmp(name);
    let out = flsa(&[
        "gen",
        "--len",
        "500",
        "--seed",
        "12",
        "-o",
        fa.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    fa
}

#[test]
fn checkpointed_align_completes_and_removes_the_snapshot() {
    let fa = write_checkpoint_pair("ckpt-ok.fa");
    let ckpt = tmp("ckpt-ok.ckpt");
    let out = flsa(&[
        "align",
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--checkpoint-every-blocks",
        "1",
        "-k",
        "4",
        "--base-cells",
        "512",
        fa.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(stdout(&out).contains("score "));
    assert!(!ckpt.exists(), "snapshot should be removed after success");
    std::fs::remove_file(fa).ok();
}

#[test]
fn cancelled_run_leaves_a_snapshot_that_resume_finishes_identically() {
    let fa = write_checkpoint_pair("ckpt-resume.fa");
    let ckpt = tmp("ckpt-resume.ckpt");
    let align = [
        "align",
        "-k",
        "4",
        "--base-cells",
        "512",
        fa.to_str().unwrap(),
    ];
    let reference = flsa(&align);
    assert!(reference.status.success(), "{reference:?}");

    // Cancel immediately: the engine force-checkpoints at the last
    // consistent point before reporting the cancellation (exit 1).
    let mut cancelled: Vec<&str> = align.to_vec();
    let ckpt_s = ckpt.to_str().unwrap();
    cancelled.extend_from_slice(&[
        "--checkpoint",
        ckpt_s,
        "--checkpoint-every-blocks",
        "1",
        "--deadline-ms",
        "0",
    ]);
    let out = flsa(&cancelled);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(
        ckpt.exists(),
        "cancellation must leave a resumable snapshot"
    );

    let resumed = flsa(&["resume", ckpt_s]);
    assert_eq!(resumed.status.code(), Some(0), "{resumed:?}");
    assert_eq!(
        stdout(&resumed),
        stdout(&reference),
        "resumed output must be byte-identical"
    );
    assert!(!ckpt.exists(), "snapshot should be removed after resume");
    std::fs::remove_file(fa).ok();
}

#[test]
fn corrupt_snapshot_exits_3_with_a_structured_message() {
    let fa = write_checkpoint_pair("ckpt-corrupt.fa");
    let ckpt = tmp("ckpt-corrupt.ckpt");
    let ckpt_s = ckpt.to_str().unwrap();
    let out = flsa(&[
        "align",
        "-k",
        "4",
        "--base-cells",
        "512",
        "--checkpoint",
        ckpt_s,
        "--checkpoint-every-blocks",
        "1",
        "--deadline-ms",
        "0",
        fa.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");

    // Flip one bit in the middle of the snapshot.
    let mut bytes = std::fs::read(&ckpt).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&ckpt, &bytes).unwrap();
    let out = flsa(&["resume", ckpt_s]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("corrupt checkpoint"),
        "{out:?}"
    );

    // Truncation is detected too.
    bytes[mid] ^= 0x40; // restore the flipped bit
    bytes.truncate(bytes.len() - 20);
    std::fs::write(&ckpt, &bytes).unwrap();
    let out = flsa(&["resume", ckpt_s]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");

    std::fs::remove_file(ckpt).ok();
    std::fs::remove_file(fa).ok();
}

#[test]
fn resume_rejects_missing_files_and_bad_usage() {
    let out = flsa(&["resume", "/nonexistent/run.ckpt"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let out = flsa(&["resume"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    // --checkpoint composes only with the checkpointable engine.
    let fa = write_pair("ckpt-usage.fa");
    let out = flsa(&[
        "align",
        "--algo",
        "nw",
        "--checkpoint",
        "/tmp/x.ckpt",
        fa.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = flsa(&[
        "align",
        "--checkpoint",
        "/tmp/x.ckpt",
        "--checkpoint-every-blocks",
        "0",
        fa.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    std::fs::remove_file(fa).ok();
}

//! Kill–restore fault matrix: SIGKILL the real `flsa` binary mid-run at
//! seeded points, resume from the surviving snapshot, and require the
//! final stdout to be byte-identical to an uninterrupted run — across
//! sequential and parallel configurations.
//!
//! 40 seeded kill points are scheduled across the four tests (10 per
//! test: 5 seeds × 4 kills, minus those a fast run dodges); the suite
//! asserts at least 8 kills actually land per test, so the matrix
//! delivers well over the 32 mid-run process deaths it is specced for.

use std::path::PathBuf;
use std::process::Command;

use flsa_fault::crash::{CrashJob, KillPlan};

fn flsa_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_flsa"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("flsa-crash-{}-{name}", std::process::id()));
    p
}

/// Generates a pair long enough that a debug-build alignment runs for
/// hundreds of milliseconds — room for several kills to land mid-run.
fn gen_pair(name: &str, len: usize, seed: u64) -> PathBuf {
    let fa = tmp(name);
    let out = Command::new(flsa_bin())
        .args([
            "gen",
            "--len",
            &len.to_string(),
            "--seed",
            &seed.to_string(),
            "-o",
            fa.to_str().unwrap(),
        ])
        .output()
        .expect("gen runs");
    assert!(out.status.success(), "{out:?}");
    fa
}

/// Runs `seeds.len()` kill–restore loops over the same job and checks
/// every one reproduces the reference bytes. Returns total kills landed.
fn crash_matrix(tag: &str, extra_args: &[&str], seeds: &[u64]) -> u32 {
    let fa = gen_pair(&format!("{tag}.fa"), 1400, 77);
    let mut align_args: Vec<String> =
        vec!["-k".into(), "4".into(), "--base-cells".into(), "512".into()];
    align_args.extend(extra_args.iter().map(|s| s.to_string()));
    align_args.push(fa.to_str().unwrap().into());

    let ckpt = tmp(&format!("{tag}.ckpt"));
    let job = CrashJob {
        flsa_bin: &flsa_bin(),
        align_args: &align_args,
        ckpt: &ckpt,
        every_blocks: 1,
    };
    let reference = job.reference_stdout().expect("reference run");
    assert!(!reference.is_empty());

    let mut kills = 0;
    let mut resumes = 0;
    for &seed in seeds {
        std::fs::remove_file(&ckpt).ok();
        let plan = KillPlan::from_seed(seed, 4, 80);
        let outcome = job
            .run(&plan)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(
            outcome.stdout, reference,
            "seed {seed}: output diverged after {} kills / {} resumes",
            outcome.kills_delivered, outcome.resumes
        );
        kills += outcome.kills_delivered;
        resumes += outcome.resumes;
    }
    std::fs::remove_file(&fa).ok();
    std::fs::remove_file(&ckpt).ok();
    println!(
        "{tag}: {kills} kills delivered, {resumes} resumes, {} seeds",
        seeds.len()
    );
    assert!(
        kills >= 8,
        "{tag}: only {kills} of {} scheduled kills landed mid-run; \
         the job is completing too fast to test recovery",
        seeds.len() * 4
    );
    assert!(resumes > 0, "{tag}: no restart ever found a snapshot");
    kills
}

#[test]
fn sequential_runs_survive_seeded_kills() {
    crash_matrix("seq", &[], &[2, 3, 5, 8, 13]);
}

#[test]
fn sequential_runs_survive_kills_with_offset_seeds() {
    crash_matrix("seq2", &[], &[21, 34, 55, 89, 144]);
}

#[test]
fn parallel_runs_survive_seeded_kills() {
    crash_matrix("par", &["--threads", "3"], &[7, 11, 19, 23, 29]);
}

#[test]
fn parallel_runs_survive_kills_with_offset_seeds() {
    crash_matrix("par2", &["--threads", "3"], &[31, 37, 41, 43, 47]);
}

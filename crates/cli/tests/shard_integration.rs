//! End-to-end tests of `flsa align --shards`: real coordinator, real
//! `flsa shard-worker` child processes, real SIGKILLs — asserting the
//! CLI contract (byte-identical stdout to the sequential run, the exit
//! code taxonomy) rather than library internals.

use std::path::PathBuf;
use std::process::{Command, Output};

fn flsa(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_flsa"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("flsa-shard-test-{}-{name}", std::process::id()));
    p
}

/// Generates a pair and returns (path, sequential stdout) — the oracle
/// every sharded invocation must reproduce byte for byte.
fn pair_and_oracle(name: &str, len: &str, seed: &str) -> (PathBuf, String) {
    let fa = tmp(name);
    let gen = flsa(&[
        "gen",
        "--len",
        len,
        "--seed",
        seed,
        "-o",
        fa.to_str().unwrap(),
    ]);
    assert!(gen.status.success(), "{gen:?}");
    let seq = flsa(&["align", fa.to_str().unwrap()]);
    assert!(seq.status.success(), "{seq:?}");
    (fa, stdout(&seq))
}

#[test]
fn sharded_stdout_is_byte_identical_to_sequential() {
    let (fa, oracle) = pair_and_oracle("clean.fa", "300", "17");
    for shards in ["1", "2", "4"] {
        let out = flsa(&["align", "--shards", shards, fa.to_str().unwrap()]);
        assert!(out.status.success(), "shards={shards}: {out:?}");
        assert_eq!(stdout(&out), oracle, "shards={shards}: stdout diverged");
    }
    std::fs::remove_file(fa).ok();
}

#[test]
fn sigkilled_workers_still_produce_identical_output() {
    let (fa, oracle) = pair_and_oracle("kill.fa", "260", "23");
    // Every slot SIGKILLs itself on its first task: the fleet dies for
    // real (no in-process shortcut — respawns are clean and finish the
    // job), and the answer must not change.
    let out = flsa(&[
        "align",
        "--shards",
        "2",
        "--shard-fault",
        "kill:0;kill:0",
        fa.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    assert_eq!(
        stdout(&out),
        oracle,
        "stdout diverged after worker SIGKILLs"
    );
    std::fs::remove_file(fa).ok();
}

#[test]
fn mixed_fault_fleet_is_identical_too() {
    let (fa, oracle) = pair_and_oracle("mix.fa", "220", "31");
    // Slot 0 corrupts a result frame (CRC burn), slot 1 runs clean.
    let out = flsa(&[
        "align",
        "--shards",
        "2",
        "--shard-fault",
        "corrupt:1;",
        fa.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    assert_eq!(stdout(&out), oracle);
    std::fs::remove_file(fa).ok();
}

#[test]
fn incompatible_combinations_are_usage_errors() {
    let (fa, _) = pair_and_oracle("combo.fa", "80", "3");
    let fa_s = fa.to_str().unwrap();
    let ck = tmp("combo.ck");
    let cases: Vec<Vec<&str>> = vec![
        vec!["align", "--shards", "2", "--threads", "4", fa_s],
        vec![
            "align",
            "--shards",
            "2",
            "--checkpoint",
            ck.to_str().unwrap(),
            fa_s,
        ],
        vec!["align", "--shards", "2", "--memory", "1000000", fa_s],
        vec!["align", "--shards", "2", "--deadline-ms", "100", fa_s],
        vec!["align", "--shards", "2", "--kernel", "scalar", fa_s],
        // Sharding is a fastlsa execution mode, not a generic wrapper.
        vec!["align", "--shards", "2", "--algo", "nw", fa_s],
    ];
    for case in cases {
        let out = flsa(&case);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{case:?}: expected usage exit, got {out:?}"
        );
    }
    std::fs::remove_file(fa).ok();
}

#[test]
fn shard_worker_rejects_bad_arguments() {
    let out = flsa(&["shard-worker", "--fault", "nonsense"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = flsa(&["shard-worker", "stray-positional"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn bench_shard_gates_and_writes_the_report() {
    let report = tmp("bench.json");
    let out = flsa(&[
        "bench",
        "shard",
        "--len",
        "150",
        "--reps",
        "1",
        "--shards",
        "2",
        "--ops",
        "2",
        "--gate",
        "60000",
        "-o",
        report.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let body = std::fs::read_to_string(&report).expect("report written");
    assert!(body.contains("\"bench\": \"shard\""), "{body}");
    assert!(body.contains("\"identical\": true"), "{body}");
    assert!(!body.contains("\"identical\": false"), "{body}");
    std::fs::remove_file(report).ok();
}

//! End-to-end tests of `flsa serve` as a real process: the exit-code
//! taxonomy, SIGTERM drain, `--fault-seed` chaos injection, and the
//! kill–restore guarantee — a SIGKILL'd daemon, restarted on the same
//! spool, completes every accepted job byte-identically to a daemon
//! that was never killed.

use std::io::{BufRead, BufReader, Read};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use flsa_dp::Metrics;
use flsa_fault::crash::KillPlan;
use flsa_fault::serve::{ServeFaultKind, ServeFaultPlan};
use flsa_fault::SplitMix64;
use flsa_seq::Sequence;
use flsa_serve::wire::{AlignRequest, ErrorCode, Frame};
use flsa_serve::{job, Client, Spool};

const GAP: i32 = -2;

fn flsa_bin() -> &'static str {
    env!("CARGO_BIN_EXE_flsa")
}

fn dna(seed: u64, len: usize) -> String {
    let mut rng = SplitMix64::new(seed);
    (0..len)
        .map(|_| b"ACGT"[rng.below(4) as usize] as char)
        .collect()
}

fn req(id: u64, a: &str, b: &str) -> AlignRequest {
    AlignRequest {
        id,
        deadline_ms: 0,
        threads: 0,
        k: 0,
        gap: GAP,
        base_cells: 4096,
        matrix: "dna".to_string(),
        seq_a: a.as_bytes().to_vec(),
        seq_b: b.as_bytes().to_vec(),
    }
}

fn reference(a: &str, b: &str) -> (i64, String) {
    let scheme = job::scheme_for("dna", GAP).expect("dna scheme");
    let sa = Sequence::from_str("a", scheme.alphabet(), a).expect("seq a");
    let sb = Sequence::from_str("b", scheme.alphabet(), b).expect("seq b");
    let r = fastlsa_core::align(&sa, &sb, &scheme, &Metrics::new()).expect("reference align");
    (r.score, job::cigar(&r.path))
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("flsa-cli-serve-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A daemon process plus the reader holding its remaining stdout.
struct Daemon {
    child: Child,
    addr: SocketAddr,
    stdout: BufReader<std::process::ChildStdout>,
}

impl Daemon {
    /// Spawns `flsa serve --addr 127.0.0.1:0 <extra>` and reads the
    /// `listening on ...` line to learn the bound port.
    fn spawn(extra: &[&str]) -> Daemon {
        let mut child = Command::new(flsa_bin())
            .arg("serve")
            .args(["--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn flsa serve");
        let mut stdout = BufReader::new(child.stdout.take().expect("daemon stdout"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read listening line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected first line {line:?}"))
            .parse()
            .expect("parse bound addr");
        Daemon {
            child,
            addr,
            stdout,
        }
    }

    fn connect(&self) -> Client {
        let mut c = Client::connect(self.addr).expect("connect");
        c.set_timeout(Some(Duration::from_secs(60)))
            .expect("timeout");
        c
    }

    fn signal(&self, sig: &str) {
        let ok = Command::new("kill")
            .arg(sig)
            .arg(self.child.id().to_string())
            .status()
            .expect("run kill")
            .success();
        assert!(ok, "kill {sig} {}", self.child.id());
    }

    /// Waits (bounded) for exit, returning the code and remaining stdout.
    fn wait(mut self) -> (i32, String) {
        let deadline = Instant::now() + Duration::from_secs(60);
        let status = loop {
            if let Some(st) = self.child.try_wait().expect("try_wait") {
                break st;
            }
            assert!(Instant::now() < deadline, "daemon did not exit in time");
            std::thread::sleep(Duration::from_millis(20));
        };
        let mut rest = String::new();
        self.stdout.read_to_string(&mut rest).expect("drain stdout");
        (status.code().unwrap_or(-1), rest)
    }

    /// SIGKILL, then reap. The whole point: no cleanup code runs.
    fn kill(mut self) {
        self.child.kill().expect("SIGKILL");
        self.child.wait().expect("reap");
    }
}

fn serve_expecting_exit(extra: &[&str], want_code: i32, want_stderr: &str) {
    let out = Command::new(flsa_bin())
        .arg("serve")
        .args(extra)
        .output()
        .expect("run flsa serve");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(want_code),
        "args {extra:?}: stderr {stderr}"
    );
    assert!(
        stderr.contains(want_stderr),
        "args {extra:?}: stderr {stderr:?} lacks {want_stderr:?}"
    );
}

#[test]
fn bind_and_config_errors_exit_2() {
    // Hold the port so the daemon's bind fails.
    let occupied = std::net::TcpListener::bind("127.0.0.1:0").expect("pre-bind");
    let addr = occupied.local_addr().expect("addr").to_string();
    serve_expecting_exit(&["--addr", &addr], 2, "bind failed");
    serve_expecting_exit(&["--addr", "127.0.0.1:0", "--workers", "0"], 2, "workers");
    serve_expecting_exit(&["--addr", "not-an-address"], 2, "bind failed");
}

#[test]
fn corrupt_spool_exits_3() {
    let dir = tmpdir("corrupt-spool");
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("job-00000003.req"), b"\x02garbage, not a frame")
        .expect("plant corrupt req");
    serve_expecting_exit(
        &[
            "--addr",
            "127.0.0.1:0",
            "--spool",
            dir.to_str().expect("utf8 path"),
        ],
        3,
        "spool corrupt",
    );
}

#[test]
fn sigterm_drains_to_exit_0() {
    let daemon = Daemon::spawn(&[]);
    let mut client = daemon.connect();
    let (a, b) = (dna(1, 120), dna(2, 130));
    match client.align(req(7, &a, &b)).expect("align") {
        Frame::Ok(ok) => {
            let (score, cigar) = reference(&a, &b);
            assert_eq!((ok.score, ok.cigar.as_str()), (score, cigar.as_str()));
        }
        other => panic!("expected Ok, got {other:?}"),
    }
    daemon.signal("-TERM");
    let (code, rest) = daemon.wait();
    assert_eq!(code, 0, "clean drain must exit 0; stdout: {rest}");
    assert!(rest.contains("drained: 1 completed"), "stdout: {rest}");
}

#[test]
fn shutdown_frame_drains_to_exit_0() {
    let daemon = Daemon::spawn(&[]);
    let mut client = daemon.connect();
    client.shutdown().expect("shutdown handshake");
    let (code, rest) = daemon.wait();
    assert_eq!(code, 0, "stdout: {rest}");
    assert!(rest.contains("drained:"), "stdout: {rest}");
}

/// Runs one `--fault-seed` daemon over the plan's job count and checks
/// the failure matrix from outside the process: non-target jobs must be
/// byte-identical to the reference, the target must be `Ok` (identical)
/// or the typed failure for its class.
fn run_fault_seed(seed: u64) {
    let plan = ServeFaultPlan::from_seed(seed);
    let daemon = Daemon::spawn(&["--fault-seed", &seed.to_string(), "--retries", "2"]);
    let mut client = daemon.connect();
    for i in 0..plan.jobs {
        let (a, b) = (dna(seed ^ i, 140), dna(seed ^ i ^ 0xbeef, 150));
        let mut r = req(i, &a, &b);
        match plan.kind {
            ServeFaultKind::SlowJob if i == plan.target_job => r.deadline_ms = plan.deadline_ms,
            ServeFaultKind::DeadlineExpiry => r.deadline_ms = plan.deadline_ms,
            _ => {}
        }
        let (score, cigar) = reference(&a, &b);
        match client.align(r).expect("align response") {
            Frame::Ok(ok) => {
                assert_eq!(ok.id, i);
                assert_eq!(
                    (ok.score, ok.cigar.as_str()),
                    (score, cigar.as_str()),
                    "seed {seed} job {i}: result differs from the reference"
                );
                if plan.kind == ServeFaultKind::WorkerPanic && i == plan.target_job {
                    assert!(
                        plan.panic_attempts <= 2,
                        "seed {seed}: {} panics must exhaust 2 retries",
                        plan.panic_attempts
                    );
                }
            }
            Frame::Fail(f) => {
                let allowed: &[ErrorCode] = match plan.kind {
                    ServeFaultKind::WorkerPanic if i == plan.target_job => {
                        assert!(
                            plan.panic_attempts > 2,
                            "seed {seed}: {} panics should be retried to success",
                            plan.panic_attempts
                        );
                        &[ErrorCode::WorkerPanic]
                    }
                    ServeFaultKind::SlowJob if i == plan.target_job => {
                        &[ErrorCode::DeadlineExpired]
                    }
                    ServeFaultKind::DeadlineExpiry => &[ErrorCode::DeadlineExpired],
                    _ => &[],
                };
                assert!(
                    allowed.contains(&f.code),
                    "seed {seed} job {i}: unexpected failure {:?} ({})",
                    f.code,
                    f.detail
                );
            }
            other => panic!("seed {seed} job {i}: unexpected frame {other:?}"),
        }
    }
    client.shutdown().expect("shutdown");
    let (code, _) = daemon.wait();
    assert_eq!(
        code, 0,
        "seed {seed}: chaos daemon must still drain cleanly"
    );
}

#[test]
fn fault_seed_injects_the_seeded_plan() {
    // One seed per class (seed % 4 selects it), driven through a real
    // process; the in-process chaos harness covers the wide sweep.
    for seed in [0u64, 1, 2, 3] {
        run_fault_seed(seed);
    }
}

/// The kill–restore guarantee, end to end. Every job is forced through
/// the spool (`--spool-min-cells 1`); the daemon is SIGKILL'd at a
/// seeded delay mid-burst and restarted on the same spool; after the
/// restart completes the backlog, every `.done` result must be
/// byte-for-byte the frame a never-killed daemon produced.
#[test]
fn sigkill_restore_completes_byte_identically() {
    const JOBS: u64 = 6;
    let requests: Vec<AlignRequest> = (0..JOBS)
        .map(|i| {
            let (a, b) = (
                dna(0xC0FFEE ^ i, 260 + 7 * i as usize),
                dna(0xF00D ^ i, 280),
            );
            req(i, &a, &b)
        })
        .collect();

    // The never-killed baseline: same jobs, same spool mechanics.
    let clean_dir = tmpdir("restore-clean");
    let daemon = Daemon::spawn(&[
        "--spool",
        clean_dir.to_str().expect("utf8"),
        "--spool-min-cells",
        "1",
    ]);
    let mut client = daemon.connect();
    for r in &requests {
        match client.align(r.clone()).expect("align") {
            Frame::Ok(_) => {}
            other => panic!("baseline job failed: {other:?}"),
        }
    }
    client.shutdown().expect("shutdown");
    let (code, _) = daemon.wait();
    assert_eq!(code, 0);
    let clean = Spool::open(&clean_dir)
        .expect("open clean spool")
        .done_results();
    assert_eq!(clean.len() as u64, JOBS, "baseline must complete every job");

    for seed in [11u64, 12, 13, 14] {
        let plan = KillPlan::from_seed(seed, 1, 40);
        let delay = Duration::from_millis(plan.delays_ms[0]);
        let dir = tmpdir(&format!("restore-{seed}"));

        let victim = Daemon::spawn(&[
            "--spool",
            dir.to_str().expect("utf8"),
            "--spool-min-cells",
            "1",
        ]);
        let mut client = victim.connect();
        for r in &requests {
            // Pipeline without awaiting: the kill races job execution.
            client.send(&Frame::Align(r.clone())).expect("send");
        }
        // Let admission spool at least one job first (otherwise a ~0ms
        // seed kills a daemon that accepted nothing and proves nothing),
        // then apply the seeded delay so the kill lands at a different
        // point of the burst per seed.
        let admit_deadline = Instant::now() + Duration::from_secs(30);
        while std::fs::read_dir(&dir).map_or(0, |d| d.count()) == 0 {
            assert!(
                Instant::now() < admit_deadline,
                "seed {seed}: no job was ever spooled"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(delay);
        victim.kill();

        // Restart on the same spool; recovered jobs re-run with no
        // client attached and land in `.done` files.
        let revived = Daemon::spawn(&[
            "--spool",
            dir.to_str().expect("utf8"),
            "--spool-min-cells",
            "1",
        ]);
        let spool = Spool::open(&dir).expect("open spool");
        let deadline = Instant::now() + Duration::from_secs(60);
        while !spool.recover().expect("recover scan").0.is_empty() {
            assert!(
                Instant::now() < deadline,
                "seed {seed}: recovered backlog never drained"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
        revived.signal("-TERM");
        let (code, _) = revived.wait();
        assert_eq!(code, 0, "seed {seed}: revived daemon must drain cleanly");

        // Every job the daemon accepted (spooled) before the kill must
        // now have a result byte-identical to the baseline's. Jobs whose
        // frames never left the socket buffer are legitimately absent.
        let done = spool.done_results();
        assert!(
            !done.is_empty(),
            "seed {seed}: kill landed before any job was accepted"
        );
        for (seq, bytes) in &done {
            let baseline = clean
                .iter()
                .find(|(s, _)| s == seq)
                .unwrap_or_else(|| panic!("seed {seed}: seq {seq} missing from baseline"));
            assert_eq!(
                bytes, &baseline.1,
                "seed {seed}: seq {seq} result differs from the never-killed run"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&clean_dir);
}

#[test]
fn metrics_export_renders_in_report() {
    let dir = tmpdir("metrics");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let mpath = dir.join("serve-metrics.json");
    let daemon = Daemon::spawn(&["--metrics", mpath.to_str().expect("utf8")]);
    let mut client = daemon.connect();
    let (a, b) = (dna(5, 100), dna(6, 110));
    assert!(matches!(
        client.align(req(1, &a, &b)).expect("align"),
        Frame::Ok(_)
    ));
    // One typed rejection, so the failure counters are exercised too.
    let mut bad = req(2, &a, &b);
    bad.matrix = "no-such-matrix".to_string();
    assert!(matches!(client.align(bad).expect("align"), Frame::Fail(_)));
    client.shutdown().expect("shutdown");
    let (code, _) = daemon.wait();
    assert_eq!(code, 0);

    let out = Command::new(flsa_bin())
        .args(["report", "--metrics", mpath.to_str().expect("utf8")])
        .output()
        .expect("run flsa report");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("serve:"), "stdout: {stdout}");
    assert!(stdout.contains("1 ok, 1 failed"), "stdout: {stdout}");
    assert!(stdout.contains("request latency"), "stdout: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn report_without_inputs_is_a_usage_error() {
    let out = Command::new(flsa_bin())
        .arg("report")
        .output()
        .expect("run flsa report");
    assert_eq!(out.status.code(), Some(2));
}

/// Pin the request layout `reference`/`req` assume: if `validate`
/// drifts (e.g. defaulting `k` differently), this catches it here
/// rather than as a confusing byte-identity failure above.
#[test]
fn cli_request_defaults_still_validate() {
    let spec = job::validate(req(9, "ACGT", "ACG")).expect("defaults validate");
    assert_eq!(spec.request.id, 9);
}

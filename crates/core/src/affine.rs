//! Affine-gap FastLSA (extension; see DESIGN.md §6).
//!
//! The paper defines FastLSA for linear gap penalties. The same
//! grid-cache recursion carries over to the affine model once two things
//! change:
//!
//! 1. **Richer grid lines.** A horizontal grid line caches `H` *and* `F`
//!    (vertical gap runs cross it); a vertical line caches `H` and `E`.
//!    Cache storage doubles — still `O(k·(m+n))`.
//! 2. **Stateful path head.** The traceback may leave a sub-problem in
//!    the middle of a gap run; the head therefore carries a
//!    [`GapState`], and the next sub-problem's traceback resumes in that
//!    layer (the run's open cost is charged exactly once because the
//!    boundary `F`/`E` values already include it).
//!
//! The extension is sequential (the paper's evaluation does not cover
//! affine gaps; any [`FastLsaConfig::parallel`] setting is ignored) and
//! is validated against Gotoh and Myers–Miller oracles.

use flsa_dp::affine::{
    fill_affine_edges_in, fill_affine_full, AffineBoundary, AffineGlobalBoundary, GapState, NEG,
};
use flsa_dp::{AlignResult, KernelArena, Metrics, Move, PathBuilder};
use flsa_scoring::ScoringScheme;
use flsa_seq::Sequence;

use crate::config::FastLsaConfig;
use crate::error::{AlignError, ConfigError};
use crate::grid::{partition, segment_of};

/// One recursion level's affine grid cache: `H`+`F` along internal rows,
/// `H`+`E` along internal columns.
struct AffineGrid {
    row_bounds: Vec<usize>,
    col_bounds: Vec<usize>,
    rows_h: Vec<Vec<i32>>,
    rows_v: Vec<Vec<i32>>,
    cols_h: Vec<Vec<i32>>,
    cols_e: Vec<Vec<i32>>,
}

impl AffineGrid {
    fn new(rows: usize, cols: usize, k_r: usize, k_c: usize) -> Self {
        AffineGrid {
            row_bounds: partition(rows, k_r),
            col_bounds: partition(cols, k_c),
            rows_h: vec![vec![0; cols + 1]; k_r - 1],
            rows_v: vec![vec![NEG; cols + 1]; k_r - 1],
            cols_h: vec![vec![0; rows + 1]; k_c - 1],
            cols_e: vec![vec![NEG; rows + 1]; k_c - 1],
        }
    }

    fn entries(&self) -> usize {
        2 * (self.rows_h.iter().map(Vec::len).sum::<usize>()
            + self.cols_h.iter().map(Vec::len).sum::<usize>())
    }
}

struct AffineSolver<'s> {
    scheme: &'s ScoringScheme,
    config: FastLsaConfig,
    metrics: &'s Metrics,
    /// Scratch pool for grid-fill boundary and edge buffers: every block
    /// after the first reuses the same handful of vectors instead of
    /// allocating eight per block.
    arena: KernelArena,
}

impl AffineSolver<'_> {
    /// Extends the path through one rectangle; `head` is on the bottom
    /// row or right column carrying `state`; returns the exit point on
    /// the top row or left column with its state.
    fn solve(
        &mut self,
        a: &[u8],
        b: &[u8],
        bnd: AffineBoundary<'_>,
        head: (usize, usize),
        state: GapState,
        out: &mut PathBuilder,
    ) -> ((usize, usize), GapState) {
        let (rows, cols) = (a.len(), b.len());
        debug_assert!(head.0 == rows || head.1 == cols);
        // Already on the exit boundary (unless mid-run pointing across it).
        let done = match state {
            GapState::H => head.0 == 0 || head.1 == 0,
            GapState::F => head.0 == 0,
            GapState::E => head.1 == 0,
        };
        if done {
            return (head, state);
        }

        let cells = (rows + 1).saturating_mul(cols + 1);
        if cells <= self.config.base_cells || rows < 2 || cols < 2 {
            // BASE CASE: three full layers plus stateful traceback.
            let mats = fill_affine_full(a, b, bnd, self.scheme, self.metrics);
            let _mem = self.metrics.track_alloc(3 * mats.h.bytes());
            self.metrics.add_base_case_cells(rows as u64 * cols as u64);
            return flsa_dp::affine::trace_affine(
                &mats,
                a,
                b,
                self.scheme,
                head,
                state,
                out,
                self.metrics,
            );
        }

        // GENERAL CASE.
        let k_r = self.config.k.min(rows);
        let k_c = self.config.k.min(cols);
        let mut grid = AffineGrid::new(rows, cols, k_r, k_c);
        let _mem = self
            .metrics
            .track_alloc(grid.entries() * std::mem::size_of::<i32>());
        self.fill_grid(a, b, bnd, &mut grid);

        let (mut i, mut j) = head;
        let mut state = state;
        loop {
            let done = match state {
                GapState::H => i == 0 || j == 0,
                GapState::F => i == 0,
                GapState::E => j == 0,
            };
            if done {
                break;
            }
            let s = segment_of(&grid.row_bounds, i.max(1));
            let t = segment_of(&grid.col_bounds, j.max(1));
            let r0 = grid.row_bounds[s];
            let r1 = grid.row_bounds[s + 1];
            let c0 = grid.col_bounds[t];
            let c1 = grid.col_bounds[t + 1];
            let sub_bnd = AffineBoundary {
                top_h: if s == 0 {
                    &bnd.top_h[c0..=c1]
                } else {
                    &grid.rows_h[s - 1][c0..=c1]
                },
                top_v: if s == 0 {
                    &bnd.top_v[c0..=c1]
                } else {
                    &grid.rows_v[s - 1][c0..=c1]
                },
                left_h: if t == 0 {
                    &bnd.left_h[r0..=r1]
                } else {
                    &grid.cols_h[t - 1][r0..=r1]
                },
                left_e: if t == 0 {
                    &bnd.left_e[r0..=r1]
                } else {
                    &grid.cols_e[t - 1][r0..=r1]
                },
            };
            let ((ei, ej), st) = self.solve(
                &a[r0..r1],
                &b[c0..c1],
                sub_bnd,
                (i - r0, j - c0),
                state,
                out,
            );
            i = r0 + ei;
            j = c0 + ej;
            state = st;
        }
        ((i, j), state)
    }

    /// Sequential fillGridCache with affine edges; every block except the
    /// bottom-right, row-major.
    fn fill_grid(&mut self, a: &[u8], b: &[u8], bnd: AffineBoundary<'_>, grid: &mut AffineGrid) {
        let k_r = grid.row_bounds.len() - 1;
        let k_c = grid.col_bounds.len() - 1;
        for s in 0..k_r {
            for t in 0..k_c {
                if s == k_r - 1 && t == k_c - 1 {
                    continue;
                }
                let r0 = grid.row_bounds[s];
                let r1 = grid.row_bounds[s + 1];
                let c0 = grid.col_bounds[t];
                let c1 = grid.col_bounds[t + 1];
                // Copy inputs first (the outputs may alias other rows of
                // the same cache vectors). Buffers come from the arena so
                // steady-state grid fills allocate nothing.
                let mut top_h = self.arena.take(c1 - c0 + 1);
                top_h.copy_from_slice(if s == 0 {
                    &bnd.top_h[c0..=c1]
                } else {
                    &grid.rows_h[s - 1][c0..=c1]
                });
                let mut top_v = self.arena.take(c1 - c0 + 1);
                top_v.copy_from_slice(if s == 0 {
                    &bnd.top_v[c0..=c1]
                } else {
                    &grid.rows_v[s - 1][c0..=c1]
                });
                let mut left_h = self.arena.take(r1 - r0 + 1);
                left_h.copy_from_slice(if t == 0 {
                    &bnd.left_h[r0..=r1]
                } else {
                    &grid.cols_h[t - 1][r0..=r1]
                });
                let mut left_e = self.arena.take(r1 - r0 + 1);
                left_e.copy_from_slice(if t == 0 {
                    &bnd.left_e[r0..=r1]
                } else {
                    &grid.cols_e[t - 1][r0..=r1]
                });
                let edges = fill_affine_edges_in(
                    &a[r0..r1],
                    &b[c0..c1],
                    AffineBoundary {
                        top_h: &top_h,
                        top_v: &top_v,
                        left_h: &left_h,
                        left_e: &left_e,
                    },
                    self.scheme,
                    &self.arena,
                    self.metrics,
                );
                self.arena.put(top_h);
                self.arena.put(top_v);
                self.arena.put(left_h);
                self.arena.put(left_e);
                if s + 1 < k_r {
                    grid.rows_h[s][c0..=c1].copy_from_slice(&edges.bottom_h);
                    // bottom_v[0] is a placeholder (the kernel never
                    // updates the V entry of its own left edge); the true
                    // corner value is the *left* neighbour's bottom_v
                    // last element, already in place. Skip index 0 so it
                    // is not clobbered.
                    grid.rows_v[s][c0 + 1..=c1].copy_from_slice(&edges.bottom_v[1..]);
                }
                if t + 1 < k_c {
                    grid.cols_h[t][r0..=r1].copy_from_slice(&edges.right_h);
                    // right_e[0] is a placeholder; keep the true value
                    // already present from the block above (or NEG at the
                    // very top, where no cell reads it).
                    grid.cols_e[t][r0 + 1..=r1].copy_from_slice(&edges.right_e[1..]);
                }
                edges.recycle(&self.arena);
            }
        }
    }
}

/// Affine-gap global alignment with the FastLSA recursion (sequential).
///
/// Produces the same optimal score as [`flsa_fullmatrix::gotoh()`] in
/// FastLSA's adaptive memory footprint.
///
/// # Errors
///
/// Returns [`ConfigError::GapModelNotAffine`] (wrapped in
/// [`AlignError::Config`]) when `scheme.gap()` is not affine, and the
/// usual configuration/alphabet errors of the linear entry points.
///
/// # Examples
///
/// ```
/// use fastlsa_core::{align_affine, FastLsaConfig};
/// use flsa_dp::Metrics;
/// use flsa_scoring::{tables, GapModel, ScoringScheme};
/// use flsa_seq::Sequence;
///
/// let scheme = ScoringScheme::new(tables::dna_default(), GapModel::affine(-10, -1));
/// let a = Sequence::from_str("a", scheme.alphabet(), "ACGTACCCCGTACGT").unwrap();
/// let b = Sequence::from_str("b", scheme.alphabet(), "ACGTACGTACGT").unwrap();
/// let metrics = Metrics::new();
/// let r = align_affine(&a, &b, &scheme, FastLsaConfig::new(4, 256), &metrics).unwrap();
/// assert!(r.path.is_global(a.len(), b.len()));
/// // 12 matches (+60) and one length-3 gap (-13): score 47.
/// assert_eq!(r.score, 47);
/// ```
pub fn align_affine(
    a: &Sequence,
    b: &Sequence,
    scheme: &ScoringScheme,
    config: FastLsaConfig,
    metrics: &Metrics,
) -> Result<AlignResult, AlignError> {
    config.validate()?;
    if !matches!(*scheme.gap(), flsa_scoring::GapModel::Affine { .. }) {
        return Err(ConfigError::GapModelNotAffine.into());
    }
    for s in [a, b] {
        if s.alphabet() != scheme.alphabet() {
            return Err(AlignError::AlphabetMismatch {
                expected: scheme.alphabet().name().to_string(),
                found: s.alphabet().name().to_string(),
            });
        }
    }
    let (open, extend) = flsa_dp::affine::affine_params(scheme);
    let (m, n) = (a.len(), b.len());
    let bnd = AffineGlobalBoundary::new(m, n, open, extend);
    let base_guard = metrics.track_alloc(3 * config.base_cells * std::mem::size_of::<i32>());

    let mut solver = AffineSolver {
        scheme,
        config,
        metrics,
        arena: KernelArena::new(),
    };
    let mut builder = PathBuilder::new();
    let ((ei, ej), _state) = solver.solve(
        a.codes(),
        b.codes(),
        bnd.view(),
        (m, n),
        GapState::H,
        &mut builder,
    );
    for _ in 0..ei {
        builder.push_back(Move::Up);
    }
    for _ in 0..ej {
        builder.push_back(Move::Left);
    }
    drop(base_guard);

    let path = builder.finish((0, 0));
    debug_assert!(path.is_global(m, n));
    let score = flsa_fullmatrix::gotoh::score_path_affine(&path, a, b, scheme);
    Ok(AlignResult { score, path })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flsa_fullmatrix::gotoh::gotoh;
    use flsa_scoring::{tables, GapModel};
    use flsa_seq::generate::{homologous_pair, random_sequence};
    use flsa_seq::Alphabet;

    fn scheme(open: i32, extend: i32) -> ScoringScheme {
        ScoringScheme::new(tables::dna_default(), GapModel::affine(open, extend))
    }

    #[test]
    fn matches_gotoh_on_fixed_cases() {
        let scheme = scheme(-10, -2);
        let cases = [
            ("ACGT", "ACGT"),
            ("AAAACCAAAA", "AAAAAAAA"),
            ("ACGTACGTACGTACGTACGT", "ACGTACGACGTACGGT"),
            ("A", "GGGGGGGG"),
            ("ACCCCCCCCCCA", "AA"),
        ];
        for (sa, sb) in cases {
            let a = Sequence::from_str("a", scheme.alphabet(), sa).unwrap();
            let b = Sequence::from_str("b", scheme.alphabet(), sb).unwrap();
            let metrics = Metrics::new();
            let oracle = gotoh(&a, &b, &scheme, &metrics);
            for k in [2usize, 3, 4] {
                for base in [16usize, 64, 1 << 20] {
                    let m = Metrics::new();
                    let r = align_affine(&a, &b, &scheme, FastLsaConfig::new(k, base), &m).unwrap();
                    assert_eq!(r.score, oracle.score, "{sa}/{sb} k={k} base={base}");
                }
            }
        }
    }

    #[test]
    fn matches_gotoh_on_random_homologs() {
        let scheme = scheme(-12, -1);
        for seed in 0..6 {
            let (a, b) = homologous_pair("t", &Alphabet::dna(), 250, 0.8, seed).unwrap();
            let metrics = Metrics::new();
            let oracle = gotoh(&a, &b, &scheme, &metrics);
            let r = align_affine(&a, &b, &scheme, FastLsaConfig::new(4, 512), &metrics).unwrap();
            assert_eq!(r.score, oracle.score, "seed {seed}");
            assert!(r.path.is_global(a.len(), b.len()));
        }
    }

    #[test]
    fn matches_gotoh_on_random_unrelated() {
        let scheme = scheme(-8, -3);
        for seed in 0..6 {
            let a = random_sequence("a", &Alphabet::dna(), 120, seed * 2);
            let b = random_sequence("b", &Alphabet::dna(), 140, seed * 2 + 1);
            let metrics = Metrics::new();
            let oracle = gotoh(&a, &b, &scheme, &metrics);
            let r = align_affine(&a, &b, &scheme, FastLsaConfig::new(3, 128), &metrics).unwrap();
            assert_eq!(r.score, oracle.score, "seed {seed}");
        }
    }

    #[test]
    fn long_gap_crossing_many_grid_lines() {
        // A 40-base gap with k=4 and a tiny base case: the run crosses
        // several grid rows, exercising the stateful head repeatedly.
        let scheme = scheme(-30, -1);
        let core = "ACGTACGTACGTACGTACGT";
        let a = Sequence::from_str(
            "a",
            scheme.alphabet(),
            &format!("{core}{}{core}", "C".repeat(40)),
        )
        .unwrap();
        let b = Sequence::from_str("b", scheme.alphabet(), &format!("{core}{core}")).unwrap();
        let metrics = Metrics::new();
        let oracle = gotoh(&a, &b, &scheme, &metrics);
        let r = align_affine(&a, &b, &scheme, FastLsaConfig::new(4, 64), &metrics).unwrap();
        assert_eq!(r.score, oracle.score);
        // The 40 Ups must be one contiguous run (single open), otherwise
        // the rescore would fall short of the oracle.
        let ups: Vec<usize> = r
            .path
            .moves()
            .iter()
            .enumerate()
            .filter(|(_, &m)| m == Move::Up)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(ups.len(), 40);
        assert!(ups.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn memory_stays_linear() {
        let scheme = scheme(-10, -2);
        let (a, b) = homologous_pair("t", &Alphabet::dna(), 1500, 0.85, 4).unwrap();
        let m_fl = Metrics::new();
        align_affine(&a, &b, &scheme, FastLsaConfig::new(8, 1 << 12), &m_fl).unwrap();
        let m_g = Metrics::new();
        gotoh(&a, &b, &scheme, &m_g);
        assert!(
            m_fl.snapshot().peak_bytes * 10 < m_g.snapshot().peak_bytes,
            "fastlsa-affine {} vs gotoh {}",
            m_fl.snapshot().peak_bytes,
            m_g.snapshot().peak_bytes
        );
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let scheme = scheme(-10, -2);
        let metrics = Metrics::new();
        let e = Sequence::from_str("e", scheme.alphabet(), "").unwrap();
        let b = Sequence::from_str("b", scheme.alphabet(), "ACG").unwrap();
        let cfg = FastLsaConfig::new(2, 8);
        assert_eq!(
            align_affine(&e, &b, &scheme, cfg, &metrics).unwrap().score,
            -16
        );
        assert_eq!(
            align_affine(&b, &e, &scheme, cfg, &metrics).unwrap().score,
            -16
        );
        assert_eq!(
            align_affine(&e, &e, &scheme, cfg, &metrics).unwrap().score,
            0
        );
    }

    #[test]
    fn linear_scheme_rejected() {
        let scheme = ScoringScheme::dna_default();
        let a = Sequence::from_str("a", scheme.alphabet(), "ACG").unwrap();
        let metrics = Metrics::new();
        let err = align_affine(&a, &a, &scheme, FastLsaConfig::default(), &metrics).unwrap_err();
        assert_eq!(
            err,
            AlignError::Config(ConfigError::GapModelNotAffine),
            "linear gap model must be rejected as a config error"
        );
    }
}

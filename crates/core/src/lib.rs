//! **FastLSA** — the paper's primary contribution: a fast, linear-space,
//! parallel and sequential algorithm for pairwise sequence alignment
//! (Driga, Lu, Schaeffer, Szafron, Charter, Parsons; ICPP 2003).
//!
//! FastLSA produces exactly the same optimal alignment as the
//! full-matrix (Needleman–Wunsch) and Hirschberg algorithms for a given
//! scoring function; it differs in the space/computation trade-off:
//!
//! | algorithm | space | cells computed |
//! |---|---|---|
//! | full matrix | `O(m·n)` | `m·n` |
//! | Hirschberg | `O(min(m,n))` | ≈ `2·m·n` |
//! | FastLSA(`k`, `BM`) | `O(k·(m+n)) + BM` | ≤ `m·n·(k/(k−1))²`, →`m·n` as `BM` grows |
//!
//! # Quick start
//!
//! ```
//! use fastlsa_core::{align, FastLsaConfig};
//! use flsa_dp::Metrics;
//! use flsa_scoring::ScoringScheme;
//! use flsa_seq::Sequence;
//!
//! // The paper's worked example (Table 1 scoring, gap -10).
//! let scheme = ScoringScheme::paper_example();
//! let a = Sequence::from_str("a", scheme.alphabet(), "TLDKLLKD").unwrap();
//! let b = Sequence::from_str("b", scheme.alphabet(), "TDVLKAD").unwrap();
//! let metrics = Metrics::new();
//! let result = align(&a, &b, &scheme, &metrics);
//! assert_eq!(result.score, 82);
//!
//! // Tune for a memory budget, or run the parallel version:
//! let cfg = FastLsaConfig::for_memory(8 << 20, a.len(), b.len()).with_threads(4);
//! let result2 = fastlsa_core::align_with(&a, &b, &scheme, cfg, &Metrics::new());
//! assert_eq!(result2.score, 82);
//! ```

pub mod affine;
pub mod config;
pub mod costlog;
pub mod grid;
pub mod model;
mod parallel;
mod solver;

pub use affine::align_affine;
pub use config::{FastLsaConfig, ParallelConfig};
pub use costlog::{CostEvent, CostLog};
pub use model::{replay, replay_with_comm, ReplayReport};

use flsa_dp::{AlignResult, Metrics};
use flsa_scoring::ScoringScheme;
use flsa_seq::Sequence;

/// Aligns two sequences with the default configuration
/// ([`FastLsaConfig::default`]: sequential, `k = 8`, 4 MiB base buffer).
pub fn align(a: &Sequence, b: &Sequence, scheme: &ScoringScheme, metrics: &Metrics) -> AlignResult {
    align_with(a, b, scheme, FastLsaConfig::default(), metrics)
}

/// Aligns two sequences with an explicit configuration (sequential or
/// parallel).
pub fn align_with(
    a: &Sequence,
    b: &Sequence,
    scheme: &ScoringScheme,
    config: FastLsaConfig,
    metrics: &Metrics,
) -> AlignResult {
    let mut solver = solver::Solver::new(scheme, config, metrics);
    solver.run(a, b)
}

/// Like [`align_with`], additionally returning the execution trace for
/// schedule replay (experiments E7/E8; see [`model::replay`]).
pub fn align_traced(
    a: &Sequence,
    b: &Sequence,
    scheme: &ScoringScheme,
    config: FastLsaConfig,
    metrics: &Metrics,
) -> (AlignResult, CostLog) {
    let mut solver = solver::Solver::new(scheme, config, metrics);
    let result = solver.run(a, b);
    (result, solver.log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flsa_fullmatrix::needleman_wunsch;
    use flsa_hirschberg::hirschberg;
    use flsa_seq::generate::homologous_pair;
    use flsa_seq::Alphabet;

    fn paper_pair() -> (Sequence, Sequence, ScoringScheme) {
        let scheme = ScoringScheme::paper_example();
        let a = Sequence::from_str("a", scheme.alphabet(), "TLDKLLKD").unwrap();
        let b = Sequence::from_str("b", scheme.alphabet(), "TDVLKAD").unwrap();
        (a, b, scheme)
    }

    #[test]
    fn paper_example_scores_82() {
        let (a, b, scheme) = paper_pair();
        let metrics = Metrics::new();
        let r = align(&a, &b, &scheme, &metrics);
        assert_eq!(r.score, 82);
        assert_eq!(r.path.score(&a, &b, &scheme), 82);
    }

    #[test]
    fn paper_example_with_tiny_base_case_recurses_and_still_scores_82() {
        let (a, b, scheme) = paper_pair();
        for k in 2..=6 {
            let metrics = Metrics::new();
            let cfg = FastLsaConfig::new(k, 16);
            let r = align_with(&a, &b, &scheme, cfg, &metrics);
            assert_eq!(r.score, 82, "k={k}");
        }
    }

    #[test]
    fn agrees_with_nw_and_hirschberg_across_k_and_base() {
        let scheme = ScoringScheme::dna_default();
        for seed in 0..6 {
            let (a, b) = homologous_pair("t", &Alphabet::dna(), 300, 0.8, seed).unwrap();
            let metrics = Metrics::new();
            let nw = needleman_wunsch(&a, &b, &scheme, &metrics);
            let hb = hirschberg(&a, &b, &scheme, &metrics);
            assert_eq!(nw.score, hb.score);
            for k in [2usize, 3, 5, 8] {
                for base in [32usize, 1024, 1 << 20] {
                    let m = Metrics::new();
                    let r = align_with(&a, &b, &scheme, FastLsaConfig::new(k, base), &m);
                    assert_eq!(r.score, nw.score, "seed={seed} k={k} base={base}");
                    assert_eq!(r.path.score(&a, &b, &scheme), r.score);
                    assert!(r.path.is_global(a.len(), b.len()));
                }
            }
        }
    }

    #[test]
    fn path_identical_to_full_matrix_path() {
        // Shared Diag > Up > Left tie-break: FastLSA recovers the same
        // canonical optimal path as the FM traceback, not just the score.
        let scheme = ScoringScheme::dna_default();
        for seed in 0..4 {
            let (a, b) = homologous_pair("t", &Alphabet::dna(), 257, 0.75, seed + 50).unwrap();
            let metrics = Metrics::new();
            let nw = needleman_wunsch(&a, &b, &scheme, &metrics);
            let r = align_with(&a, &b, &scheme, FastLsaConfig::new(4, 256), &metrics);
            assert_eq!(nw.path, r.path, "seed={seed}");
        }
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let scheme = ScoringScheme::dna_default();
        let (a, b) = homologous_pair("t", &Alphabet::dna(), 600, 0.8, 99).unwrap();
        let metrics = Metrics::new();
        let seq = align_with(&a, &b, &scheme, FastLsaConfig::new(4, 2048), &metrics);
        for threads in [1usize, 2, 3, 4, 8] {
            let m = Metrics::new();
            let cfg = FastLsaConfig::new(4, 2048).with_threads(threads);
            let par = align_with(&a, &b, &scheme, cfg, &m);
            assert_eq!(par.score, seq.score, "threads={threads}");
            assert_eq!(par.path, seq.path, "threads={threads}");
            // Same work regardless of thread count.
            assert_eq!(
                m.snapshot().cells_computed,
                metrics.snapshot().cells_computed,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn huge_base_case_degenerates_to_full_matrix() {
        // Paper: if RM > m×n a full-matrix algorithm is used; FastLSA with
        // base_cells covering the whole DPM must compute exactly m·n cells.
        let scheme = ScoringScheme::dna_default();
        let (a, b) = homologous_pair("t", &Alphabet::dna(), 400, 0.8, 5).unwrap();
        let metrics = Metrics::new();
        let cfg = FastLsaConfig {
            k: 8,
            base_cells: (a.len() + 1) * (b.len() + 1),
            parallel: None,
        };
        align_with(&a, &b, &scheme, cfg, &metrics);
        assert_eq!(
            metrics.snapshot().cells_computed,
            (a.len() * b.len()) as u64
        );
    }

    #[test]
    fn measured_cells_obey_theorem_bound() {
        let scheme = ScoringScheme::dna_default();
        let (a, b) = homologous_pair("t", &Alphabet::dna(), 1500, 0.8, 11).unwrap();
        for k in [2usize, 4, 8] {
            let base = 4096;
            let metrics = Metrics::new();
            align_with(&a, &b, &scheme, FastLsaConfig::new(k, base), &metrics);
            let measured = metrics.snapshot().cells_computed as f64;
            let bound = model::fastlsa_cells_bound(a.len(), b.len(), k, base);
            // Allow the non-divisible-length rounding slack (DESIGN.md §6).
            assert!(
                measured <= bound * 1.05,
                "k={k}: measured {measured} > bound {bound}"
            );
            // And FastLSA must beat Hirschberg's 2·m·n for k > 2.
            if k > 2 {
                assert!(measured < model::hirschberg_cells(a.len(), b.len()));
            }
        }
    }

    #[test]
    fn memory_grows_with_k_but_stays_linear() {
        let scheme = ScoringScheme::dna_default();
        let (a, b) = homologous_pair("t", &Alphabet::dna(), 3000, 0.85, 21).unwrap();
        let base = 1 << 12;
        let mut prev_peak = 0u64;
        for k in [2usize, 4, 8, 16] {
            let metrics = Metrics::new();
            align_with(&a, &b, &scheme, FastLsaConfig::new(k, base), &metrics);
            let peak = metrics.snapshot().peak_bytes;
            let bound = model::fastlsa_space_entries(a.len(), b.len(), k, base) * 4.0;
            assert!(
                peak as f64 <= bound * 1.10,
                "k={k}: peak {peak} > bound {bound}"
            );
            assert!(peak >= prev_peak, "peak should grow with k");
            prev_peak = peak;
            // Far below the quadratic FM footprint.
            let fm = ((a.len() + 1) * (b.len() + 1) * 4) as u64;
            assert!(peak * 10 < fm, "k={k}");
        }
    }

    #[test]
    fn traced_log_accounts_for_all_fill_cells() {
        let scheme = ScoringScheme::dna_default();
        let (a, b) = homologous_pair("t", &Alphabet::dna(), 800, 0.8, 31).unwrap();
        let metrics = Metrics::new();
        let (_, log) = align_traced(&a, &b, &scheme, FastLsaConfig::new(4, 1024), &metrics);
        assert_eq!(log.total_fill_cells(), metrics.snapshot().cells_computed);
        assert_eq!(log.total_trace_steps(), metrics.snapshot().traceback_steps);
    }

    #[test]
    fn asymmetric_and_tiny_inputs() {
        let scheme = ScoringScheme::dna_default();
        let cases = [
            ("", "ACGT"),
            ("ACGT", ""),
            ("A", "A"),
            ("A", "ACGTACGTACGT"),
            ("ACGTACGTACGTACGTACGT", "AC"),
        ];
        for (sa, sb) in cases {
            let a = Sequence::from_str("a", scheme.alphabet(), sa).unwrap();
            let b = Sequence::from_str("b", scheme.alphabet(), sb).unwrap();
            let metrics = Metrics::new();
            let nw = needleman_wunsch(&a, &b, &scheme, &metrics);
            let r = align_with(&a, &b, &scheme, FastLsaConfig::new(2, 8), &metrics);
            assert_eq!(r.score, nw.score, "case {sa:?} vs {sb:?}");
        }
    }

    #[test]
    fn protein_scoring_matches_baselines() {
        let scheme = ScoringScheme::protein_default();
        let (a, b) = homologous_pair("t", &Alphabet::protein(), 350, 0.7, 77).unwrap();
        let metrics = Metrics::new();
        let nw = needleman_wunsch(&a, &b, &scheme, &metrics);
        let r = align_with(&a, &b, &scheme, FastLsaConfig::new(6, 512), &metrics);
        assert_eq!(r.score, nw.score);
    }
}

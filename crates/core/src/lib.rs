//! **FastLSA** — the paper's primary contribution: a fast, linear-space,
//! parallel and sequential algorithm for pairwise sequence alignment
//! (Driga, Lu, Schaeffer, Szafron, Charter, Parsons; ICPP 2003).
//!
//! FastLSA produces exactly the same optimal alignment as the
//! full-matrix (Needleman–Wunsch) and Hirschberg algorithms for a given
//! scoring function; it differs in the space/computation trade-off:
//!
//! | algorithm | space | cells computed |
//! |---|---|---|
//! | full matrix | `O(m·n)` | `m·n` |
//! | Hirschberg | `O(min(m,n))` | ≈ `2·m·n` |
//! | FastLSA(`k`, `BM`) | `O(k·(m+n)) + BM` | ≤ `m·n·(k/(k−1))²`, →`m·n` as `BM` grows |
//!
//! # Quick start
//!
//! ```
//! use fastlsa_core::{align, FastLsaConfig};
//! use flsa_dp::Metrics;
//! use flsa_scoring::ScoringScheme;
//! use flsa_seq::Sequence;
//!
//! // The paper's worked example (Table 1 scoring, gap -10).
//! let scheme = ScoringScheme::paper_example();
//! let a = Sequence::from_str("a", scheme.alphabet(), "TLDKLLKD").unwrap();
//! let b = Sequence::from_str("b", scheme.alphabet(), "TDVLKAD").unwrap();
//! let metrics = Metrics::new();
//! let result = align(&a, &b, &scheme, &metrics).unwrap();
//! assert_eq!(result.score, 82);
//!
//! // Tune for a memory budget, or run the parallel version:
//! let cfg = FastLsaConfig::for_memory(8 << 20, a.len(), b.len()).with_threads(4);
//! let result2 = fastlsa_core::align_with(&a, &b, &scheme, cfg, &Metrics::new()).unwrap();
//! assert_eq!(result2.score, 82);
//! ```
//!
//! # Failure model
//!
//! Every `align*` entry point returns `Result<_, `[`AlignError`]`>`; no
//! panic escapes the public API. [`align_opts`] additionally accepts
//! [`AlignOptions`] — a byte budget enforced by the [`MemoryGovernor`],
//! a [`CancelToken`] with optional deadline, and fault-injection hooks —
//! and on a refused allocation automatically retries down the
//! degradation ladder (see [`next_rung`]), recording each step as a
//! trace event so `flsa report` can show what degraded and why.

pub mod affine;
pub mod cancel;
pub mod checkpoint;
pub mod config;
pub mod costlog;
pub mod error;
pub mod governor;
pub mod grid;
mod metrics;
pub mod model;
mod parallel;
mod solver;

pub use affine::align_affine;
pub use cancel::CancelToken;
pub use checkpoint::{CheckpointPolicy, CheckpointSink, CheckpointState, FrameState, GridState};
pub use config::{max_safe_span, FastLsaConfig, ParallelConfig};
pub use costlog::{CostEvent, CostLog};
pub use error::{AlignError, ConfigError};
pub use governor::{
    degradation_ladder, next_rung, AlignOptions, FaultHooks, MemoryGovernor, MIN_BASE_CELLS,
};
pub use model::{replay, replay_with_comm, ReplayReport};

// Kernel dispatch re-exports so callers can populate
// [`AlignOptions::kernel`] without depending on `flsa-dp` directly.
pub use flsa_dp::{BatchKernel, KernelArena, KernelBackend};

use flsa_dp::{AlignResult, BatchJob, Kernel, Metrics};
use flsa_scoring::ScoringScheme;
use flsa_seq::Sequence;
use flsa_trace::{DegradeReason, EventKind};

/// Aligns two sequences with the default configuration
/// ([`FastLsaConfig::default`]: sequential, `k = 8`, 4 MiB base buffer).
pub fn align(
    a: &Sequence,
    b: &Sequence,
    scheme: &ScoringScheme,
    metrics: &Metrics,
) -> Result<AlignResult, AlignError> {
    align_with(a, b, scheme, FastLsaConfig::default(), metrics)
}

/// Aligns two sequences with an explicit configuration (sequential or
/// parallel).
pub fn align_with(
    a: &Sequence,
    b: &Sequence,
    scheme: &ScoringScheme,
    config: FastLsaConfig,
    metrics: &Metrics,
) -> Result<AlignResult, AlignError> {
    align_opts(a, b, scheme, config, &AlignOptions::default(), metrics)
}

/// Aligns two sequences under a memory budget, cancellation token, and
/// (for testing) fault-injection hooks.
///
/// On [`AlignError::AllocFailed`] the run is retried with the next rung
/// of the degradation ladder (halved `base_cells`, then halved `k`, down
/// to the Hirschberg-style minimal footprint); on
/// [`AlignError::WorkerPanic`] the retry strips parallelism. Every retry
/// is recorded as an [`EventKind::Degrade`] trace event when a recorder
/// is attached. Other errors — and failures at the bottom of the ladder
/// — are returned to the caller.
pub fn align_opts(
    a: &Sequence,
    b: &Sequence,
    scheme: &ScoringScheme,
    config: FastLsaConfig,
    opts: &AlignOptions,
    metrics: &Metrics,
) -> Result<AlignResult, AlignError> {
    config.validate_run(scheme, a.len(), b.len())?;
    validate_kernel(opts)?;
    let mut cfg = config;
    let mut rung: u32 = 0;
    loop {
        let mut solver = solver::Solver::new(scheme, cfg, metrics, opts);
        let err = match solver.run(a, b) {
            Ok(r) => return Ok(r),
            Err(e) => e,
        };
        let (reason, next) = match &err {
            AlignError::AllocFailed { .. } => (DegradeReason::AllocFailed, next_rung(&cfg)),
            AlignError::WorkerPanic if cfg.threads() > 1 => (
                DegradeReason::WorkerPanic,
                Some(FastLsaConfig {
                    parallel: None,
                    ..cfg
                }),
            ),
            _ => return Err(err),
        };
        let Some(next) = next else {
            // Bottom of the ladder: give the caller the real failure.
            return Err(err);
        };
        rung += 1;
        if let Some(reg) = &opts.registry {
            reg.counter(flsa_metrics::names::DEGRADE_STEPS_TOTAL).inc();
        }
        if let Some(r) = metrics.recorder() {
            let now = r.now_ns();
            r.record(
                now,
                now,
                EventKind::Degrade {
                    reason,
                    rung,
                    k: next.k as u32,
                    base_cells: next.base_cells as u64,
                    threads: next.threads() as u32,
                },
            );
        }
        if let Some(p) = &opts.checkpoint {
            p.sink.note_degrade(reason.name(), rung, &next);
        }
        cfg = next;
    }
}

/// Continues an interrupted run from a [`CheckpointState`] snapshot.
///
/// The snapshot is validated structurally against the input dimensions
/// (digest/CRC validation happens in the serialization layer before the
/// state ever reaches this function); any inconsistency is returned as
/// [`AlignError::CorruptCheckpoint`] — never a wrong alignment. The run
/// restarts under the snapshot's own configuration (which may already be
/// a degraded rung) and keeps degrading from there on further faults:
/// frames are self-describing, so a retry with a smaller `base_cells` or
/// `k` reuses every already-filled grid cache and only shapes *future*
/// frames differently.
pub fn align_resume(
    a: &Sequence,
    b: &Sequence,
    scheme: &ScoringScheme,
    state: CheckpointState,
    opts: &AlignOptions,
    metrics: &Metrics,
) -> Result<AlignResult, AlignError> {
    state.config.validate_run(scheme, a.len(), b.len())?;
    validate_kernel(opts)?;
    let mut cfg = state.config;
    let mut rung: u32 = 0;
    loop {
        let mut solver = solver::Solver::new(scheme, cfg, metrics, opts);
        let err = match solver.resume(a, b, state.clone()) {
            Ok(r) => return Ok(r),
            Err(e) => e,
        };
        let (reason, next) = match &err {
            AlignError::AllocFailed { .. } => (DegradeReason::AllocFailed, next_rung(&cfg)),
            AlignError::WorkerPanic if cfg.threads() > 1 => (
                DegradeReason::WorkerPanic,
                Some(FastLsaConfig {
                    parallel: None,
                    ..cfg
                }),
            ),
            _ => return Err(err),
        };
        let Some(next) = next else {
            return Err(err);
        };
        rung += 1;
        if let Some(reg) = &opts.registry {
            reg.counter(flsa_metrics::names::DEGRADE_STEPS_TOTAL).inc();
        }
        if let Some(r) = metrics.recorder() {
            let now = r.now_ns();
            r.record(
                now,
                now,
                EventKind::Degrade {
                    reason,
                    rung,
                    k: next.k as u32,
                    base_cells: next.base_cells as u64,
                    threads: next.threads() as u32,
                },
            );
        }
        if let Some(p) = &opts.checkpoint {
            p.sink.note_degrade(reason.name(), rung, &next);
        }
        cfg = next;
    }
}

/// Aligns many **independent** pairs at once on the inter-sequence
/// [`BatchKernel`] (one pair per SIMD lane), under a shared linear-gap
/// scoring scheme.
///
/// Results come back in input order and are **bit-identical** to aligning
/// each pair alone with [`align`]: the batch kernel runs `i16` lanes with
/// saturation detection and transparently recomputes any lane whose
/// scores leave the exact range on the single-pair `i32` path. Pairs too
/// long or too wide-scoring for `i16` simply take the single-pair path —
/// batching is a throughput optimization, never a semantics change.
///
/// Unlike the FastLSA entry points this holds each pair's full direction
/// matrix (`m·n` bytes per lane), so it is meant for the many-small-pairs
/// regime (database search, service request coalescing), not for two
/// megabase genomes. `opts` contributes the kernel-backend override
/// ([`AlignOptions::kernel`]); budget/cancel/checkpoint options do not
/// apply to batch jobs.
pub fn align_batch(
    pairs: &[(&Sequence, &Sequence)],
    scheme: &ScoringScheme,
    opts: &AlignOptions,
    metrics: &Metrics,
) -> Result<Vec<AlignResult>, AlignError> {
    validate_kernel(opts)?;
    let max_span = max_safe_span(scheme);
    for (a, b) in pairs {
        for s in [a, b] {
            if s.alphabet() != scheme.alphabet() {
                return Err(AlignError::AlphabetMismatch {
                    expected: scheme.alphabet().name().to_string(),
                    found: s.alphabet().name().to_string(),
                });
            }
        }
        let span = a.len().saturating_add(b.len());
        if span > max_span {
            return Err(ConfigError::ScoreOverflow { span, max_span }.into());
        }
    }
    let kernel = match opts.kernel {
        // validate_kernel above already rejected unavailable backends.
        Some(b) => Kernel::try_new(b)
            .map_err(|e| ConfigError::KernelUnavailable { backend: e.backend.name() })?,
        None => Kernel::auto(),
    };
    let batch = BatchKernel::new(kernel);
    let jobs: Vec<BatchJob<'_>> = pairs
        .iter()
        .map(|(a, b)| BatchJob {
            a: a.codes(),
            b: b.codes(),
            scheme,
        })
        .collect();
    Ok(batch.align_batch(&jobs, metrics))
}

/// Rejects an explicitly requested kernel backend that this CPU cannot
/// run (auto-detection, `opts.kernel = None`, never fails).
fn validate_kernel(opts: &AlignOptions) -> Result<(), ConfigError> {
    match opts.kernel {
        Some(b) if !b.is_available() => Err(ConfigError::KernelUnavailable { backend: b.name() }),
        _ => Ok(()),
    }
}

/// Like [`align_with`], additionally returning the execution trace for
/// schedule replay (experiments E7/E8; see [`model::replay`]).
pub fn align_traced(
    a: &Sequence,
    b: &Sequence,
    scheme: &ScoringScheme,
    config: FastLsaConfig,
    metrics: &Metrics,
) -> Result<(AlignResult, CostLog), AlignError> {
    config.validate_run(scheme, a.len(), b.len())?;
    let mut solver = solver::Solver::new(scheme, config, metrics, &AlignOptions::default());
    let result = solver.run(a, b)?;
    Ok((result, solver.log))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flsa_fullmatrix::needleman_wunsch;
    use flsa_hirschberg::hirschberg;
    use flsa_seq::generate::homologous_pair;
    use flsa_seq::Alphabet;

    fn paper_pair() -> (Sequence, Sequence, ScoringScheme) {
        let scheme = ScoringScheme::paper_example();
        let a = Sequence::from_str("a", scheme.alphabet(), "TLDKLLKD").unwrap();
        let b = Sequence::from_str("b", scheme.alphabet(), "TDVLKAD").unwrap();
        (a, b, scheme)
    }

    #[test]
    fn paper_example_scores_82() {
        let (a, b, scheme) = paper_pair();
        let metrics = Metrics::new();
        let r = align(&a, &b, &scheme, &metrics).unwrap();
        assert_eq!(r.score, 82);
        assert_eq!(r.path.score(&a, &b, &scheme), 82);
    }

    #[test]
    fn paper_example_with_tiny_base_case_recurses_and_still_scores_82() {
        let (a, b, scheme) = paper_pair();
        for k in 2..=6 {
            let metrics = Metrics::new();
            let cfg = FastLsaConfig::new(k, 16);
            let r = align_with(&a, &b, &scheme, cfg, &metrics).unwrap();
            assert_eq!(r.score, 82, "k={k}");
        }
    }

    #[test]
    fn agrees_with_nw_and_hirschberg_across_k_and_base() {
        let scheme = ScoringScheme::dna_default();
        for seed in 0..6 {
            let (a, b) = homologous_pair("t", &Alphabet::dna(), 300, 0.8, seed).unwrap();
            let metrics = Metrics::new();
            let nw = needleman_wunsch(&a, &b, &scheme, &metrics);
            let hb = hirschberg(&a, &b, &scheme, &metrics);
            assert_eq!(nw.score, hb.score);
            for k in [2usize, 3, 5, 8] {
                for base in [32usize, 1024, 1 << 20] {
                    let m = Metrics::new();
                    let r = align_with(&a, &b, &scheme, FastLsaConfig::new(k, base), &m).unwrap();
                    assert_eq!(r.score, nw.score, "seed={seed} k={k} base={base}");
                    assert_eq!(r.path.score(&a, &b, &scheme), r.score);
                    assert!(r.path.is_global(a.len(), b.len()));
                }
            }
        }
    }

    #[test]
    fn path_identical_to_full_matrix_path() {
        // Shared Diag > Up > Left tie-break: FastLSA recovers the same
        // canonical optimal path as the FM traceback, not just the score.
        let scheme = ScoringScheme::dna_default();
        for seed in 0..4 {
            let (a, b) = homologous_pair("t", &Alphabet::dna(), 257, 0.75, seed + 50).unwrap();
            let metrics = Metrics::new();
            let nw = needleman_wunsch(&a, &b, &scheme, &metrics);
            let r = align_with(&a, &b, &scheme, FastLsaConfig::new(4, 256), &metrics).unwrap();
            assert_eq!(nw.path, r.path, "seed={seed}");
        }
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let scheme = ScoringScheme::dna_default();
        let (a, b) = homologous_pair("t", &Alphabet::dna(), 600, 0.8, 99).unwrap();
        let metrics = Metrics::new();
        let seq = align_with(&a, &b, &scheme, FastLsaConfig::new(4, 2048), &metrics).unwrap();
        for threads in [1usize, 2, 3, 4, 8] {
            let m = Metrics::new();
            let cfg = FastLsaConfig::new(4, 2048).with_threads(threads);
            let par = align_with(&a, &b, &scheme, cfg, &m).unwrap();
            assert_eq!(par.score, seq.score, "threads={threads}");
            assert_eq!(par.path, seq.path, "threads={threads}");
            // Same work regardless of thread count.
            assert_eq!(
                m.snapshot().cells_computed,
                metrics.snapshot().cells_computed,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn huge_base_case_degenerates_to_full_matrix() {
        // Paper: if RM > m×n a full-matrix algorithm is used; FastLSA with
        // base_cells covering the whole DPM must compute exactly m·n cells.
        let scheme = ScoringScheme::dna_default();
        let (a, b) = homologous_pair("t", &Alphabet::dna(), 400, 0.8, 5).unwrap();
        let metrics = Metrics::new();
        let cfg = FastLsaConfig {
            k: 8,
            base_cells: (a.len() + 1) * (b.len() + 1),
            parallel: None,
        };
        align_with(&a, &b, &scheme, cfg, &metrics).unwrap();
        assert_eq!(
            metrics.snapshot().cells_computed,
            (a.len() * b.len()) as u64
        );
    }

    #[test]
    fn measured_cells_obey_theorem_bound() {
        let scheme = ScoringScheme::dna_default();
        let (a, b) = homologous_pair("t", &Alphabet::dna(), 1500, 0.8, 11).unwrap();
        for k in [2usize, 4, 8] {
            let base = 4096;
            let metrics = Metrics::new();
            align_with(&a, &b, &scheme, FastLsaConfig::new(k, base), &metrics).unwrap();
            let measured = metrics.snapshot().cells_computed as f64;
            let bound = model::fastlsa_cells_bound(a.len(), b.len(), k, base);
            // Allow the non-divisible-length rounding slack (DESIGN.md §6).
            assert!(
                measured <= bound * 1.05,
                "k={k}: measured {measured} > bound {bound}"
            );
            // And FastLSA must beat Hirschberg's 2·m·n for k > 2.
            if k > 2 {
                assert!(measured < model::hirschberg_cells(a.len(), b.len()));
            }
        }
    }

    #[test]
    fn memory_grows_with_k_but_stays_linear() {
        let scheme = ScoringScheme::dna_default();
        let (a, b) = homologous_pair("t", &Alphabet::dna(), 3000, 0.85, 21).unwrap();
        let base = 1 << 12;
        let mut prev_peak = 0u64;
        for k in [2usize, 4, 8, 16] {
            let metrics = Metrics::new();
            align_with(&a, &b, &scheme, FastLsaConfig::new(k, base), &metrics).unwrap();
            let peak = metrics.snapshot().peak_bytes;
            let bound = model::fastlsa_space_entries(a.len(), b.len(), k, base) * 4.0;
            assert!(
                peak as f64 <= bound * 1.10,
                "k={k}: peak {peak} > bound {bound}"
            );
            assert!(peak >= prev_peak, "peak should grow with k");
            prev_peak = peak;
            // Far below the quadratic FM footprint.
            let fm = ((a.len() + 1) * (b.len() + 1) * 4) as u64;
            assert!(peak * 10 < fm, "k={k}");
        }
    }

    #[test]
    fn traced_log_accounts_for_all_fill_cells() {
        let scheme = ScoringScheme::dna_default();
        let (a, b) = homologous_pair("t", &Alphabet::dna(), 800, 0.8, 31).unwrap();
        let metrics = Metrics::new();
        let (_, log) =
            align_traced(&a, &b, &scheme, FastLsaConfig::new(4, 1024), &metrics).unwrap();
        assert_eq!(log.total_fill_cells(), metrics.snapshot().cells_computed);
        assert_eq!(log.total_trace_steps(), metrics.snapshot().traceback_steps);
    }

    #[test]
    fn asymmetric_and_tiny_inputs() {
        let scheme = ScoringScheme::dna_default();
        let cases = [
            ("", "ACGT"),
            ("ACGT", ""),
            ("A", "A"),
            ("A", "ACGTACGTACGT"),
            ("ACGTACGTACGTACGTACGT", "AC"),
        ];
        for (sa, sb) in cases {
            let a = Sequence::from_str("a", scheme.alphabet(), sa).unwrap();
            let b = Sequence::from_str("b", scheme.alphabet(), sb).unwrap();
            let metrics = Metrics::new();
            let nw = needleman_wunsch(&a, &b, &scheme, &metrics);
            let r = align_with(&a, &b, &scheme, FastLsaConfig::new(2, 8), &metrics).unwrap();
            assert_eq!(r.score, nw.score, "case {sa:?} vs {sb:?}");
        }
    }

    /// Test sink that keeps every captured state in memory.
    struct CaptureSink(std::sync::Mutex<Vec<CheckpointState>>);

    impl CaptureSink {
        fn new() -> std::sync::Arc<Self> {
            std::sync::Arc::new(CaptureSink(std::sync::Mutex::new(Vec::new())))
        }
        fn states(&self) -> Vec<CheckpointState> {
            self.0.lock().unwrap().clone()
        }
    }

    impl CheckpointSink for CaptureSink {
        fn save(&self, state: &CheckpointState) -> Result<u64, String> {
            self.0.lock().unwrap().push(state.clone());
            Ok(0)
        }
    }

    #[test]
    fn resume_from_every_snapshot_reproduces_the_exact_result() {
        let scheme = ScoringScheme::dna_default();
        let (a, b) = homologous_pair("t", &Alphabet::dna(), 400, 0.8, 7).unwrap();
        for threads in [1usize, 3] {
            let cfg = FastLsaConfig::new(4, 512).with_threads(threads);
            let reference = align_with(&a, &b, &scheme, cfg, &Metrics::new()).unwrap();

            let sink = CaptureSink::new();
            let opts = AlignOptions {
                checkpoint: Some(checkpoint::CheckpointPolicy::new(1, sink.clone())),
                ..AlignOptions::default()
            };
            let ckpt_run = align_opts(&a, &b, &scheme, cfg, &opts, &Metrics::new()).unwrap();
            assert_eq!(ckpt_run.score, reference.score);
            assert_eq!(ckpt_run.path, reference.path);

            let states = sink.states();
            assert!(
                states.len() > 5,
                "every_blocks=1 should checkpoint often (got {})",
                states.len()
            );
            // Resuming from ANY intermediate snapshot must land on the
            // same optimal score and path — no work replayed or skipped.
            for (i, state) in states.into_iter().enumerate() {
                let r = align_resume(
                    &a,
                    &b,
                    &scheme,
                    state,
                    &AlignOptions::default(),
                    &Metrics::new(),
                )
                .unwrap();
                assert_eq!(r.score, reference.score, "threads={threads} snapshot {i}");
                assert_eq!(r.path, reference.path, "threads={threads} snapshot {i}");
            }
        }
    }

    #[test]
    fn cancellation_forces_a_final_resumable_snapshot() {
        struct CancelAt {
            at: u64,
            token: CancelToken,
        }
        impl FaultHooks for CancelAt {
            fn on_step(&self, step: u64) {
                if step == self.at {
                    self.token.cancel();
                }
            }
        }
        let scheme = ScoringScheme::dna_default();
        let (a, b) = homologous_pair("t", &Alphabet::dna(), 350, 0.8, 13).unwrap();
        let cfg = FastLsaConfig::new(4, 256);
        let reference = align_with(&a, &b, &scheme, cfg, &Metrics::new()).unwrap();

        let mut resumed_any = false;
        for cancel_at in [2u64, 5, 9, 14] {
            let token = CancelToken::new();
            let sink = CaptureSink::new();
            let opts = AlignOptions {
                cancel: Some(token.clone()),
                hooks: Some(std::sync::Arc::new(CancelAt {
                    at: cancel_at,
                    token: token.clone(),
                })),
                // Cadence so sparse that only the forced final snapshot
                // can realistically fire before the cancellation point.
                checkpoint: Some(checkpoint::CheckpointPolicy::new(u64::MAX, sink.clone())),
                ..AlignOptions::default()
            };
            let err = align_opts(&a, &b, &scheme, cfg, &opts, &Metrics::new()).unwrap_err();
            assert_eq!(err, AlignError::Cancelled);
            let Some(state) = sink.states().pop() else {
                // Cancelled before any frame existed; nothing to resume.
                continue;
            };
            resumed_any = true;
            let r = align_resume(
                &a,
                &b,
                &scheme,
                state,
                &AlignOptions::default(),
                &Metrics::new(),
            )
            .unwrap();
            assert_eq!(r.score, reference.score, "cancel_at={cancel_at}");
            assert_eq!(r.path, reference.path, "cancel_at={cancel_at}");
        }
        assert!(resumed_any, "no cancellation produced a snapshot");
    }

    #[test]
    fn corrupt_states_are_rejected_structurally() {
        let scheme = ScoringScheme::dna_default();
        let (a, b) = homologous_pair("t", &Alphabet::dna(), 200, 0.8, 3).unwrap();
        let sink = CaptureSink::new();
        let opts = AlignOptions {
            checkpoint: Some(checkpoint::CheckpointPolicy::new(1, sink.clone())),
            ..AlignOptions::default()
        };
        let cfg = FastLsaConfig::new(4, 256);
        align_opts(&a, &b, &scheme, cfg, &opts, &Metrics::new()).unwrap();
        let state = sink.states().pop().unwrap();

        type Mutation = Box<dyn Fn(&mut CheckpointState)>;
        let mutations: Vec<Mutation> = vec![
            Box::new(|s| s.frames.clear()),
            Box::new(|s| s.frames[0].rows += 1),
            Box::new(|s| s.frames[0].head.1 = s.frames[0].cols + 1),
            Box::new(|s| s.frames[0].top.pop().map(|_| ()).unwrap_or(())),
            Box::new(|s| {
                if let Some(g) = &mut s.frames[0].grid {
                    g.rows_cache.pop();
                }
            }),
        ];
        for (i, mutate) in mutations.iter().enumerate() {
            let mut bad = state.clone();
            mutate(&mut bad);
            let err = align_resume(
                &a,
                &b,
                &scheme,
                bad,
                &AlignOptions::default(),
                &Metrics::new(),
            )
            .unwrap_err();
            assert!(
                matches!(err, AlignError::CorruptCheckpoint { .. }),
                "mutation {i}: got {err:?}"
            );
        }
    }

    #[test]
    fn registry_attached_run_exports_engine_counters() {
        use flsa_metrics::{names, Registry};
        let scheme = ScoringScheme::dna_default();
        let (a, b) = homologous_pair("t", &Alphabet::dna(), 300, 0.8, 17).unwrap();
        let reg = std::sync::Arc::new(Registry::new());
        let metrics = Metrics::new().with_registry(&reg);
        let opts = AlignOptions {
            registry: Some(reg.clone()),
            ..AlignOptions::default()
        };
        let cfg = FastLsaConfig::new(4, 256).with_threads(3);
        align_opts(&a, &b, &scheme, cfg, &opts, &metrics).unwrap();

        let snap = reg.snapshot();
        // DP-layer counters mirror the in-process metrics exactly.
        let dp = metrics.snapshot();
        assert_eq!(snap.counter(names::CELLS_TOTAL), Some(dp.cells_computed));
        assert_eq!(
            snap.counter(names::CELLS_BASE_CASE_TOTAL),
            Some(dp.cells_base_case)
        );
        assert_eq!(
            snap.counter(names::TRACEBACK_STEPS_TOTAL),
            Some(dp.traceback_steps)
        );
        // Engine-level state: blocks, depth, steps, phase back to idle.
        assert!(snap.counter(names::BLOCKS_FILLED_TOTAL).unwrap() > 0);
        assert!(snap.counter(names::SOLVER_STEPS_TOTAL).unwrap() > 0);
        assert!(snap.gauge(names::RECURSION_DEPTH_PEAK).unwrap() >= 1);
        assert_eq!(snap.gauge(names::PHASE), Some(names::PHASE_IDLE));
        assert_eq!(
            snap.gauge(names::RUN_CELLS_EXPECTED),
            Some((a.len() * b.len()) as i64)
        );
        // Governor peak tracked; wavefront occupancy recorded.
        assert!(snap.gauge(names::MEM_PEAK_BYTES).unwrap() > 0);
        assert!(snap.counter(names::TILES_TOTAL).unwrap() > 0);
        assert_eq!(snap.gauge(names::TILES_INFLIGHT), Some(0));
        // Registered lazily on the first degrade, so absent on a clean run.
        assert_eq!(snap.counter(names::DEGRADE_STEPS_TOTAL), None);
    }

    #[test]
    fn degradation_ladder_steps_are_counted() {
        use flsa_metrics::{names, Registry};
        let scheme = ScoringScheme::dna_default();
        let (a, b) = homologous_pair("t", &Alphabet::dna(), 200, 0.8, 23).unwrap();
        let reg = std::sync::Arc::new(Registry::new());
        // A budget too small for the initial base buffer but workable
        // further down the ladder forces at least one degrade step.
        let opts = AlignOptions {
            budget_bytes: Some(64 << 10),
            registry: Some(reg.clone()),
            ..AlignOptions::default()
        };
        let cfg = FastLsaConfig::new(4, 1 << 20);
        let reference =
            align_with(&a, &b, &scheme, FastLsaConfig::new(4, 256), &Metrics::new()).unwrap();
        let r = align_opts(&a, &b, &scheme, cfg, &opts, &Metrics::new()).unwrap();
        assert_eq!(r.score, reference.score);
        let snap = reg.snapshot();
        assert!(snap.counter(names::DEGRADE_STEPS_TOTAL).unwrap() >= 1);
        assert!(snap.counter(names::MEM_REFUSED_TOTAL).unwrap() >= 1);
    }

    #[test]
    fn batch_api_matches_single_pair_alignment() {
        let scheme = ScoringScheme::dna_default();
        let pairs: Vec<(Sequence, Sequence)> = (0..11)
            .map(|seed| homologous_pair("t", &Alphabet::dna(), 80 + seed * 7, 0.8, seed as u64).unwrap())
            .collect();
        let refs: Vec<(&Sequence, &Sequence)> = pairs.iter().map(|(a, b)| (a, b)).collect();
        let got = align_batch(&refs, &scheme, &AlignOptions::default(), &Metrics::new()).unwrap();
        assert_eq!(got.len(), pairs.len());
        for ((a, b), r) in pairs.iter().zip(&got) {
            let want = align(a, b, &scheme, &Metrics::new()).unwrap();
            assert_eq!(r.score, want.score);
            assert_eq!(r.path, want.path);
        }
    }

    #[test]
    fn batch_api_rejects_bad_alphabet_and_unavailable_kernel() {
        let scheme = ScoringScheme::dna_default();
        let p = Sequence::from_str("p", &Alphabet::protein(), "ACD").unwrap();
        let d = Sequence::from_str("d", scheme.alphabet(), "ACGT").unwrap();
        let err = align_batch(
            &[(&d, &p)],
            &scheme,
            &AlignOptions::default(),
            &Metrics::new(),
        )
        .unwrap_err();
        assert!(matches!(err, AlignError::AlphabetMismatch { .. }));
    }

    #[test]
    fn protein_scoring_matches_baselines() {
        let scheme = ScoringScheme::protein_default();
        let (a, b) = homologous_pair("t", &Alphabet::protein(), 350, 0.7, 77).unwrap();
        let metrics = Metrics::new();
        let nw = needleman_wunsch(&a, &b, &scheme, &metrics);
        let r = align_with(&a, &b, &scheme, FastLsaConfig::new(6, 512), &metrics).unwrap();
        assert_eq!(r.score, nw.score);
    }
}

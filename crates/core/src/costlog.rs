//! Execution trace of one FastLSA run, for schedule replay.
//!
//! The parallel experiments (E7/E8) need the *structure* of a run — which
//! fills happened at which sizes, how long the tracebacks were — so the
//! virtual-processor simulator can replay it under any `P` (DESIGN.md §2:
//! this machine has fewer cores than the paper's testbed). The sequential
//! solver records one [`CostEvent`] per fill/traceback; replay lives in
//! [`crate::model`].

/// One recorded step of a FastLSA run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostEvent {
    /// A Fill Cache step over an `rows × cols` rectangle split into
    /// `k_r × k_c` blocks (bottom-right block skipped).
    GridFill {
        /// Rectangle rows.
        rows: usize,
        /// Rectangle columns.
        cols: usize,
        /// Block rows.
        k_r: usize,
        /// Block columns.
        k_c: usize,
    },
    /// A Base Case full-matrix fill over an `rows × cols` rectangle.
    BaseFill {
        /// Rectangle rows.
        rows: usize,
        /// Rectangle columns.
        cols: usize,
    },
    /// A traceback of `steps` moves (always sequential, as in the paper).
    Trace {
        /// Path moves recovered.
        steps: u64,
    },
}

/// The ordered event trace of one run.
#[derive(Debug, Clone, Default)]
pub struct CostLog {
    /// Events in execution order.
    pub events: Vec<CostEvent>,
}

impl CostLog {
    /// Total DP cells filled according to the log (cross-check against
    /// [`flsa_dp::MetricsSnapshot::cells_computed`]).
    pub fn total_fill_cells(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match *e {
                CostEvent::GridFill {
                    rows,
                    cols,
                    k_r,
                    k_c,
                } => {
                    let area = rows as u64 * cols as u64;
                    // Bottom-right block is skipped; subtract its area.
                    let br_rows = (rows - rows * (k_r - 1) / k_r) as u64;
                    let br_cols = (cols - cols * (k_c - 1) / k_c) as u64;
                    area - br_rows * br_cols
                }
                CostEvent::BaseFill { rows, cols } => rows as u64 * cols as u64,
                CostEvent::Trace { .. } => 0,
            })
            .sum()
    }

    /// Total traceback steps.
    pub fn total_trace_steps(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match *e {
                CostEvent::Trace { steps } => steps,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let log = CostLog {
            events: vec![
                CostEvent::GridFill {
                    rows: 10,
                    cols: 10,
                    k_r: 2,
                    k_c: 2,
                },
                CostEvent::BaseFill { rows: 5, cols: 5 },
                CostEvent::Trace { steps: 7 },
                CostEvent::Trace { steps: 3 },
            ],
        };
        // GridFill: 100 - 5*5 = 75; BaseFill: 25.
        assert_eq!(log.total_fill_cells(), 100);
        assert_eq!(log.total_trace_steps(), 10);
    }
}

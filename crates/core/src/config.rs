//! FastLSA tuning parameters.
//!
//! The paper's central claim is that FastLSA *adapts to the amount of
//! space available*: the grid division factor `k` and the Base Case
//! buffer size `BM` trade memory for recomputation. [`FastLsaConfig`]
//! carries both, plus the parallel-execution knobs of §5.

use flsa_scoring::ScoringScheme;

use crate::error::ConfigError;

/// The largest sequence span `m + n` for which every intermediate of the
/// i32 DP kernels provably stays in range under `scheme`.
///
/// Derivation (mirrored bit-for-bit by the static audit's R10 overflow
/// certificate — `cargo run -p flsa-check --bin audit`): with
/// `S = max |substitution score|` and `G` the worst per-symbol gap
/// magnitude ([`flsa_scoring::GapModel::max_penalty_abs`]), every cell
/// satisfies `|H(i,j)| <= (i+j) * max(S, G)`, and the vectorized
/// two-pass kernels' u-domain intermediates `H(i,j) - j*gap` stay within
/// `span * (max(S,G) + G) + G`. Requiring
/// `span <= i32::MAX / (max(S,G) + G) - 1` therefore covers both, with
/// slack for the boundary ramp.
pub fn max_safe_span(scheme: &ScoringScheme) -> usize {
    let s = i64::from(scheme.matrix().max_score().abs())
        .max(i64::from(scheme.matrix().min_score().abs()))
        .max(1);
    let g = scheme.gap().max_penalty_abs().max(1);
    let unit = s.max(g) + g;
    usize::try_from((i64::from(i32::MAX) / unit - 1).max(0)).unwrap_or(usize::MAX)
}

/// Parallel execution parameters (paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads `P` (1 = sequential execution through the parallel
    /// code path).
    pub threads: usize,
    /// Tile subdivision factor `f`: every Fill Cache step tiles each grid
    /// block `f × f`, giving an `R × C = k·f × k·f` tile wavefront
    /// (Fig. 13's `u = v = f`). Larger `f` improves load balance at the
    /// cost of more synchronization and tile-boundary storage.
    pub tiles_per_block: usize,
}

impl ParallelConfig {
    /// A sensible default for `threads` workers: `f` chosen so each
    /// wavefront has roughly `2·P` tiles in the saturated phase.
    /// `threads == 0` is rejected by [`FastLsaConfig::validate`].
    pub fn for_threads(threads: usize) -> Self {
        ParallelConfig {
            threads,
            tiles_per_block: (2 * threads).div_ceil(8).max(1),
        }
    }
}

/// FastLSA configuration (paper §3: `k`, `BM`; §5: parallelism).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastLsaConfig {
    /// Grid division factor: each general-case rectangle is split into
    /// `k × k` blocks (`k ≥ 2`). Larger `k` stores more grid lines and
    /// recomputes less (the `(k/(k−1))²` factor of Theorem 2).
    pub k: usize,
    /// Base Case buffer size `BM` in DPM entries: sub-problems with
    /// `(rows+1)·(cols+1) ≤ base_cells` are solved with the full-matrix
    /// algorithm. The buffer is allocated once and reused, as in the
    /// paper.
    pub base_cells: usize,
    /// Parallel execution; `None` = the sequential algorithm of §3.
    pub parallel: Option<ParallelConfig>,
}

impl Default for FastLsaConfig {
    /// `k = 8` (the paper's experiments find moderate `k` best), a 1 Mi-entry
    /// (4 MiB) base-case buffer — roughly a processor-cache-sized footprint,
    /// matching the paper's guidance to size `BM` for cache — and
    /// sequential execution.
    fn default() -> Self {
        FastLsaConfig {
            k: 8,
            base_cells: 1 << 20,
            parallel: None,
        }
    }
}

impl FastLsaConfig {
    /// Sequential configuration with explicit `k` and base buffer. The
    /// value is not checked here; the `align*` entry points (and
    /// [`FastLsaConfig::validate`]) reject invalid configurations with
    /// [`ConfigError`] instead of panicking.
    pub fn new(k: usize, base_cells: usize) -> Self {
        FastLsaConfig {
            k,
            base_cells,
            parallel: None,
        }
    }

    /// Adds parallel execution with `threads` workers (default tiling).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.parallel = Some(ParallelConfig::for_threads(threads));
        self
    }

    /// Adds parallel execution with explicit tiling.
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = Some(parallel);
        self
    }

    /// Checks invariants: `k ≥ 2`, and a parallel config (when present)
    /// has at least one thread and one tile per block.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.k < 2 {
            return Err(ConfigError::KTooSmall { k: self.k });
        }
        if let Some(p) = self.parallel {
            if p.threads < 1 {
                return Err(ConfigError::ZeroThreads);
            }
            if p.tiles_per_block < 1 {
                return Err(ConfigError::ZeroTiles);
            }
        }
        Ok(())
    }

    /// Checks [`FastLsaConfig::validate`]'s structural invariants plus
    /// the run-specific i32-overflow bound: the span `m + n` must not
    /// exceed [`max_safe_span`] for `scheme`, or a pathological input
    /// could wrap cell scores and return a silently wrong alignment.
    pub fn validate_run(
        &self,
        scheme: &ScoringScheme,
        m: usize,
        n: usize,
    ) -> Result<(), ConfigError> {
        self.validate()?;
        let span = m.saturating_add(n);
        let max_span = max_safe_span(scheme);
        if span > max_span {
            return Err(ConfigError::ScoreOverflow { span, max_span });
        }
        Ok(())
    }

    /// The paper's memory-adaptive configuration (§3): given a memory
    /// budget of `bytes` for auxiliary storage and the problem size,
    /// choose `k` and `BM`.
    ///
    /// * If the whole DPM fits, FastLSA degenerates to the FM algorithm
    ///   (one base case covering everything) — the paper's
    ///   "`RM > m×n` ⇒ use a full matrix algorithm".
    /// * Otherwise the budget is split between the Base Case buffer and
    ///   the grid caches, choosing the largest `k ≤ 64` whose grid lines
    ///   fit (grid lines across all recursion levels total at most
    ///   `2·(k−1)·(m+n+2)` entries; the factor 2 over-covers the
    ///   geometric level sum).
    pub fn for_memory(bytes: usize, m: usize, n: usize) -> Self {
        let cell_budget = (bytes / std::mem::size_of::<i32>()).max(64);
        let whole = (m + 1).saturating_mul(n + 1);
        if whole <= cell_budget {
            return FastLsaConfig {
                k: 2,
                base_cells: whole,
                parallel: None,
            };
        }
        let grid_budget = cell_budget / 2;
        let per_k_unit = 2 * (m + n + 2); // entries per unit of (k-1), all levels
        let mut k = 2;
        for cand in 3..=64 {
            if (cand - 1) * per_k_unit <= grid_budget {
                k = cand;
            } else {
                break;
            }
        }
        // k = 2 is the structural minimum: its grid lines may exceed a
        // very small budget, in which case base_cells shrinks to the floor
        // and actual use is the k = 2 minimum footprint.
        let grid_cells = (k - 1) * per_k_unit;
        let base_cells = cell_budget.saturating_sub(grid_cells).max(64);
        FastLsaConfig {
            k,
            base_cells,
            parallel: None,
        }
    }

    /// Worker thread count (1 when sequential).
    pub fn threads(&self) -> usize {
        self.parallel.map(|p| p.threads).unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sequential_k8() {
        let c = FastLsaConfig::default();
        assert_eq!(c.k, 8);
        assert!(c.parallel.is_none());
        assert_eq!(c.threads(), 1);
        c.validate().unwrap();
    }

    #[test]
    fn k_below_two_rejected() {
        let err = FastLsaConfig::new(1, 1024).validate().unwrap_err();
        assert_eq!(err, ConfigError::KTooSmall { k: 1 });
        assert!(err.to_string().contains("k must be >= 2"));
    }

    #[test]
    fn zero_threads_and_zero_tiles_rejected() {
        let c = FastLsaConfig::default().with_parallel(ParallelConfig {
            threads: 0,
            tiles_per_block: 1,
        });
        assert_eq!(c.validate().unwrap_err(), ConfigError::ZeroThreads);
        let c = FastLsaConfig::default().with_parallel(ParallelConfig {
            threads: 2,
            tiles_per_block: 0,
        });
        assert_eq!(c.validate().unwrap_err(), ConfigError::ZeroTiles);
    }

    #[test]
    fn for_memory_degenerates_to_fm_when_everything_fits() {
        let c = FastLsaConfig::for_memory(100 << 20, 1000, 1000);
        assert_eq!(c.base_cells, 1001 * 1001);
    }

    #[test]
    fn for_memory_scales_k_with_budget() {
        let m = 100_000;
        let n = 100_000;
        let tight = FastLsaConfig::for_memory(4 << 20, m, n);
        let roomy = FastLsaConfig::for_memory(256 << 20, m, n);
        assert!(tight.k >= 2);
        assert!(
            roomy.k > tight.k,
            "roomy k {} vs tight k {}",
            roomy.k,
            tight.k
        );
        assert!(roomy.base_cells > tight.base_cells);
        // Neither fits the whole DPM.
        assert!(tight.base_cells < (m + 1) * (n + 1));
    }

    #[test]
    fn for_memory_budget_is_respected() {
        let m = 50_000;
        let n = 50_000;
        // The structural floor: k = 2 grid lines plus the minimum buffer.
        let floor_bytes = (2 * (m + n + 2) + 64) * 4;
        for bytes in [1 << 20, 16 << 20, 64 << 20] {
            let c = FastLsaConfig::for_memory(bytes, m, n);
            let grid_entries = 2 * (c.k - 1) * (m + n + 2);
            let total_bytes = (c.base_cells + grid_entries) * 4;
            assert!(
                total_bytes <= bytes.max(floor_bytes) + (64 * 4),
                "budget {bytes} exceeded: {total_bytes}"
            );
        }
    }

    #[test]
    fn parallel_defaults_scale_tiles_with_threads() {
        let p1 = ParallelConfig::for_threads(1);
        let p16 = ParallelConfig::for_threads(16);
        assert_eq!(p1.tiles_per_block, 1);
        assert!(p16.tiles_per_block >= 2);
    }
}

//! The Grid Cache (paper §3, Figure 3c–f).
//!
//! In the general case FastLSA divides a rectangle into `k × k` blocks
//! and stores the DP values along the internal grid lines: `k−1` full
//! rows and `k−1` full columns. Together with the rectangle's input
//! boundary these give every block its `cacheRow`/`cacheColumn`.

/// Near-equal partition of `len` residues into `k` segments:
/// `bounds[i] = ⌊len·i/k⌋`, guaranteeing each segment is non-empty when
/// `len ≥ k`.
pub fn partition(len: usize, k: usize) -> Vec<usize> {
    (0..=k).map(|i| len * i / k).collect()
}

/// Locates the partition segment containing coordinate `i` (`1 ≤ i ≤ len`):
/// returns `s` with `bounds[s] < i ≤ bounds[s+1]`.
pub fn segment_of(bounds: &[usize], i: usize) -> usize {
    debug_assert!(i >= 1 && i <= *bounds.last().unwrap());
    bounds.partition_point(|&x| x < i) - 1
}

/// One recursion level's grid cache.
#[derive(Debug)]
pub struct Grid {
    /// Row cut points, length `k_r + 1` (`[0, …, rows]`).
    pub row_bounds: Vec<usize>,
    /// Column cut points, length `k_c + 1`.
    pub col_bounds: Vec<usize>,
    /// `rows_cache[s]` holds the DP values along grid row
    /// `row_bounds[s+1]`, full width (`cols + 1`); `s < k_r − 1`.
    pub rows_cache: Vec<Vec<i32>>,
    /// `cols_cache[t]` holds the DP values along grid column
    /// `col_bounds[t+1]`, full height (`rows + 1`); `t < k_c − 1`.
    pub cols_cache: Vec<Vec<i32>>,
}

impl Grid {
    /// Allocates the grid for an `rows × cols` rectangle split into
    /// `k_r × k_c` blocks.
    pub fn new(rows: usize, cols: usize, k_r: usize, k_c: usize) -> Self {
        debug_assert!(k_r >= 2 && k_c >= 2);
        debug_assert!(rows >= k_r && cols >= k_c, "every block must be non-empty");
        Grid {
            row_bounds: partition(rows, k_r),
            col_bounds: partition(cols, k_c),
            rows_cache: vec![vec![0; cols + 1]; k_r - 1],
            cols_cache: vec![vec![0; rows + 1]; k_c - 1],
        }
    }

    /// Number of block rows.
    pub fn k_r(&self) -> usize {
        self.row_bounds.len() - 1
    }

    /// Number of block columns.
    pub fn k_c(&self) -> usize {
        self.col_bounds.len() - 1
    }

    /// DPM entries of cache storage (for the Theorem 3 space accounting).
    pub fn cache_entries(&self) -> usize {
        self.rows_cache.iter().map(Vec::len).sum::<usize>()
            + self.cols_cache.iter().map(Vec::len).sum::<usize>()
    }

    /// The `cacheRow` of block `(s, t)`: DP values along the block's top
    /// edge. For `s == 0` the caller must use the rectangle's input top
    /// boundary instead (the grid does not store it), hence the `Option`.
    pub fn cached_row(&self, s: usize, t: usize) -> Option<&[i32]> {
        if s == 0 {
            return None;
        }
        let c0 = self.col_bounds[t];
        let c1 = self.col_bounds[t + 1];
        Some(&self.rows_cache[s - 1][c0..=c1])
    }

    /// The `cacheColumn` of block `(s, t)`; `None` for `t == 0` (use the
    /// input left boundary).
    pub fn cached_col(&self, s: usize, t: usize) -> Option<&[i32]> {
        if t == 0 {
            return None;
        }
        let r0 = self.row_bounds[s];
        let r1 = self.row_bounds[s + 1];
        Some(&self.cols_cache[t - 1][r0..=r1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_near_equal_and_complete() {
        let b = partition(10, 3);
        assert_eq!(b, vec![0, 3, 6, 10]);
        let b = partition(9, 3);
        assert_eq!(b, vec![0, 3, 6, 9]);
        // Every segment non-empty when len >= k.
        for len in 2..50 {
            for k in 2..=len {
                let b = partition(len, k);
                assert!(b.windows(2).all(|w| w[1] > w[0]), "len={len} k={k}");
                assert_eq!(*b.last().unwrap(), len);
            }
        }
    }

    #[test]
    fn segment_of_locates_blocks() {
        let b = partition(12, 4); // [0, 3, 6, 9, 12]
        assert_eq!(segment_of(&b, 1), 0);
        assert_eq!(segment_of(&b, 3), 0);
        assert_eq!(segment_of(&b, 4), 1);
        assert_eq!(segment_of(&b, 12), 3);
    }

    #[test]
    fn grid_storage_shape_matches_theorem_3() {
        // (k-1) rows of (cols+1) plus (k-1) cols of (rows+1).
        let g = Grid::new(100, 80, 4, 4);
        assert_eq!(g.cache_entries(), 3 * 81 + 3 * 101);
        assert_eq!(g.k_r(), 4);
        assert_eq!(g.k_c(), 4);
    }

    #[test]
    fn cached_row_col_slices_cover_block_edges() {
        let g = Grid::new(12, 8, 3, 2);
        // Block (1, 1): rows 4..8, cols 4..8.
        let r = g.cached_row(1, 1).unwrap();
        assert_eq!(r.len(), 8 - 4 + 1);
        let c = g.cached_col(1, 1).unwrap();
        assert_eq!(c.len(), 8 - 4 + 1);
        assert!(g.cached_row(0, 1).is_none());
        assert!(g.cached_col(1, 0).is_none());
    }
}

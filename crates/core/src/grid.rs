//! The Grid Cache (paper §3, Figure 3c–f).
//!
//! In the general case FastLSA divides a rectangle into `k × k` blocks
//! and stores the DP values along the internal grid lines: `k−1` full
//! rows and `k−1` full columns. Together with the rectangle's input
//! boundary these give every block its `cacheRow`/`cacheColumn`.

use crate::error::AlignError;
use crate::governor::MemoryGovernor;

/// Near-equal partition of `len` residues into `k` segments:
/// `bounds[i] = ⌊len·i/k⌋`, guaranteeing each segment is non-empty when
/// `len ≥ k`.
pub fn partition(len: usize, k: usize) -> Vec<usize> {
    (0..=k).map(|i| len * i / k).collect()
}

/// Locates the partition segment containing coordinate `i` (`1 ≤ i ≤ len`):
/// returns `s` with `bounds[s] < i ≤ bounds[s+1]`.
pub fn segment_of(bounds: &[usize], i: usize) -> usize {
    debug_assert!(i >= 1 && bounds.last().is_some_and(|&last| i <= last));
    bounds.partition_point(|&x| x < i) - 1
}

/// One recursion level's grid cache.
#[derive(Debug)]
pub struct Grid {
    /// Row cut points, length `k_r + 1` (`[0, …, rows]`).
    pub row_bounds: Vec<usize>,
    /// Column cut points, length `k_c + 1`.
    pub col_bounds: Vec<usize>,
    /// `rows_cache[s]` holds the DP values along grid row
    /// `row_bounds[s+1]`, full width (`cols + 1`); `s < k_r − 1`.
    pub rows_cache: Vec<Vec<i32>>,
    /// `cols_cache[t]` holds the DP values along grid column
    /// `col_bounds[t+1]`, full height (`rows + 1`); `t < k_c − 1`.
    pub cols_cache: Vec<Vec<i32>>,
}

impl Grid {
    /// Allocates the grid for an `rows × cols` rectangle split into
    /// `k_r × k_c` blocks, with unbounded (but still `try_reserve`-based)
    /// allocation.
    pub fn new(rows: usize, cols: usize, k_r: usize, k_c: usize) -> Self {
        match Grid::try_new(rows, cols, k_r, k_c, &MemoryGovernor::new(None)) {
            Ok(g) => g,
            // flsa-check: allow(panic) — only reachable on allocator
            // exhaustion with no budget, where Vec::new would abort anyway.
            Err(e) => panic!("grid allocation failed: {e}"),
        }
    }

    /// Fallibly allocates the grid through the memory governor: each cache
    /// line is charged against the budget and reserved with `try_reserve`,
    /// so an oversized grid surfaces as
    /// [`AlignError::AllocFailed`](crate::AlignError::AllocFailed) instead
    /// of an abort.
    pub fn try_new(
        rows: usize,
        cols: usize,
        k_r: usize,
        k_c: usize,
        governor: &MemoryGovernor,
    ) -> Result<Self, AlignError> {
        debug_assert!(k_r >= 2 && k_c >= 2);
        debug_assert!(rows >= k_r && cols >= k_c, "every block must be non-empty");
        let mut rows_cache = Vec::with_capacity(k_r - 1);
        let mut cols_cache = Vec::with_capacity(k_c - 1);
        let undo = |grid_rows: &Vec<Vec<i32>>, grid_cols: &Vec<Vec<i32>>| {
            for v in grid_rows.iter().chain(grid_cols.iter()) {
                governor.release_i32(v.len());
            }
        };
        for _ in 0..k_r - 1 {
            match governor.try_alloc_i32(cols + 1, "grid row cache") {
                Ok(v) => rows_cache.push(v),
                Err(e) => {
                    undo(&rows_cache, &cols_cache);
                    return Err(e);
                }
            }
        }
        for _ in 0..k_c - 1 {
            match governor.try_alloc_i32(rows + 1, "grid column cache") {
                Ok(v) => cols_cache.push(v),
                Err(e) => {
                    undo(&rows_cache, &cols_cache);
                    return Err(e);
                }
            }
        }
        Ok(Grid {
            row_bounds: partition(rows, k_r),
            col_bounds: partition(cols, k_c),
            rows_cache,
            cols_cache,
        })
    }

    /// Rebuilds a grid from a checkpoint snapshot, charging the cache
    /// lines against the governor exactly as [`Grid::try_new`] does. The
    /// caller ([`crate::align_resume`]) validates the snapshot's shape
    /// first; this only accounts for the memory.
    pub fn from_parts(
        state: crate::checkpoint::GridState,
        governor: &MemoryGovernor,
    ) -> Result<Self, AlignError> {
        let grid = Grid {
            row_bounds: state.row_bounds,
            col_bounds: state.col_bounds,
            rows_cache: state.rows_cache,
            cols_cache: state.cols_cache,
        };
        governor.reserve_i32(grid.cache_entries(), "resumed grid cache")?;
        Ok(grid)
    }

    /// Number of block rows.
    pub fn k_r(&self) -> usize {
        self.row_bounds.len() - 1
    }

    /// Number of block columns.
    pub fn k_c(&self) -> usize {
        self.col_bounds.len() - 1
    }

    /// DPM entries of cache storage (for the Theorem 3 space accounting).
    pub fn cache_entries(&self) -> usize {
        self.rows_cache.iter().map(Vec::len).sum::<usize>()
            + self.cols_cache.iter().map(Vec::len).sum::<usize>()
    }

    /// The `cacheRow` of block `(s, t)`: DP values along the block's top
    /// edge. For `s == 0` the caller must use the rectangle's input top
    /// boundary instead (the grid does not store it), hence the `Option`.
    pub fn cached_row(&self, s: usize, t: usize) -> Option<&[i32]> {
        if s == 0 {
            return None;
        }
        let c0 = self.col_bounds[t];
        let c1 = self.col_bounds[t + 1];
        Some(&self.rows_cache[s - 1][c0..=c1])
    }

    /// The `cacheColumn` of block `(s, t)`; `None` for `t == 0` (use the
    /// input left boundary).
    pub fn cached_col(&self, s: usize, t: usize) -> Option<&[i32]> {
        if t == 0 {
            return None;
        }
        let r0 = self.row_bounds[s];
        let r1 = self.row_bounds[s + 1];
        Some(&self.cols_cache[t - 1][r0..=r1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_near_equal_and_complete() {
        let b = partition(10, 3);
        assert_eq!(b, vec![0, 3, 6, 10]);
        let b = partition(9, 3);
        assert_eq!(b, vec![0, 3, 6, 9]);
        // Every segment non-empty when len >= k.
        for len in 2..50 {
            for k in 2..=len {
                let b = partition(len, k);
                assert!(b.windows(2).all(|w| w[1] > w[0]), "len={len} k={k}");
                assert_eq!(*b.last().unwrap(), len);
            }
        }
    }

    #[test]
    fn segment_of_locates_blocks() {
        let b = partition(12, 4); // [0, 3, 6, 9, 12]
        assert_eq!(segment_of(&b, 1), 0);
        assert_eq!(segment_of(&b, 3), 0);
        assert_eq!(segment_of(&b, 4), 1);
        assert_eq!(segment_of(&b, 12), 3);
    }

    #[test]
    fn grid_storage_shape_matches_theorem_3() {
        // (k-1) rows of (cols+1) plus (k-1) cols of (rows+1).
        let g = Grid::new(100, 80, 4, 4);
        assert_eq!(g.cache_entries(), 3 * 81 + 3 * 101);
        assert_eq!(g.k_r(), 4);
        assert_eq!(g.k_c(), 4);
    }

    #[test]
    fn try_new_respects_the_budget_and_rolls_back() {
        // 3 rows of 81 + 3 cols of 101 entries = 546 entries > 500.
        let g = MemoryGovernor::new(Some(500 * 4));
        let err = Grid::try_new(100, 80, 4, 4, &g).unwrap_err();
        assert!(matches!(err, AlignError::AllocFailed { .. }));
        // Partial allocations were released.
        assert_eq!(g.used_bytes(), 0);
        // A roomier budget succeeds and stays charged while alive.
        let g = MemoryGovernor::new(Some(600 * 4));
        let grid = Grid::try_new(100, 80, 4, 4, &g).unwrap();
        assert_eq!(g.used_bytes(), grid.cache_entries() * 4);
    }

    #[test]
    fn cached_row_col_slices_cover_block_edges() {
        let g = Grid::new(12, 8, 3, 2);
        // Block (1, 1): rows 4..8, cols 4..8.
        let r = g.cached_row(1, 1).unwrap();
        assert_eq!(r.len(), 8 - 4 + 1);
        let c = g.cached_col(1, 1).unwrap();
        assert_eq!(c.len(), 8 - 4 + 1);
        assert!(g.cached_row(0, 1).is_none());
        assert!(g.cached_col(1, 0).is_none());
    }
}

//! Checkpoint/resume of an in-flight alignment (DESIGN.md §10).
//!
//! FastLSA's live state is small by construction (paper Theorem 2): the
//! recursion stack plus one grid cache per level is `O(k·(m+n))` cells,
//! and the Base Case buffer never needs to be persisted because base
//! cases complete atomically between checkpoints. [`CheckpointState`] is
//! a plain-data snapshot of exactly that surface, captured by the solver
//! at *consistent points* — the top of its drive loop, where every grid
//! fill and base case has either fully completed or not started.
//!
//! The core crate only defines the state and the [`CheckpointSink`]
//! hook; durable serialization (CRC32 framing, atomic rename,
//! double-buffering) lives in the `flsa-checkpoint` crate so the engine
//! stays free of I/O.

use std::sync::Arc;

use flsa_dp::Move;

use crate::config::FastLsaConfig;

/// Snapshot of one suspended recursion frame.
///
/// Coordinates are *absolute* (relative to the whole `m × n` problem),
/// so a frame is self-describing: `a[r0..r0+rows]` × `b[c0..c0+cols]`
/// with the path head at local `(head.0, head.1)` and the input
/// boundaries `top`/`left` captured by value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameState {
    /// First row of the rectangle in absolute coordinates.
    pub r0: usize,
    /// First column of the rectangle in absolute coordinates.
    pub c0: usize,
    /// Rectangle height in residues.
    pub rows: usize,
    /// Rectangle width in residues.
    pub cols: usize,
    /// Path head in local coordinates (`head.0 <= rows`,
    /// `head.1 <= cols`).
    pub head: (usize, usize),
    /// Input top boundary, length `cols + 1`.
    pub top: Vec<i32>,
    /// Input left boundary, length `rows + 1`.
    pub left: Vec<i32>,
    /// The frame's filled grid cache, or `None` if fillGridCache has not
    /// run yet for this rectangle.
    pub grid: Option<GridState>,
}

/// Snapshot of one frame's grid cache (the `k−1` interior rows and
/// columns of DP values).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridState {
    /// Row cut points, length `k_r + 1`, `[0, …, rows]`.
    pub row_bounds: Vec<usize>,
    /// Column cut points, length `k_c + 1`, `[0, …, cols]`.
    pub col_bounds: Vec<usize>,
    /// `k_r − 1` cached rows, each of length `cols + 1`.
    pub rows_cache: Vec<Vec<i32>>,
    /// `k_c − 1` cached columns, each of length `rows + 1`.
    pub cols_cache: Vec<Vec<i32>>,
}

/// Everything needed to continue an interrupted run: configuration,
/// progress counters, the partial optimal path, and the recursion stack
/// outside-in (`frames[0]` is the whole problem).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointState {
    /// Configuration the run was executing under when captured (the
    /// ladder may have degraded it below the requested one).
    pub config: FastLsaConfig,
    /// Completed grid blocks (fill + base-case units), the checkpoint
    /// cadence's progress measure.
    pub blocks_done: u64,
    /// How many times this lineage has been resumed (0 = fresh run).
    pub generation: u32,
    /// The partial optimal path in prepend order (path end toward path
    /// start), as captured from
    /// [`PathBuilder::rev_moves`](flsa_dp::PathBuilder::rev_moves).
    pub rev_moves: Vec<Move>,
    /// The suspended recursion stack, outermost first. Non-empty for any
    /// snapshot of an unfinished run.
    pub frames: Vec<FrameState>,
}

impl CheckpointState {
    /// Structurally validates the snapshot against problem dimensions
    /// `m × n`. Returns a human-readable reason on the first violation;
    /// a state that passes can be rebuilt and driven without panicking.
    pub fn validate(&self, m: usize, n: usize) -> Result<(), String> {
        if self.frames.is_empty() {
            return Err("no recursion frames".into());
        }
        let root = &self.frames[0];
        if root.r0 != 0 || root.c0 != 0 || root.rows != m || root.cols != n {
            return Err(format!(
                "root frame {}x{} at ({},{}) does not cover the {m}x{n} problem",
                root.rows, root.cols, root.r0, root.c0
            ));
        }
        for (idx, f) in self.frames.iter().enumerate() {
            f.validate(idx).map_err(|e| format!("frame {idx}: {e}"))?;
        }
        for w in self.frames.windows(2) {
            let (p, c) = (&w[0], &w[1]);
            if c.r0 < p.r0
                || c.c0 < p.c0
                || c.r0 + c.rows > p.r0 + p.rows
                || c.c0 + c.cols > p.c0 + p.cols
            {
                return Err("child frame escapes its parent rectangle".into());
            }
            if p.grid.is_none() {
                return Err("interior frame has no grid cache".into());
            }
        }
        Ok(())
    }
}

impl FrameState {
    fn validate(&self, idx: usize) -> Result<(), String> {
        if idx > 0 && (self.rows == 0 || self.cols == 0) {
            return Err("degenerate non-root rectangle".into());
        }
        if self.head.0 > self.rows || self.head.1 > self.cols {
            return Err(format!(
                "head ({},{}) outside the {}x{} rectangle",
                self.head.0, self.head.1, self.rows, self.cols
            ));
        }
        if self.top.len() != self.cols + 1 || self.left.len() != self.rows + 1 {
            return Err("boundary length does not match the rectangle".into());
        }
        let Some(g) = &self.grid else { return Ok(()) };
        for (bounds, len, what) in [
            (&g.row_bounds, self.rows, "row"),
            (&g.col_bounds, self.cols, "column"),
        ] {
            if bounds.len() < 3
                || bounds[0] != 0
                || *bounds.last().unwrap_or(&0) != len
                || bounds.windows(2).any(|w| w[1] <= w[0])
            {
                return Err(format!("malformed grid {what} bounds"));
            }
        }
        if g.rows_cache.len() != g.row_bounds.len() - 2
            || g.cols_cache.len() != g.col_bounds.len() - 2
            || g.rows_cache.iter().any(|r| r.len() != self.cols + 1)
            || g.cols_cache.iter().any(|c| c.len() != self.rows + 1)
        {
            return Err("grid cache shape does not match its bounds".into());
        }
        Ok(())
    }
}

/// Where snapshots go. Implemented durably (atomic file writes) by
/// `flsa-checkpoint`; test harnesses keep them in memory.
pub trait CheckpointSink: Send + Sync {
    /// Persists one consistent snapshot; returns the serialized size in
    /// bytes (for the trace event). An `Err` aborts the run with
    /// [`AlignError::CheckpointSave`](crate::AlignError::CheckpointSave)
    /// — a sink that cannot write is a failed durability contract, not
    /// something to ignore silently.
    fn save(&self, state: &CheckpointState) -> Result<u64, String>;

    /// Called when the degradation ladder retries the run, so durable
    /// snapshots can carry the degrade history across process death.
    fn note_degrade(&self, reason: &'static str, rung: u32, config: &FastLsaConfig) {
        let _ = (reason, rung, config);
    }
}

/// How often (and where) the solver checkpoints.
#[derive(Clone)]
pub struct CheckpointPolicy {
    /// Snapshot after every `every_blocks` newly completed grid blocks
    /// (clamped to at least 1). Cancellation additionally forces a final
    /// snapshot regardless of cadence.
    pub every_blocks: u64,
    /// Destination for snapshots.
    pub sink: Arc<dyn CheckpointSink>,
}

impl CheckpointPolicy {
    pub fn new(every_blocks: u64, sink: Arc<dyn CheckpointSink>) -> Self {
        CheckpointPolicy { every_blocks, sink }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_state() -> CheckpointState {
        CheckpointState {
            config: FastLsaConfig::default(),
            blocks_done: 0,
            generation: 0,
            rev_moves: vec![],
            frames: vec![FrameState {
                r0: 0,
                c0: 0,
                rows: 4,
                cols: 6,
                head: (4, 6),
                top: vec![0; 7],
                left: vec![0; 5],
                grid: None,
            }],
        }
    }

    #[test]
    fn valid_state_passes() {
        assert_eq!(flat_state().validate(4, 6), Ok(()));
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let s = flat_state();
        assert!(s.validate(5, 6).is_err());
        assert!(s.validate(4, 7).is_err());
    }

    #[test]
    fn structural_corruption_is_rejected() {
        let mut s = flat_state();
        s.frames[0].head = (5, 6); // outside the rectangle
        assert!(s.validate(4, 6).is_err());

        let mut s = flat_state();
        s.frames[0].top.pop();
        assert!(s.validate(4, 6).is_err());

        let mut s = flat_state();
        s.frames.clear();
        assert!(s.validate(4, 6).is_err());
    }

    #[test]
    fn grid_shape_is_checked() {
        let mut s = flat_state();
        s.frames[0].grid = Some(GridState {
            row_bounds: vec![0, 2, 4],
            col_bounds: vec![0, 3, 6],
            rows_cache: vec![vec![0; 7]],
            cols_cache: vec![vec![0; 5]],
        });
        assert_eq!(s.validate(4, 6), Ok(()));

        // Non-monotone bounds.
        if let Some(g) = &mut s.frames[0].grid {
            g.row_bounds = vec![0, 3, 2, 4];
        }
        assert!(s.validate(4, 6).is_err());

        // Cache line with the wrong width.
        let mut s = flat_state();
        s.frames[0].grid = Some(GridState {
            row_bounds: vec![0, 2, 4],
            col_bounds: vec![0, 3, 6],
            rows_cache: vec![vec![0; 6]],
            cols_cache: vec![vec![0; 5]],
        });
        assert!(s.validate(4, 6).is_err());
    }

    #[test]
    fn child_must_nest_inside_parent() {
        let mut s = flat_state();
        s.frames[0].grid = Some(GridState {
            row_bounds: vec![0, 2, 4],
            col_bounds: vec![0, 3, 6],
            rows_cache: vec![vec![0; 7]],
            cols_cache: vec![vec![0; 5]],
        });
        s.frames.push(FrameState {
            r0: 2,
            c0: 3,
            rows: 3, // escapes: 2 + 3 > 4
            cols: 3,
            head: (3, 3),
            top: vec![0; 4],
            left: vec![0; 4],
            grid: None,
        });
        assert!(s.validate(4, 6).is_err());
        if let Some(f) = s.frames.last_mut() {
            f.rows = 2;
            f.left = vec![0; 3];
            f.head = (2, 3);
        }
        assert_eq!(s.validate(4, 6), Ok(()));
    }
}

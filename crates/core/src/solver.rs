//! The FastLSA recursion (paper Figure 2).
//!
//! Invariant maintained by [`Solver::solve`]: the path head enters a
//! sub-problem on its **bottom row or right column** and leaves on its
//! **top row or left column**. The paper's prose puts the initial head at
//! the bottom-right corner; after the first sub-recursion the head sits
//! anywhere on the next block's bottom/right edge, so the implementation
//! uses the general invariant throughout (DESIGN.md §6).

use flsa_dp::kernel::{fill_full_reusing, fill_last_row_col};
use flsa_dp::traceback::trace_from;
use flsa_dp::{AlignResult, Metrics, PathBuilder};
use flsa_scoring::ScoringScheme;
use flsa_seq::Sequence;
use flsa_trace::{EventKind, Recorder, SpanKind};

use crate::config::FastLsaConfig;
use crate::costlog::{CostEvent, CostLog};
use crate::error::AlignError;
use crate::governor::{AlignOptions, RunCtx};
use crate::grid::{segment_of, Grid};
use crate::parallel;

/// One FastLSA run's mutable state: configuration, reusable buffers, and
/// the execution trace.
pub(crate) struct Solver<'s> {
    pub scheme: &'s ScoringScheme,
    pub config: FastLsaConfig,
    pub metrics: &'s Metrics,
    /// The pre-allocated Base Case buffer (paper: "BM units of memory are
    /// reserved"), recycled across base-case solves.
    base_storage: Vec<i32>,
    /// Scratch for discarded block outputs during sequential grid fills.
    scratch_row: Vec<i32>,
    scratch_col: Vec<i32>,
    /// Persistent worker pool for parallel fills (spawned once per run,
    /// as in the paper's implementation).
    pub(crate) pool: Option<flsa_wavefront::WorkerPool>,
    /// Execution trace for schedule replay.
    pub log: CostLog,
    /// Current depth in the recursion tree (0 = whole problem), recorded
    /// on trace spans.
    depth: u32,
    /// Fallible-execution context: memory governor, cancellation,
    /// fault-injection hooks.
    pub(crate) ctx: RunCtx,
}

impl<'s> Solver<'s> {
    /// Builds a solver. The caller (`align_opts`) is responsible for
    /// validating `config` first.
    pub fn new(
        scheme: &'s ScoringScheme,
        config: FastLsaConfig,
        metrics: &'s Metrics,
        opts: &AlignOptions,
    ) -> Self {
        let pool =
            (config.threads() > 1).then(|| flsa_wavefront::WorkerPool::new(config.threads()));
        Solver {
            scheme,
            config,
            metrics,
            base_storage: Vec::new(),
            scratch_row: Vec::new(),
            scratch_col: Vec::new(),
            pool,
            log: CostLog::default(),
            depth: 0,
            ctx: RunCtx::from_options(opts),
        }
    }

    /// The attached trace recorder, if any. Detached from `&mut self`
    /// borrows because `metrics` is itself a shared reference.
    #[inline]
    pub(crate) fn recorder(&self) -> Option<&'s Recorder> {
        self.metrics.recorder()
    }

    /// Records one recursion span if tracing is on. `k_r`/`k_c` are 0 for
    /// base cases and tracebacks.
    #[inline]
    fn record_span(
        &self,
        started_ns: Option<u64>,
        kind: SpanKind,
        rows: usize,
        cols: usize,
        k_r: usize,
        k_c: usize,
    ) {
        if let (Some(r), Some(start)) = (self.recorder(), started_ns) {
            r.record(
                start,
                r.now_ns(),
                EventKind::Span {
                    kind,
                    depth: self.depth,
                    rows: rows as u64,
                    cols: cols as u64,
                    k_r: k_r as u32,
                    k_c: k_c as u32,
                    cells: rows as u64 * cols as u64,
                },
            );
        }
    }

    /// Aligns two sequences, returning the optimal score and path, or a
    /// structured error (bad alphabet, refused allocation, cancellation,
    /// worker panic). No panic escapes this method for any input.
    pub fn run(&mut self, a: &Sequence, b: &Sequence) -> Result<AlignResult, AlignError> {
        for s in [a, b] {
            if s.alphabet() != self.scheme.alphabet() {
                return Err(AlignError::AlphabetMismatch {
                    expected: self.scheme.alphabet().name().to_string(),
                    found: s.alphabet().name().to_string(),
                });
            }
        }
        let (m, n) = (a.len(), b.len());
        let gap = self.scheme.gap().linear_penalty();

        // Reserve the Base Case buffer up front, as the paper does —
        // fallibly, through the governor, so an over-budget `BM` surfaces
        // as `AllocFailed` before any work happens.
        self.base_storage = self
            .ctx
            .governor
            .try_alloc_i32(self.config.base_cells, "base-case buffer")?;
        let base_guard = self
            .metrics
            .track_alloc(self.config.base_cells * std::mem::size_of::<i32>());

        let top: Vec<i32> = (0..=n as i64).map(|j| (j * gap as i64) as i32).collect();
        let left: Vec<i32> = (0..=m as i64).map(|i| (i * gap as i64) as i32).collect();

        let mut builder = PathBuilder::new();
        let (ei, ej) = self.solve(a.codes(), b.codes(), &top, &left, (m, n), &mut builder)?;
        // Extend along the gap-ramp boundary to the top-left corner
        // (paper: "this partial optimal path can then be extended to the
        // top-left entry").
        for _ in 0..ei {
            builder.push_back(flsa_dp::Move::Up);
        }
        for _ in 0..ej {
            builder.push_back(flsa_dp::Move::Left);
        }
        drop(base_guard);

        let path = builder.finish((0, 0));
        debug_assert!(path.is_global(m, n));
        let score = path.score(a, b, self.scheme);
        Ok(AlignResult { score, path })
    }

    /// Extends the path through one rectangle: `head` (local coordinates)
    /// lies on the bottom row or right column; returns the exit point on
    /// the top row or left column, with the connecting moves prepended to
    /// `out` (backwards).
    fn solve(
        &mut self,
        a: &[u8],
        b: &[u8],
        top: &[i32],
        left: &[i32],
        head: (usize, usize),
        out: &mut PathBuilder,
    ) -> Result<(usize, usize), AlignError> {
        self.ctx.step()?;
        let (rows, cols) = (a.len(), b.len());
        debug_assert!(
            head.0 == rows || head.1 == cols,
            "path head must enter on the bottom row or right column"
        );
        if head.0 == 0 || head.1 == 0 {
            // Degenerate rectangle (or head already on the exit boundary).
            return Ok(head);
        }

        // BASE CASE (Figure 2 lines 1-2): the rectangle fits the buffer.
        // Rectangles thinner than 2 residues are also solved directly —
        // their full matrix is at most 2 rows/columns, i.e. linear size.
        let cells = (rows + 1).saturating_mul(cols + 1);
        if cells <= self.config.base_cells || rows < 2 || cols < 2 {
            return self.base_case(a, b, top, left, head, out);
        }

        // GENERAL CASE (Figure 2 lines 3-15).
        let k_r = self.config.k.min(rows);
        let k_c = self.config.k.min(cols);
        let mut grid = Grid::try_new(rows, cols, k_r, k_c, &self.ctx.governor)?;
        let grid_entries = grid.cache_entries();
        let grid_guard = self
            .metrics
            .track_alloc(grid.cache_entries() * std::mem::size_of::<i32>());
        self.log.events.push(CostEvent::GridFill {
            rows,
            cols,
            k_r,
            k_c,
        });

        // fillGridCache (Figure 2 line 5 / Figure 3d).
        let fill_start = self.recorder().map(Recorder::now_ns);
        if self.config.threads() > 1 {
            parallel::fill_grid_parallel(self, a, b, top, left, &mut grid)?;
        } else {
            self.fill_grid_sequential(a, b, top, left, &mut grid);
        }
        self.record_span(fill_start, SpanKind::FillCache, rows, cols, k_r, k_c);

        // Walk sub-problems from the head toward the top/left boundary
        // (Figure 2 lines 8-13). The first iteration handles the
        // bottom-right sub-problem; subsequent ones follow `UpLeft`.
        self.depth += 1;
        let (mut i, mut j) = head;
        while i > 0 && j > 0 {
            let s = segment_of(&grid.row_bounds, i);
            let t = segment_of(&grid.col_bounds, j);
            let r0 = grid.row_bounds[s];
            let r1 = grid.row_bounds[s + 1];
            let c0 = grid.col_bounds[t];
            let c1 = grid.col_bounds[t + 1];
            let sub_top = grid.cached_row(s, t).unwrap_or(&top[c0..=c1]);
            let sub_left = grid.cached_col(s, t).unwrap_or(&left[r0..=r1]);
            let (ei, ej) = self.solve(
                &a[r0..r1],
                &b[c0..c1],
                sub_top,
                sub_left,
                (i - r0, j - c0),
                out,
            )?;
            i = r0 + ei;
            j = c0 + ej;
        }
        self.depth -= 1;

        drop(grid);
        self.ctx.governor.release_i32(grid_entries);
        drop(grid_guard);
        Ok((i, j))
    }

    /// Figure 2's BASE CASE: full-matrix solve in the reserved buffer.
    fn base_case(
        &mut self,
        a: &[u8],
        b: &[u8],
        top: &[i32],
        left: &[i32],
        head: (usize, usize),
        out: &mut PathBuilder,
    ) -> Result<(usize, usize), AlignError> {
        let (rows, cols) = (a.len(), b.len());
        self.log.events.push(CostEvent::BaseFill { rows, cols });

        // Parallel fill pays off only when the matrix is large enough to
        // amortize tile scheduling; small base cases stay sequential.
        let use_parallel = self.config.threads() > 1 && rows * cols >= 16_384;
        // The parallel fill allocates a fresh shared buffer instead of the
        // reserved base storage; account for it explicitly.
        let _par_mem = use_parallel.then(|| {
            self.metrics
                .track_alloc((rows + 1) * (cols + 1) * std::mem::size_of::<i32>())
        });
        let fill_start = self.recorder().map(Recorder::now_ns);
        let dpm = if use_parallel {
            parallel::fill_base_parallel(self, a, b, top, left)?
        } else {
            let storage = std::mem::take(&mut self.base_storage);
            fill_full_reusing(a, b, top, left, self.scheme, storage, self.metrics)
        };
        self.record_span(fill_start, SpanKind::BaseCase, rows, cols, 0, 0);
        self.metrics.add_base_case_cells(rows as u64 * cols as u64);

        let before = out.len();
        let trace_start = self.recorder().map(Recorder::now_ns);
        let exit = trace_from(&dpm, a, b, self.scheme, head, out, self.metrics);
        self.record_span(trace_start, SpanKind::Traceback, rows, cols, 0, 0);
        self.log.events.push(CostEvent::Trace {
            steps: (out.len() - before) as u64,
        });

        // Return the buffer for the next base case (keep the larger one).
        let storage = dpm.into_vec();
        if storage.capacity() > self.base_storage.capacity() {
            self.base_storage = storage;
        }
        Ok(exit)
    }

    /// Sequential fillGridCache: every block except the bottom-right one,
    /// in row-major order (a valid topological order of the block DAG).
    fn fill_grid_sequential(
        &mut self,
        a: &[u8],
        b: &[u8],
        top: &[i32],
        left: &[i32],
        grid: &mut Grid,
    ) {
        let k_r = grid.k_r();
        let k_c = grid.k_c();
        let mut top_buf: Vec<i32> = Vec::new();
        let mut left_buf: Vec<i32> = Vec::new();
        for s in 0..k_r {
            for t in 0..k_c {
                if s == k_r - 1 && t == k_c - 1 {
                    continue; // bottom-right block: solved by recursion instead
                }
                let r0 = grid.row_bounds[s];
                let r1 = grid.row_bounds[s + 1];
                let c0 = grid.col_bounds[t];
                let c1 = grid.col_bounds[t + 1];

                // Copy the input boundary out of the grid first so the
                // output borrows below don't conflict.
                top_buf.clear();
                top_buf.extend_from_slice(grid.cached_row(s, t).unwrap_or(&top[c0..=c1]));
                left_buf.clear();
                left_buf.extend_from_slice(grid.cached_col(s, t).unwrap_or(&left[r0..=r1]));

                self.scratch_row.resize(c1 - c0 + 1, 0);
                self.scratch_col.resize(r1 - r0 + 1, 0);
                flsa_dp::boundary::check_boundary(&top_buf, &left_buf, r1 - r0, c1 - c0);
                fill_last_row_col(
                    &a[r0..r1],
                    &b[c0..c1],
                    &top_buf,
                    &left_buf,
                    self.scheme,
                    &mut self.scratch_row,
                    Some(&mut self.scratch_col),
                    self.metrics,
                );
                if s + 1 < k_r {
                    grid.rows_cache[s][c0..=c1].copy_from_slice(&self.scratch_row);
                }
                if t + 1 < k_c {
                    grid.cols_cache[t][r0..=r1].copy_from_slice(&self.scratch_col);
                }
            }
        }
    }
}

//! The FastLSA recursion (paper Figure 2), run as an explicit stack
//! machine.
//!
//! Invariant maintained by the drive loop: the path head enters a
//! sub-problem on its **bottom row or right column** and leaves on its
//! **top row or left column**. The paper's prose puts the initial head at
//! the bottom-right corner; after the first sub-recursion the head sits
//! anywhere on the next block's bottom/right edge, so the implementation
//! uses the general invariant throughout (DESIGN.md §6).
//!
//! The recursion is materialized as a [`Frame`] stack rather than call
//! frames so the live state can be snapshotted (DESIGN.md §10): at the
//! top of every drive-loop iteration, the stack plus the partial path is
//! *exactly* the remaining work — every grid fill and base case has
//! either fully completed or not started. That is the consistent point
//! where [`CheckpointPolicy`] snapshots are taken and where resumed runs
//! re-enter.

use flsa_dp::traceback::trace_from;
use flsa_dp::{AlignResult, Kernel, MemGuard, Metrics, PathBuilder};
use flsa_scoring::ScoringScheme;
use flsa_seq::Sequence;
use flsa_trace::{EventKind, Recorder, SpanKind};

use crate::checkpoint::{CheckpointState, FrameState, GridState};
use crate::config::FastLsaConfig;
use crate::costlog::{CostEvent, CostLog};
use crate::error::AlignError;
use crate::governor::{AlignOptions, RunCtx};
use crate::grid::{segment_of, Grid};
use crate::metrics::CoreMetrics;
use crate::parallel;

/// One suspended rectangle of the FastLSA recursion. Coordinates `r0`/
/// `c0` are absolute; `head`, `top`, and `left` are local to the
/// rectangle. `grid` is `None` until fillGridCache has run.
struct Frame<'m> {
    r0: usize,
    c0: usize,
    rows: usize,
    cols: usize,
    /// Input top boundary, length `cols + 1` (owned so the frame is
    /// self-contained and snapshot-able).
    top: Vec<i32>,
    /// Input left boundary, length `rows + 1`.
    left: Vec<i32>,
    /// Path head in local coordinates.
    head: (usize, usize),
    grid: Option<Grid>,
    /// Metrics accounting for the grid cache, dropped with the frame.
    grid_guard: Option<MemGuard<'m>>,
}

/// One FastLSA run's mutable state: configuration, reusable buffers, the
/// recursion-frame stack, and the execution trace.
pub(crate) struct Solver<'s> {
    pub scheme: &'s ScoringScheme,
    pub config: FastLsaConfig,
    pub metrics: &'s Metrics,
    /// The pre-allocated Base Case buffer (paper: "BM units of memory are
    /// reserved"), recycled across base-case solves.
    base_storage: Vec<i32>,
    /// Scratch for discarded block outputs during sequential grid fills.
    scratch_row: Vec<i32>,
    scratch_col: Vec<i32>,
    /// Persistent worker pool for parallel fills (spawned once per run,
    /// as in the paper's implementation).
    pub(crate) pool: Option<flsa_wavefront::WorkerPool>,
    /// Execution trace for schedule replay.
    pub log: CostLog,
    /// Depth of the frame currently being processed (0 = whole problem),
    /// recorded on trace spans.
    depth: u32,
    /// The explicit recursion stack, outermost frame first.
    frames: Vec<Frame<'s>>,
    /// Completed grid blocks (filled blocks + base cases), the
    /// checkpoint cadence's progress measure.
    blocks_done: u64,
    /// `blocks_done` at the last persisted snapshot.
    last_ckpt_blocks: u64,
    /// Snapshot sequence number within this process lifetime.
    ckpt_seq: u32,
    /// Resume generation (0 = fresh run), embedded in snapshots.
    generation: u32,
    /// Fallible-execution context: memory governor, cancellation,
    /// fault-injection hooks, checkpoint policy.
    pub(crate) ctx: RunCtx,
    /// DP kernel dispatch handle (backend + scratch arena), shared with
    /// the parallel tile executor.
    pub(crate) kernel: Kernel,
    /// Arena bytes currently charged against the governor's budget;
    /// settled at the drive loop's consistent points.
    arena_charged: usize,
    /// Engine-level registry handles (blocks, depth, phase, arena);
    /// `None` when no registry is attached (DESIGN.md §12).
    obs: Option<CoreMetrics>,
}

impl<'s> Solver<'s> {
    /// Builds a solver. The caller (`align_opts`) is responsible for
    /// validating `config` first.
    pub fn new(
        scheme: &'s ScoringScheme,
        config: FastLsaConfig,
        metrics: &'s Metrics,
        opts: &AlignOptions,
    ) -> Self {
        let pool = (config.threads() > 1).then(|| {
            let pool = flsa_wavefront::WorkerPool::new(config.threads());
            if let Some(reg) = opts.registry.as_deref() {
                pool.set_metrics(flsa_wavefront::PoolMetrics::new(reg));
            }
            pool
        });
        // `align_opts` validates availability up front, so an explicit
        // request can only fail here on a resumed snapshot from another
        // machine — fall back to auto-detection rather than erroring.
        let kernel = match opts.kernel {
            Some(b) => Kernel::try_new(b).unwrap_or_else(|_| Kernel::auto()),
            None => Kernel::auto(),
        };
        if let Some(r) = metrics.recorder() {
            r.set_kernel_backend(kernel.backend().name());
        }
        // Keep the metrics sink's backend attribution in lockstep with
        // the recorder's so exported per-backend cell counts match the
        // trace-derived ones exactly.
        metrics.set_kernel_backend(kernel.backend().name());
        Solver {
            scheme,
            config,
            metrics,
            base_storage: Vec::new(),
            scratch_row: Vec::new(),
            scratch_col: Vec::new(),
            pool,
            log: CostLog::default(),
            depth: 0,
            frames: Vec::new(),
            blocks_done: 0,
            last_ckpt_blocks: 0,
            ckpt_seq: 0,
            generation: 0,
            ctx: RunCtx::from_options(opts),
            kernel,
            arena_charged: 0,
            obs: opts.registry.as_deref().map(CoreMetrics::new),
        }
    }

    /// Sets the run-phase gauge (see [`flsa_metrics::names::PHASE`]).
    #[inline]
    fn set_phase(&self, phase: i64) {
        if let Some(obs) = &self.obs {
            obs.phase.set(phase);
        }
    }

    /// The attached trace recorder, if any. Detached from `&mut self`
    /// borrows because `metrics` is itself a shared reference.
    #[inline]
    pub(crate) fn recorder(&self) -> Option<&'s Recorder> {
        self.metrics.recorder()
    }

    /// Records one recursion span if tracing is on. `k_r`/`k_c` are 0 for
    /// base cases and tracebacks.
    #[inline]
    fn record_span(
        &self,
        started_ns: Option<u64>,
        kind: SpanKind,
        rows: usize,
        cols: usize,
        k_r: usize,
        k_c: usize,
    ) {
        if let (Some(r), Some(start)) = (self.recorder(), started_ns) {
            r.record(
                start,
                r.now_ns(),
                EventKind::Span {
                    kind,
                    depth: self.depth,
                    rows: rows as u64,
                    cols: cols as u64,
                    k_r: k_r as u32,
                    k_c: k_c as u32,
                    cells: rows as u64 * cols as u64,
                },
            );
        }
    }

    fn check_alphabets(&self, a: &Sequence, b: &Sequence) -> Result<(), AlignError> {
        for s in [a, b] {
            if s.alphabet() != self.scheme.alphabet() {
                return Err(AlignError::AlphabetMismatch {
                    expected: self.scheme.alphabet().name().to_string(),
                    found: s.alphabet().name().to_string(),
                });
            }
        }
        Ok(())
    }

    /// Aligns two sequences, returning the optimal score and path, or a
    /// structured error (bad alphabet, refused allocation, cancellation,
    /// worker panic). No panic escapes this method for any input.
    pub fn run(&mut self, a: &Sequence, b: &Sequence) -> Result<AlignResult, AlignError> {
        self.check_alphabets(a, b)?;
        let (m, n) = (a.len(), b.len());
        let gap = self.scheme.gap().linear_penalty();
        if let Some(obs) = &self.obs {
            // `m·n` is a lower bound on total cells (grid-cache refills
            // push the real total above it); the progress line caps its
            // percentage accordingly.
            obs.run_expected.set((m as i64).saturating_mul(n as i64));
        }

        // Reserve the Base Case buffer up front, as the paper does —
        // fallibly, through the governor, so an over-budget `BM` surfaces
        // as `AllocFailed` before any work happens.
        self.base_storage = self
            .ctx
            .governor
            .try_alloc_i32(self.config.base_cells, "base-case buffer")?;
        let base_guard = self
            .metrics
            .track_alloc(self.config.base_cells * std::mem::size_of::<i32>());

        let top: Vec<i32> = (0..=n as i64).map(|j| (j * gap as i64) as i32).collect();
        let left: Vec<i32> = (0..=m as i64).map(|i| (i * gap as i64) as i32).collect();
        self.frames.push(Frame {
            r0: 0,
            c0: 0,
            rows: m,
            cols: n,
            top,
            left,
            head: (m, n),
            grid: None,
            grid_guard: None,
        });

        let mut builder = PathBuilder::new();
        let exit = self.drive(a.codes(), b.codes(), &mut builder)?;
        drop(base_guard);
        self.set_phase(flsa_metrics::names::PHASE_IDLE);
        Ok(self.finish_path(a, b, builder, exit))
    }

    /// Continues an interrupted run from a validated snapshot: rebuilds
    /// the frame stack and partial path, emits an
    /// [`EventKind::Resume`] marker, and drives to completion. The
    /// result is byte-identical to what the uninterrupted run would have
    /// produced — resuming replays no completed work and skips none.
    pub fn resume(
        &mut self,
        a: &Sequence,
        b: &Sequence,
        state: CheckpointState,
    ) -> Result<AlignResult, AlignError> {
        self.check_alphabets(a, b)?;
        state
            .validate(a.len(), b.len())
            .map_err(|detail| AlignError::CorruptCheckpoint { detail })?;
        if let Some(obs) = &self.obs {
            obs.run_expected
                .set((a.len() as i64).saturating_mul(b.len() as i64));
        }

        self.base_storage = self
            .ctx
            .governor
            .try_alloc_i32(self.config.base_cells, "base-case buffer")?;
        let base_guard = self
            .metrics
            .track_alloc(self.config.base_cells * std::mem::size_of::<i32>());

        for fs in state.frames {
            let FrameState {
                r0,
                c0,
                rows,
                cols,
                head,
                top,
                left,
                grid,
            } = fs;
            let grid = match grid {
                Some(gs) => Some(Grid::from_parts(gs, &self.ctx.governor)?),
                None => None,
            };
            let grid_guard = grid
                .as_ref()
                .map(|g| self.metrics.track_alloc(g.cache_entries() * 4));
            self.frames.push(Frame {
                r0,
                c0,
                rows,
                cols,
                top,
                left,
                head,
                grid,
                grid_guard,
            });
        }
        self.blocks_done = state.blocks_done;
        self.last_ckpt_blocks = state.blocks_done;
        self.generation = state.generation + 1;
        if let Some(r) = self.recorder() {
            let now = r.now_ns();
            r.record(
                now,
                now,
                EventKind::Resume {
                    generation: self.generation,
                    blocks: self.blocks_done,
                    frames: self.frames.len() as u32,
                },
            );
        }

        let mut builder = PathBuilder::from_rev_moves(state.rev_moves);
        let exit = self.drive(a.codes(), b.codes(), &mut builder)?;
        drop(base_guard);
        self.set_phase(flsa_metrics::names::PHASE_IDLE);
        Ok(self.finish_path(a, b, builder, exit))
    }

    /// Extends the partial path from the recursion's exit point along
    /// the gap-ramp boundary to the top-left corner (paper: "this
    /// partial optimal path can then be extended to the top-left
    /// entry") and scores it.
    fn finish_path(
        &self,
        a: &Sequence,
        b: &Sequence,
        mut builder: PathBuilder,
        exit: (usize, usize),
    ) -> AlignResult {
        for _ in 0..exit.0 {
            builder.push_back(flsa_dp::Move::Up);
        }
        for _ in 0..exit.1 {
            builder.push_back(flsa_dp::Move::Left);
        }
        let path = builder.finish((0, 0));
        debug_assert!(path.is_global(a.len(), b.len()));
        let score = path.score(a, b, self.scheme);
        AlignResult { score, path }
    }

    /// The stack-machine drive loop (Figure 2, iteratively). Each
    /// iteration inspects the top frame and either pops it (head on the
    /// exit boundary), solves it as a base case, fills its grid cache,
    /// or descends into the sub-block containing the head. Returns the
    /// absolute exit point on the whole problem's top/left boundary.
    fn drive(
        &mut self,
        a: &[u8],
        b: &[u8],
        out: &mut PathBuilder,
    ) -> Result<(usize, usize), AlignError> {
        loop {
            // Consistent point: the frame stack plus `out` is exactly
            // the remaining work. Snapshots happen here and nowhere else,
            // and the kernel arena (no buffers checked out here) settles
            // its growth against the budget.
            self.charge_arena();
            if let Some(obs) = &self.obs {
                obs.solver_steps.inc();
                let depth = self.frames.len() as i64;
                obs.depth.set(depth);
                obs.depth_peak.fetch_max(depth);
            }
            self.maybe_checkpoint(out, false)?;
            if let Err(e) = self.ctx.step() {
                return Err(self.fail_with_snapshot(out, e));
            }

            let Some(f) = self.frames.last() else {
                // The root frame always returns through the pop branch;
                // an empty stack here means a caller-provided state was
                // inconsistent in a way validation cannot express.
                return Err(AlignError::CorruptCheckpoint {
                    detail: "drive loop ran out of frames".to_string(),
                });
            };

            // 1. Head on the exit boundary: pop and propagate.
            if f.head.0 == 0 || f.head.1 == 0 {
                let exit = (f.r0 + f.head.0, f.c0 + f.head.1);
                if let Some(frame) = self.frames.pop() {
                    self.release_frame(frame);
                }
                match self.frames.last_mut() {
                    Some(p) => p.head = (exit.0 - p.r0, exit.1 - p.c0),
                    None => return Ok(exit),
                }
                continue;
            }

            // 2. Filled grid: descend into the block containing the head
            //    (Figure 2 lines 8-13).
            if let Some(grid) = &f.grid {
                let (i, j) = f.head;
                let s = segment_of(&grid.row_bounds, i);
                let t = segment_of(&grid.col_bounds, j);
                let r0 = grid.row_bounds[s];
                let r1 = grid.row_bounds[s + 1];
                let c0 = grid.col_bounds[t];
                let c1 = grid.col_bounds[t + 1];
                let sub_top = grid.cached_row(s, t).unwrap_or(&f.top[c0..=c1]).to_vec();
                let sub_left = grid.cached_col(s, t).unwrap_or(&f.left[r0..=r1]).to_vec();
                let child = Frame {
                    r0: f.r0 + r0,
                    c0: f.c0 + c0,
                    rows: r1 - r0,
                    cols: c1 - c0,
                    top: sub_top,
                    left: sub_left,
                    head: (i - r0, j - c0),
                    grid: None,
                    grid_guard: None,
                };
                debug_assert!(
                    child.head.0 == child.rows || child.head.1 == child.cols,
                    "path head must enter on the bottom row or right column"
                );
                self.frames.push(child);
                continue;
            }

            // 3. BASE CASE (Figure 2 lines 1-2): the rectangle fits the
            //    buffer. Rectangles thinner than 2 residues are also
            //    solved directly — their full matrix is at most 2
            //    rows/columns, i.e. linear size.
            let cells = (f.rows + 1).saturating_mul(f.cols + 1);
            let is_base = cells <= self.config.base_cells || f.rows < 2 || f.cols < 2;
            let Some(frame) = self.frames.pop() else {
                continue;
            };
            self.depth = self.frames.len() as u32;
            let fa = &a[frame.r0..frame.r0 + frame.rows];
            let fb = &b[frame.c0..frame.c0 + frame.cols];

            if is_base {
                match self.base_case(fa, fb, &frame.top, &frame.left, frame.head, out) {
                    Ok(local_exit) => {
                        self.blocks_done += 1;
                        if let Some(obs) = &self.obs {
                            obs.blocks.inc();
                        }
                        let exit = (frame.r0 + local_exit.0, frame.c0 + local_exit.1);
                        match self.frames.last_mut() {
                            Some(p) => p.head = (exit.0 - p.r0, exit.1 - p.c0),
                            None => return Ok(exit),
                        }
                    }
                    Err(e) => {
                        // The base case mutated nothing (fills fail
                        // before any path moves are pushed): restoring
                        // the frame restores consistency.
                        self.frames.push(frame);
                        return Err(self.fail_with_snapshot(out, e));
                    }
                }
                continue;
            }

            // 4. GENERAL CASE (Figure 2 lines 3-15): fillGridCache.
            match self.fill_grid(fa, fb, frame) {
                Ok(()) => {}
                Err((frame, e)) => {
                    self.frames.push(frame);
                    return Err(self.fail_with_snapshot(out, e));
                }
            }
        }
    }

    /// Settles the kernel arena's byte usage against the governor. The
    /// arena is an opportunistic cache: if the budget refuses its
    /// growth, the kernel degrades to the scalar backend (bit-identical
    /// results, caller-owned buffers only) and the pooled scratch is
    /// freed — a graceful fallback, never an error, and deliberately
    /// outside the fault hooks and the degradation ladder.
    fn charge_arena(&mut self) {
        let held = self.kernel.arena().held_bytes();
        if held > self.arena_charged {
            if self
                .ctx
                .governor
                .try_charge_bytes(held - self.arena_charged)
            {
                self.arena_charged = held;
            } else {
                self.kernel.degrade_to_scalar();
                if let Some(r) = self.recorder() {
                    r.set_kernel_backend(self.kernel.backend().name());
                }
                self.metrics
                    .set_kernel_backend(self.kernel.backend().name());
                self.ctx.governor.release_bytes(self.arena_charged);
                self.arena_charged = 0;
            }
        } else if held < self.arena_charged {
            self.ctx.governor.release_bytes(self.arena_charged - held);
            self.arena_charged = held;
        }
        // The arena stats are observed here — the drive loop's consistent
        // point — rather than instrumented inside the arena's hot
        // take/put path.
        if let Some(obs) = &self.obs {
            let arena = self.kernel.arena();
            obs.arena_held.set(arena.held_bytes() as i64);
            obs.arena_fresh.set(arena.fresh_allocs() as i64);
            obs.arena_reuses.set(arena.reuses() as i64);
        }
    }

    /// Allocates and fills `frame`'s grid cache, then pushes the frame
    /// back with the grid attached. On failure the frame is returned
    /// untouched (grid still `None`) so the caller can restore it.
    #[allow(clippy::result_large_err)] // Err hands the frame back for push-back + snapshot
    fn fill_grid(
        &mut self,
        fa: &[u8],
        fb: &[u8],
        mut frame: Frame<'s>,
    ) -> Result<(), (Frame<'s>, AlignError)> {
        let (rows, cols) = (frame.rows, frame.cols);
        let k_r = self.config.k.min(rows);
        let k_c = self.config.k.min(cols);
        let mut grid = match Grid::try_new(rows, cols, k_r, k_c, &self.ctx.governor) {
            Ok(g) => g,
            Err(e) => return Err((frame, e)),
        };
        let grid_guard = self
            .metrics
            .track_alloc(grid.cache_entries() * std::mem::size_of::<i32>());
        self.log.events.push(CostEvent::GridFill {
            rows,
            cols,
            k_r,
            k_c,
        });

        // fillGridCache (Figure 2 line 5 / Figure 3d).
        self.set_phase(flsa_metrics::names::PHASE_GRID_FILL);
        let fill_start = self.recorder().map(Recorder::now_ns);
        let filled = if self.config.threads() > 1 {
            parallel::fill_grid_parallel(self, fa, fb, &frame.top, &frame.left, &mut grid)
        } else {
            self.fill_grid_sequential(fa, fb, &frame.top, &frame.left, &mut grid);
            Ok(())
        };
        if let Err(e) = filled {
            // The fill did not complete: undo the partial cost-log entry
            // and the grid's budget charge, hand the frame back intact.
            self.log.events.pop();
            self.ctx.governor.release_i32(grid.cache_entries());
            return Err((frame, e));
        }
        self.record_span(fill_start, SpanKind::FillCache, rows, cols, k_r, k_c);
        // All blocks except the bottom-right one are now complete.
        self.blocks_done += (k_r * k_c - 1) as u64;
        if let Some(obs) = &self.obs {
            obs.blocks.add((k_r * k_c - 1) as u64);
        }
        frame.grid = Some(grid);
        frame.grid_guard = Some(grid_guard);
        self.frames.push(frame);
        Ok(())
    }

    /// Drops a popped frame, returning its grid cache's bytes to the
    /// governor (the metrics guard drops with the frame).
    fn release_frame(&self, frame: Frame<'_>) {
        if let Some(g) = &frame.grid {
            self.ctx.governor.release_i32(g.cache_entries());
        }
    }

    /// On cancellation, force one final snapshot at the current (still
    /// consistent) state so `resume` can pick up exactly here; other
    /// errors pass through. Snapshot failures never mask the original
    /// error.
    fn fail_with_snapshot(&mut self, out: &PathBuilder, e: AlignError) -> AlignError {
        if matches!(e, AlignError::Cancelled) {
            let _ = self.maybe_checkpoint(out, true);
        }
        e
    }

    /// Captures and persists a snapshot if a policy is attached and the
    /// cadence (or `force`) says so.
    fn maybe_checkpoint(&mut self, out: &PathBuilder, force: bool) -> Result<(), AlignError> {
        let Some(policy) = self.ctx.checkpoint.clone() else {
            return Ok(());
        };
        let due =
            self.blocks_done.saturating_sub(self.last_ckpt_blocks) >= policy.every_blocks.max(1);
        if !(due || force) {
            return Ok(());
        }
        let state = self.capture_state(out);
        let frames = state.frames.len() as u32;
        let blocks = state.blocks_done;
        match policy.sink.save(&state) {
            Ok(bytes) => {
                self.last_ckpt_blocks = self.blocks_done;
                if let Some(r) = self.recorder() {
                    let now = r.now_ns();
                    r.record(
                        now,
                        now,
                        EventKind::Checkpoint {
                            seq: self.ckpt_seq,
                            blocks,
                            frames,
                            bytes,
                        },
                    );
                }
                self.ckpt_seq += 1;
                Ok(())
            }
            Err(detail) => Err(AlignError::CheckpointSave { detail }),
        }
    }

    /// Copies the live state into a plain-data [`CheckpointState`]. By
    /// Theorem 2 this is `O(k·(m+n))` cells: one boundary pair plus at
    /// most one grid cache per stack level.
    fn capture_state(&self, out: &PathBuilder) -> CheckpointState {
        CheckpointState {
            config: self.config,
            blocks_done: self.blocks_done,
            generation: self.generation,
            rev_moves: out.rev_moves().to_vec(),
            frames: self
                .frames
                .iter()
                .map(|f| FrameState {
                    r0: f.r0,
                    c0: f.c0,
                    rows: f.rows,
                    cols: f.cols,
                    head: f.head,
                    top: f.top.clone(),
                    left: f.left.clone(),
                    grid: f.grid.as_ref().map(|g| GridState {
                        row_bounds: g.row_bounds.clone(),
                        col_bounds: g.col_bounds.clone(),
                        rows_cache: g.rows_cache.clone(),
                        cols_cache: g.cols_cache.clone(),
                    }),
                })
                .collect(),
        }
    }

    /// Figure 2's BASE CASE: full-matrix solve in the reserved buffer.
    fn base_case(
        &mut self,
        a: &[u8],
        b: &[u8],
        top: &[i32],
        left: &[i32],
        head: (usize, usize),
        out: &mut PathBuilder,
    ) -> Result<(usize, usize), AlignError> {
        let (rows, cols) = (a.len(), b.len());
        self.log.events.push(CostEvent::BaseFill { rows, cols });

        // Parallel fill pays off only when the matrix is large enough to
        // amortize tile scheduling; small base cases stay sequential.
        let use_parallel = self.config.threads() > 1 && rows * cols >= 16_384;
        // The parallel fill allocates a fresh shared buffer instead of the
        // reserved base storage; account for it explicitly.
        let _par_mem = use_parallel.then(|| {
            self.metrics
                .track_alloc((rows + 1) * (cols + 1) * std::mem::size_of::<i32>())
        });
        self.set_phase(flsa_metrics::names::PHASE_BASE_CASE);
        let fill_start = self.recorder().map(Recorder::now_ns);
        let dpm = if use_parallel {
            match parallel::fill_base_parallel(self, a, b, top, left) {
                Ok(d) => d,
                Err(e) => {
                    // The fill never ran to completion: undo the
                    // cost-log entry so replay stays consistent.
                    self.log.events.pop();
                    return Err(e);
                }
            }
        } else {
            let storage = std::mem::take(&mut self.base_storage);
            self.kernel
                .fill_full_reusing(a, b, top, left, self.scheme, storage, self.metrics)
        };
        self.record_span(fill_start, SpanKind::BaseCase, rows, cols, 0, 0);
        self.metrics.add_base_case_cells(rows as u64 * cols as u64);

        let before = out.len();
        self.set_phase(flsa_metrics::names::PHASE_TRACEBACK);
        let trace_start = self.recorder().map(Recorder::now_ns);
        let exit = trace_from(&dpm, a, b, self.scheme, head, out, self.metrics);
        self.record_span(trace_start, SpanKind::Traceback, rows, cols, 0, 0);
        self.log.events.push(CostEvent::Trace {
            steps: (out.len() - before) as u64,
        });

        // Return the buffer for the next base case (keep the larger one).
        let storage = dpm.into_vec();
        if storage.capacity() > self.base_storage.capacity() {
            self.base_storage = storage;
        }
        Ok(exit)
    }

    /// Sequential fillGridCache: every block except the bottom-right one,
    /// in row-major order (a valid topological order of the block DAG).
    fn fill_grid_sequential(
        &mut self,
        a: &[u8],
        b: &[u8],
        top: &[i32],
        left: &[i32],
        grid: &mut Grid,
    ) {
        let k_r = grid.k_r();
        let k_c = grid.k_c();
        let mut top_buf: Vec<i32> = Vec::new();
        let mut left_buf: Vec<i32> = Vec::new();
        for s in 0..k_r {
            for t in 0..k_c {
                if s == k_r - 1 && t == k_c - 1 {
                    continue; // bottom-right block: solved by recursion instead
                }
                let r0 = grid.row_bounds[s];
                let r1 = grid.row_bounds[s + 1];
                let c0 = grid.col_bounds[t];
                let c1 = grid.col_bounds[t + 1];

                // Copy the input boundary out of the grid first so the
                // output borrows below don't conflict.
                top_buf.clear();
                top_buf.extend_from_slice(grid.cached_row(s, t).unwrap_or(&top[c0..=c1]));
                left_buf.clear();
                left_buf.extend_from_slice(grid.cached_col(s, t).unwrap_or(&left[r0..=r1]));

                self.scratch_row.resize(c1 - c0 + 1, 0);
                self.scratch_col.resize(r1 - r0 + 1, 0);
                flsa_dp::boundary::check_boundary(&top_buf, &left_buf, r1 - r0, c1 - c0);
                self.kernel.fill_last_row_col(
                    &a[r0..r1],
                    &b[c0..c1],
                    &top_buf,
                    &left_buf,
                    self.scheme,
                    &mut self.scratch_row,
                    Some(&mut self.scratch_col),
                    self.metrics,
                );
                if s + 1 < k_r {
                    grid.rows_cache[s][c0..=c1].copy_from_slice(&self.scratch_row);
                }
                if t + 1 < k_c {
                    grid.cols_cache[t][r0..=r1].copy_from_slice(&self.scratch_col);
                }
            }
        }
    }
}

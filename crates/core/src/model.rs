//! Analytical cost model (paper §4–§5, Theorems 1–4) and schedule replay.
//!
//! Two roles:
//!
//! 1. **Executable theorems** — closed-form bounds on cells computed and
//!    space used, asserted against measured [`flsa_dp::MetricsSnapshot`]s
//!    by the test suite and printed next to measurements by experiment
//!    E2/E11.
//! 2. **Schedule replay** — re-running a recorded [`CostLog`] through the
//!    virtual-processor simulator to obtain the paper's speedup and
//!    efficiency curves for any `P` (experiments E7/E8; see DESIGN.md §2
//!    for why this substitutes for a large multiprocessor).

use flsa_wavefront::sim::simulate_schedule_comm;

use crate::costlog::{CostEvent, CostLog};
use crate::grid::partition;
use crate::parallel::refine_bounds;

/// Cells computed by a full-matrix algorithm: exactly `m·n` (Theorem 1
/// territory: FM minimizes computation).
pub fn fm_cells(m: usize, n: usize) -> f64 {
    m as f64 * n as f64
}

/// Cells computed by Hirschberg's algorithm: ≈ `2·m·n` (paper §2.2).
pub fn hirschberg_cells(m: usize, n: usize) -> f64 {
    2.0 * m as f64 * n as f64
}

/// Upper bound on cells computed by sequential FastLSA with division
/// factor `k` and Base Case buffer `base_cells`, following the paper's
/// recurrence `T(m,n) = m·n + (2k−1)·T(m/k, n/k)` with the recursion
/// stopping at the base case (Section 5's Equation 34 with the finite
/// sum).
pub fn fastlsa_cells_bound(m: usize, n: usize, k: usize, base_cells: usize) -> f64 {
    assert!(k >= 2);
    let (mf, nf) = (m as f64, n as f64);
    if m == 0 || n == 0 {
        return 0.0;
    }
    if (mf + 1.0) * (nf + 1.0) <= base_cells as f64 || m < 2 || n < 2 {
        return mf * nf;
    }
    let sub = fastlsa_cells_bound(m.div_ceil(k), n.div_ceil(k), k, base_cells);
    mf * nf + (2 * k - 1) as f64 * sub
}

/// Theorem 2's limiting recomputation factor: as the recursion deepens,
/// FastLSA computes at most `m·n·(k/(k−1))²` cells.
pub fn theorem2_limit_factor(k: usize) -> f64 {
    let kf = k as f64;
    (kf / (kf - 1.0)) * (kf / (kf - 1.0))
}

/// Upper bound on FastLSA's auxiliary space in DPM entries: grid caches
/// across the recursion (each level stores `(k−1)` full rows and columns
/// of its rectangle) plus the Base Case buffer (Theorem 3 territory —
/// linear in `m+n` for fixed `k`).
pub fn fastlsa_space_entries(m: usize, n: usize, k: usize, base_cells: usize) -> f64 {
    let mut total = base_cells as f64;
    let (mut mf, mut nf) = (m as f64, n as f64);
    // Along one root-to-leaf chain of the recursion, each level holds one
    // live grid; sizes shrink geometrically by k.
    while (mf + 1.0) * (nf + 1.0) > base_cells as f64 && mf >= 2.0 && nf >= 2.0 {
        total += (k as f64 - 1.0) * (mf + nf + 2.0);
        mf /= k as f64;
        nf /= k as f64;
    }
    total
}

/// Theorem 4: parallel FastLSA wall cost
/// `WT(m,n,k,P) ≤ (m·n/P)·(1 + (P²−P)/(R·C))·(k/(k−1))²` in cell units,
/// where the tile grid is `R × C = k·f × k·f`.
pub fn theorem4_bound(m: usize, n: usize, k: usize, threads: usize, tiles_per_block: usize) -> f64 {
    let rc = (k * tiles_per_block * k * tiles_per_block) as f64;
    let p = threads as f64;
    let alpha = (1.0 + (p * p - p) / rc) / p;
    (m as f64) * (n as f64) * alpha * theorem2_limit_factor(k)
}

/// Replayed cost of one run under `threads` virtual processors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayReport {
    /// Virtual processors.
    pub threads: usize,
    /// Schedule length in cell units (fills wavefront-scheduled,
    /// tracebacks sequential).
    pub units: f64,
    /// Total work in cell units (the 1-processor schedule length).
    pub total_work: f64,
}

impl ReplayReport {
    /// Speedup over one processor.
    pub fn speedup(&self) -> f64 {
        self.total_work / self.units
    }

    /// Efficiency = speedup / threads.
    pub fn efficiency(&self) -> f64 {
        self.speedup() / self.threads as f64
    }
}

/// Replays a recorded run under `threads` virtual processors with tile
/// subdivision `tiles_per_block` (the same `f` the real parallel executor
/// would use). Tile costs are tile areas in cells; tracebacks and
/// recursion overheads are sequential, so Amdahl effects are captured.
pub fn replay(log: &CostLog, threads: usize, tiles_per_block: usize) -> ReplayReport {
    replay_with_comm(log, threads, tiles_per_block, 0.0)
}

/// [`replay`] with a per-dependency **communication cost** equal to
/// `comm_frac` of the fill's mean tile cost, paid whenever a tile's
/// neighbour ran on another virtual processor — the sensitivity knob for
/// experiment E14 (the paper's testbed paid real interconnect latencies
/// that a shared-cache workstation does not).
pub fn replay_with_comm(
    log: &CostLog,
    threads: usize,
    tiles_per_block: usize,
    comm_frac: f64,
) -> ReplayReport {
    assert!(threads >= 1);
    assert!(comm_frac >= 0.0);
    let mut units = 0.0f64;
    let mut total = 0.0f64;
    for event in &log.events {
        match *event {
            CostEvent::GridFill {
                rows,
                cols,
                k_r,
                k_c,
            } => {
                let f_r = tiles_per_block.min(rows / k_r).max(1);
                let f_c = tiles_per_block.min(cols / k_c).max(1);
                let trb = refine_bounds(&partition(rows, k_r), f_r);
                let tcb = refine_bounds(&partition(cols, k_c), f_c);
                let skip_r = (k_r - 1) * f_r;
                let skip_c = (k_c - 1) * f_c;
                let skip = move |tr: usize, tc: usize| tr >= skip_r && tc >= skip_c;
                let cost = |tr: usize, tc: usize| {
                    ((trb[tr + 1] - trb[tr]) * (tcb[tc + 1] - tcb[tc])) as u64
                };
                let mean_tile = (rows * cols) as f64 / ((trb.len() - 1) * (tcb.len() - 1)) as f64;
                let res = simulate_schedule_comm(
                    trb.len() - 1,
                    tcb.len() - 1,
                    threads,
                    Some(&skip),
                    &cost,
                    (mean_tile * comm_frac) as u64,
                );
                units += res.makespan as f64;
                total += res.total_cost as f64;
            }
            CostEvent::BaseFill { rows, cols } => {
                if rows == 0 || cols == 0 {
                    continue;
                }
                let tiles_r = (2 * threads).min(rows).max(1);
                let tiles_c = (2 * threads).min(cols).max(1);
                let trb = partition(rows, tiles_r);
                let tcb = partition(cols, tiles_c);
                let cost = |tr: usize, tc: usize| {
                    ((trb[tr + 1] - trb[tr]) * (tcb[tc + 1] - tcb[tc])) as u64
                };
                let mean_tile = (rows * cols) as f64 / (tiles_r * tiles_c) as f64;
                let res = simulate_schedule_comm(
                    tiles_r,
                    tiles_c,
                    threads,
                    None,
                    &cost,
                    (mean_tile * comm_frac) as u64,
                );
                units += res.makespan as f64;
                total += res.total_cost as f64;
            }
            CostEvent::Trace { steps } => {
                // Tracebacks are sequential in the paper and here.
                units += steps as f64;
                total += steps as f64;
            }
        }
    }
    ReplayReport {
        threads,
        units,
        total_work: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fm_and_hirschberg_formulas() {
        assert_eq!(fm_cells(100, 200), 20_000.0);
        assert_eq!(hirschberg_cells(100, 200), 40_000.0);
    }

    #[test]
    fn fastlsa_bound_between_fm_and_limit() {
        for k in [2usize, 4, 8, 16] {
            let bound = fastlsa_cells_bound(10_000, 10_000, k, 1 << 12);
            let mn = 10_000.0f64 * 10_000.0;
            assert!(bound >= mn, "k={k}");
            assert!(
                bound <= mn * theorem2_limit_factor(k) * 1.05,
                "k={k}: bound {bound} vs limit {}",
                mn * theorem2_limit_factor(k)
            );
        }
    }

    #[test]
    fn bigger_base_case_means_fewer_recomputations() {
        let small = fastlsa_cells_bound(50_000, 50_000, 4, 1 << 10);
        let big = fastlsa_cells_bound(50_000, 50_000, 4, 1 << 24);
        assert!(big < small);
    }

    #[test]
    fn limit_factor_decreases_with_k() {
        assert!((theorem2_limit_factor(2) - 4.0).abs() < 1e-12);
        assert!(theorem2_limit_factor(4) > theorem2_limit_factor(8));
        assert!(theorem2_limit_factor(64) < 1.05);
    }

    #[test]
    fn space_is_linear_in_sequence_length() {
        let s1 = fastlsa_space_entries(10_000, 10_000, 8, 1 << 16);
        let s2 = fastlsa_space_entries(20_000, 20_000, 8, 1 << 16);
        // Doubling the problem roughly doubles the grid term, far from 4x.
        let grid1 = s1 - (1 << 16) as f64;
        let grid2 = s2 - (1 << 16) as f64;
        assert!(
            grid2 < grid1 * 2.3,
            "grid growth should be linear: {grid1} -> {grid2}"
        );
    }

    #[test]
    fn replay_single_thread_equals_total_work() {
        let log = CostLog {
            events: vec![
                CostEvent::GridFill {
                    rows: 64,
                    cols: 64,
                    k_r: 4,
                    k_c: 4,
                },
                CostEvent::BaseFill { rows: 16, cols: 16 },
                CostEvent::Trace { steps: 32 },
            ],
        };
        let r = replay(&log, 1, 2);
        assert!((r.units - r.total_work).abs() < 1e-9);
        assert!((r.speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn replay_speedup_grows_then_saturates() {
        let log = CostLog {
            events: vec![CostEvent::GridFill {
                rows: 4096,
                cols: 4096,
                k_r: 8,
                k_c: 8,
            }],
        };
        let s2 = replay(&log, 2, 4).speedup();
        let s4 = replay(&log, 4, 4).speedup();
        let s8 = replay(&log, 8, 4).speedup();
        assert!(s2 > 1.5, "s2 {s2}");
        assert!(s4 > s2);
        assert!(s8 > s4);
        assert!(s8 <= 8.0 + 1e-9);
    }

    #[test]
    fn communication_reduces_replayed_speedup() {
        let log = CostLog {
            events: vec![CostEvent::GridFill {
                rows: 2048,
                cols: 2048,
                k_r: 8,
                k_c: 8,
            }],
        };
        let s0 = replay_with_comm(&log, 8, 2, 0.0).speedup();
        let s10 = replay_with_comm(&log, 8, 2, 0.1).speedup();
        let s50 = replay_with_comm(&log, 8, 2, 0.5).speedup();
        assert!(s10 < s0, "{s10} vs {s0}");
        assert!(s50 < s10);
        assert!(s50 >= 1.0, "never below sequential in this model");
    }

    #[test]
    fn theorem4_bound_decreases_with_threads() {
        let b1 = theorem4_bound(10_000, 10_000, 8, 1, 2);
        let b8 = theorem4_bound(10_000, 10_000, 8, 8, 2);
        assert!(b8 < b1 / 4.0);
    }
}

//! The alignment error taxonomy (DESIGN.md §9).
//!
//! The public `align*` functions return `Result<_, AlignError>`: no panic
//! escapes the API. Configuration problems are separated into
//! [`ConfigError`] so callers (the CLI in particular) can distinguish
//! "bad request" from "runtime fault".

use flsa_wavefront::JobError;

/// A structurally invalid [`crate::FastLsaConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The grid division factor must be at least 2 (a 1×1 "grid" never
    /// shrinks the problem).
    KTooSmall {
        /// The rejected value.
        k: usize,
    },
    /// A parallel config must have at least one worker thread.
    ZeroThreads,
    /// A parallel config must subdivide each block into at least one tile.
    ZeroTiles,
    /// [`crate::align_affine`] requires [`flsa_scoring::GapModel::Affine`]
    /// (use the linear entry points for linear gaps).
    GapModelNotAffine,
    /// The combined sequence span `m + n` is large enough that the DP
    /// recurrence could overflow `i32` cell scores under this scoring
    /// scheme (see [`crate::max_safe_span`] and the audit's R10
    /// overflow certificate).
    ScoreOverflow {
        /// The rejected span `m + n`.
        span: usize,
        /// The largest span the scheme admits.
        max_span: usize,
    },
    /// The requested DP kernel backend is not available on this CPU
    /// (e.g. `avx2` on a machine without AVX2).
    KernelUnavailable {
        /// Name of the rejected backend.
        backend: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::KTooSmall { k } => write!(f, "k must be >= 2 (k = {k})"),
            ConfigError::ZeroThreads => write!(f, "threads must be >= 1"),
            ConfigError::ZeroTiles => write!(f, "tiles_per_block must be >= 1"),
            ConfigError::GapModelNotAffine => {
                write!(f, "align_affine requires GapModel::Affine")
            }
            ConfigError::ScoreOverflow { span, max_span } => write!(
                f,
                "sequence span m + n = {span} exceeds the i32-safe limit {max_span} \
                 for this scoring scheme"
            ),
            ConfigError::KernelUnavailable { backend } => {
                write!(f, "kernel backend {backend} is not available on this CPU")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Why an alignment run failed. Produced by the fallible `align*` API;
/// recoverable variants ([`AlignError::AllocFailed`],
/// [`AlignError::WorkerPanic`]) are retried down the degradation ladder by
/// [`crate::align_opts`] before being surfaced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlignError {
    /// The configuration was rejected before any work started.
    Config(ConfigError),
    /// The sequences are not encoded in the scoring scheme's alphabet.
    AlphabetMismatch {
        /// Name of the scheme's alphabet.
        expected: String,
        /// Name of the offending sequence's alphabet.
        found: String,
    },
    /// An allocation was refused — by the memory governor's byte budget,
    /// by the allocator (`try_reserve` failed), or by an injected fault.
    AllocFailed {
        /// Size of the refused allocation.
        bytes: usize,
        /// What the allocation was for (e.g. "base-case buffer").
        what: &'static str,
    },
    /// The run was cancelled (explicitly or by deadline) and every
    /// parallel fill drained cleanly before this was returned.
    Cancelled,
    /// A worker panicked inside a parallel tile; the job drained and the
    /// panic payload was contained.
    WorkerPanic,
    /// A checkpoint snapshot could not be written by the configured
    /// [`CheckpointSink`](crate::CheckpointSink). The run is aborted
    /// rather than silently continuing without durability.
    CheckpointSave {
        /// Sink-provided reason (e.g. the I/O error).
        detail: String,
    },
    /// A checkpoint snapshot failed validation — framing/CRC damage,
    /// digest mismatch against the inputs, or structural inconsistency.
    /// Resume refuses to continue: a corrupt snapshot must surface as an
    /// error, never as a wrong alignment.
    CorruptCheckpoint {
        /// What failed to validate.
        detail: String,
    },
}

impl std::fmt::Display for AlignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlignError::Config(e) => write!(f, "invalid configuration: {e}"),
            AlignError::AlphabetMismatch { expected, found } => write!(
                f,
                "sequences must be encoded in the scoring scheme's alphabet \
                 (scheme: {expected}, sequence: {found})"
            ),
            AlignError::AllocFailed { bytes, what } => {
                write!(f, "allocation of {bytes} bytes for {what} failed")
            }
            AlignError::Cancelled => write!(f, "alignment cancelled"),
            AlignError::WorkerPanic => write!(f, "a worker panicked during a parallel fill"),
            AlignError::CheckpointSave { detail } => {
                write!(f, "failed to write checkpoint snapshot: {detail}")
            }
            AlignError::CorruptCheckpoint { detail } => {
                write!(f, "checkpoint snapshot rejected: {detail}")
            }
        }
    }
}

impl std::error::Error for AlignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AlignError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for AlignError {
    fn from(e: ConfigError) -> Self {
        AlignError::Config(e)
    }
}

impl From<JobError> for AlignError {
    fn from(e: JobError) -> Self {
        match e {
            JobError::TilePanicked => AlignError::WorkerPanic,
            JobError::Cancelled => AlignError::Cancelled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = AlignError::Config(ConfigError::KTooSmall { k: 1 });
        assert!(e.to_string().contains("k must be >= 2"));
        let e = AlignError::AllocFailed {
            bytes: 4096,
            what: "grid cache",
        };
        assert!(e.to_string().contains("4096"));
        assert!(e.to_string().contains("grid cache"));
        assert!(AlignError::Cancelled.to_string().contains("cancelled"));
    }

    #[test]
    fn job_errors_map_to_align_errors() {
        assert_eq!(
            AlignError::from(JobError::TilePanicked),
            AlignError::WorkerPanic
        );
        assert_eq!(AlignError::from(JobError::Cancelled), AlignError::Cancelled);
    }

    #[test]
    fn config_error_is_the_source() {
        use std::error::Error;
        let e = AlignError::Config(ConfigError::ZeroThreads);
        assert!(e.source().is_some());
        assert!(AlignError::Cancelled.source().is_none());
    }
}

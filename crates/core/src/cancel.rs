//! Cooperative cancellation for alignment runs.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between the
//! caller and the solver. The solver polls it at every recursion step and
//! before every parallel tile; when it fires, in-flight tiles finish,
//! the wavefront drains via `JobCore::abort()` + `wait_quiescent()`, and
//! the run returns [`crate::AlignError::Cancelled`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// Shared cancellation handle, optionally carrying a deadline.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that only fires when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that additionally fires once `timeout` has elapsed.
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
            }),
        }
    }

    /// Requests cancellation; every clone of this token observes it.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// True once cancellation was requested or the deadline passed.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .field("deadline", &self.inner.deadline)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_cancel_is_visible_to_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn elapsed_deadline_fires() {
        let t = CancelToken::with_deadline(Duration::from_secs(0));
        assert!(t.is_cancelled());
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }
}

//! Parallel FastLSA (paper §5): wavefront-parallel Fill Cache and Base
//! Case steps.
//!
//! Each fill is tiled and executed by [`flsa_wavefront::run_wavefront`].
//! Tile boundary values flow through [`DisjointBuf`]s: every tile writes
//! its own disjoint segment, every read of a neighbour's segment is
//! ordered behind its writer by the scheduler (see that type's safety
//! contract). The recursion and all tracebacks stay sequential, exactly
//! as in the paper — only FindScore-phase fills are parallel.

use flsa_dp::ScoreMatrix;
use flsa_trace::{TileKind, TileTracer};
use flsa_wavefront::DisjointBuf;

use crate::error::AlignError;
use crate::grid::{partition, Grid};
use crate::solver::Solver;

/// A tile panicking (including an injected [`crate::FaultHooks::on_tile`]
/// panic) or the job being cancelled both surface as a [`JobError`] from
/// the pool; [`AlignError::from`] maps them to `WorkerPanic`/`Cancelled`.
type FillResult = Result<(), AlignError>;

/// Builds tile bounds refining `block_bounds`: each block is subdivided
/// into `f` near-equal parts, so every block edge is also a tile edge
/// (that alignment is what lets grid rows/columns be read straight out of
/// the tile buffers).
pub(crate) fn refine_bounds(block_bounds: &[usize], f: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity((block_bounds.len() - 1) * f + 1);
    out.push(block_bounds[0]);
    for w in block_bounds.windows(2) {
        let len = w[1] - w[0];
        for part in partition(len, f).into_iter().skip(1) {
            out.push(w[0] + part);
        }
    }
    out
}

/// Parallel fillGridCache (paper Figure 13): tiles the `k_r × k_c` block
/// grid `f × f`, skips the tiles of the bottom-right block, and runs the
/// wavefront on the configured threads. On return `grid` is filled
/// identically to the sequential path.
pub(crate) fn fill_grid_parallel(
    solver: &mut Solver<'_>,
    a: &[u8],
    b: &[u8],
    top: &[i32],
    left: &[i32],
    grid: &mut Grid,
) -> FillResult {
    let par = solver
        .config
        .parallel
        .expect("parallel fill requires a parallel config"); // flsa-check: allow(unwrap) — guarded by threads() > 1
    let (rows, cols) = (a.len(), b.len());
    let k_r = grid.k_r();
    let k_c = grid.k_c();
    // Clamp the subdivision so every tile is non-empty.
    let f_r = par.tiles_per_block.min(rows / k_r).max(1);
    let f_c = par.tiles_per_block.min(cols / k_c).max(1);
    let trb = refine_bounds(&grid.row_bounds, f_r);
    let tcb = refine_bounds(&grid.col_bounds, f_c);
    let r_tiles = trb.len() - 1;
    let c_tiles = tcb.len() - 1;

    // Tile boundary storage: row `tr`'s bottom boundary and column `tc`'s
    // right boundary. (The last row/column slots are never read; keeping
    // them avoids index gymnastics.)
    // Charge the shared boundary storage against the run's budget before
    // building it; a refusal here degrades the run instead of aborting.
    let reserved = r_tiles * (cols + 1) + c_tiles * (rows + 1);
    solver
        .ctx
        .governor
        .reserve_i32(reserved, "parallel tile boundaries")?;
    let mut tile_rows = DisjointBuf::<i32>::new(r_tiles * (cols + 1));
    let mut tile_cols = DisjointBuf::<i32>::new(c_tiles * (rows + 1));
    let _mem = solver
        .metrics
        .track_alloc((tile_rows.len() + tile_cols.len()) * std::mem::size_of::<i32>());

    // Prefill the column-0 / row-0 entries of every boundary vector from
    // the rectangle's input boundary (tiles only write index ranges that
    // start at their own first interior coordinate).
    {
        let tr_slice = tile_rows.as_mut_slice();
        for tr in 0..r_tiles {
            tr_slice[tr * (cols + 1)] = left[trb[tr + 1]];
        }
        let tc_slice = tile_cols.as_mut_slice();
        for tc in 0..c_tiles {
            tc_slice[tc * (rows + 1)] = top[tcb[tc + 1]];
        }
    }

    // Tiles covering the bottom-right block are skipped (solved by the
    // recursion instead) — Fig. 13's u × v hole.
    let skip_r_from = (k_r - 1) * f_r;
    let skip_c_from = (k_c - 1) * f_c;
    let skip = move |tr: usize, tc: usize| tr >= skip_r_from && tc >= skip_c_from;

    let scheme = solver.scheme;
    let metrics = solver.metrics;
    let hooks = solver.ctx.hooks.clone();
    // The kernel handle is `Sync` (shared arena behind an `Arc`), so one
    // clone serves every worker; tiles draw their boundary scratch from
    // the arena instead of allocating four vectors per tile.
    let kernel = solver.kernel.clone();
    let trb_ref = &trb;
    let tcb_ref = &tcb;
    let tile_rows_ref = &tile_rows;
    let tile_cols_ref = &tile_cols;

    let work = move |tr: usize, tc: usize| {
        if let Some(h) = &hooks {
            h.on_tile(tr, tc);
        }
        let r0 = trb_ref[tr];
        let r1 = trb_ref[tr + 1];
        let c0 = tcb_ref[tc];
        let c1 = tcb_ref[tc + 1];
        let w = c1 - c0;
        let h = r1 - r0;

        // Assemble the tile's input boundary.
        // SAFETY (all unsafe blocks here): the wavefront scheduler orders
        // this tile after (tr-1, tc) and (tr, tc-1); every index read
        // below was written by one of those tiles, a transitively ordered
        // earlier tile, or the exclusive prefill above. Writes go to the
        // segment owned by this tile alone (interior coordinates only).
        let mut top_buf = kernel.arena().take(w + 1);
        if tr == 0 {
            top_buf.copy_from_slice(&top[c0..=c1]);
        } else {
            let base = (tr - 1) * (cols + 1);
            // SAFETY: reads the row segment written by tile (tr-1, tc),
            // ordered before this tile (block comment above).
            top_buf.copy_from_slice(unsafe { tile_rows_ref.slice(base + c0..base + c1 + 1) });
        }
        let mut left_buf = kernel.arena().take(h + 1);
        if tc == 0 {
            left_buf.copy_from_slice(&left[r0..=r1]);
        } else {
            let base = (tc - 1) * (rows + 1);
            // SAFETY: reads the column segment written by tile (tr, tc-1),
            // ordered before this tile (block comment above).
            left_buf.copy_from_slice(unsafe { tile_cols_ref.slice(base + r0..base + r1 + 1) });
        }

        let mut out_b = kernel.arena().take(w + 1);
        let mut out_r = kernel.arena().take(h + 1);
        kernel.fill_last_row_col(
            &a[r0..r1],
            &b[c0..c1],
            &top_buf,
            &left_buf,
            scheme,
            &mut out_b,
            Some(&mut out_r),
            metrics,
        );

        if tr + 1 < r_tiles && w > 0 {
            let base = tr * (cols + 1);
            // SAFETY: writes the interior row segment owned by this tile
            // alone (block comment above).
            let dst = unsafe { tile_rows_ref.slice_mut(base + c0 + 1..base + c1 + 1) };
            dst.copy_from_slice(&out_b[1..]);
        }
        if tc + 1 < c_tiles && h > 0 {
            let base = tc * (rows + 1);
            // SAFETY: writes the interior column segment owned by this tile
            // alone (block comment above).
            let dst = unsafe { tile_cols_ref.slice_mut(base + r0 + 1..base + r1 + 1) };
            dst.copy_from_slice(&out_r[1..]);
        }
        kernel.arena().put(top_buf);
        kernel.arena().put(left_buf);
        kernel.arena().put(out_b);
        kernel.arena().put(out_r);
    };

    let tracer = metrics
        .recorder()
        .map(|r| TileTracer::new(r, TileKind::GridFill));
    let token = solver.ctx.cancel.clone();
    let cancel_closure = token.as_ref().map(|t| move || t.is_cancelled());
    let cancel = cancel_closure
        .as_ref()
        .map(|c| c as &(dyn Fn() -> bool + Sync));
    let outcome = solver
        .pool
        .as_mut()
        .expect("parallel fill requires the worker pool") // flsa-check: allow(unwrap) — guarded by threads() > 1
        .run_traced(r_tiles, c_tiles, skip, &work, cancel, tracer.as_ref());
    solver.ctx.governor.release_i32(reserved);
    outcome?;

    // Extract the grid rows/columns: block edge s+1 is tile edge
    // (s+1)·f − 1's bottom boundary.
    let tile_rows = tile_rows.into_inner();
    for s in 0..k_r - 1 {
        let tr = (s + 1) * f_r - 1;
        grid.rows_cache[s].copy_from_slice(&tile_rows[tr * (cols + 1)..(tr + 1) * (cols + 1)]);
    }
    let tile_cols = tile_cols.into_inner();
    for t in 0..k_c - 1 {
        let tc = (t + 1) * f_c - 1;
        grid.cols_cache[t].copy_from_slice(&tile_cols[tc * (rows + 1)..(tc + 1) * (rows + 1)]);
    }
    Ok(())
}

/// Parallel Base Case fill (paper §5.1: the Base Case is tiled and
/// wavefronted exactly like Fill Cache, but every entry is stored).
/// Returns the full score matrix for the sequential traceback.
pub(crate) fn fill_base_parallel(
    solver: &mut Solver<'_>,
    a: &[u8],
    b: &[u8],
    top: &[i32],
    left: &[i32],
) -> Result<ScoreMatrix, AlignError> {
    let par = solver
        .config
        .parallel
        .expect("parallel fill requires a parallel config"); // flsa-check: allow(unwrap) — guarded by threads() > 1
    let (rows, cols) = (a.len(), b.len());
    let w = cols + 1;

    let reserved = (rows + 1) * w;
    solver
        .ctx
        .governor
        .reserve_i32(reserved, "parallel base-case matrix")?;
    let mut buf = DisjointBuf::<i32>::new((rows + 1) * w);
    {
        let s = buf.as_mut_slice();
        s[..w].copy_from_slice(top);
        for i in 0..=rows {
            s[i * w] = left[i];
        }
    }

    // Tile the rectangle for ~2 tiles per thread per wavefront.
    let tiles_r = (2 * par.threads).min(rows.max(1));
    let tiles_c = (2 * par.threads).min(cols.max(1));
    let trb = partition(rows, tiles_r);
    let tcb = partition(cols, tiles_c);

    let scheme = solver.scheme;
    let metrics = solver.metrics;
    let hooks = solver.ctx.hooks.clone();
    let gap = scheme.gap().linear_penalty();
    let matrix = scheme.matrix();
    let buf_ref = &buf;
    let trb_ref = &trb;
    let tcb_ref = &tcb;

    let work = move |tr: usize, tc: usize| {
        if let Some(h) = &hooks {
            h.on_tile(tr, tc);
        }
        let r0 = trb_ref[tr];
        let r1 = trb_ref[tr + 1];
        let c0 = tcb_ref[tc];
        let c1 = tcb_ref[tc + 1];
        // SAFETY: this tile exclusively owns interior cells
        // (r0+1..=r1) × (c0+1..=c1). Reads touch row r0 and column c0,
        // written by the tiles this one is scheduled after (or the
        // prefill), plus this tile's own earlier writes.
        unsafe {
            for i in r0 + 1..=r1 {
                let ai = a[i - 1];
                let mut diag = buf_ref.get((i - 1) * w + c0);
                let mut left_val = buf_ref.get(i * w + c0);
                for j in c0 + 1..=c1 {
                    let up = buf_ref.get((i - 1) * w + j);
                    let v = (diag + matrix.score(ai, b[j - 1]))
                        .max(up + gap)
                        .max(left_val + gap);
                    buf_ref.set(i * w + j, v);
                    left_val = v;
                    diag = up;
                }
            }
        }
        metrics.add_cells((r1 - r0) as u64 * (c1 - c0) as u64);
    };

    let tracer = metrics
        .recorder()
        .map(|r| TileTracer::new(r, TileKind::BaseFill));
    let token = solver.ctx.cancel.clone();
    let cancel_closure = token.as_ref().map(|t| move || t.is_cancelled());
    let cancel = cancel_closure
        .as_ref()
        .map(|c| c as &(dyn Fn() -> bool + Sync));
    let outcome = solver
        .pool
        .as_mut()
        .expect("parallel fill requires the worker pool") // flsa-check: allow(unwrap) — guarded by threads() > 1
        .run_traced(
            tiles_r,
            tiles_c,
            |_, _| false,
            &work,
            cancel,
            tracer.as_ref(),
        );
    solver.ctx.governor.release_i32(reserved);
    outcome?;

    Ok(ScoreMatrix::from_vec(rows, cols, buf.into_inner()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refine_bounds_aligns_block_edges() {
        let blocks = vec![0, 10, 20, 33];
        let tiles = refine_bounds(&blocks, 2);
        assert_eq!(tiles, vec![0, 5, 10, 15, 20, 26, 33]);
        // Every block edge appears among tile edges.
        for &e in &blocks {
            assert!(tiles.contains(&e));
        }
    }

    #[test]
    fn refine_with_factor_one_is_identity() {
        let blocks = vec![0, 7, 19];
        assert_eq!(refine_bounds(&blocks, 1), blocks);
    }
}

//! The memory governor and degradation ladder (DESIGN.md §9).
//!
//! The paper's central claim is that FastLSA *adapts to the amount of
//! memory available*. [`MemoryGovernor`] makes that adaptation a runtime
//! property: every structural allocation (the Base Case buffer, the grid
//! caches, the parallel tile boundaries) goes through fallible
//! reservation against an optional byte budget, and on
//! [`AlignError::AllocFailed`] the driver in [`crate::align_opts`]
//! retries down the ladder FM → FastLSA(smaller `BM`) → FastLSA(smaller
//! `k`) — bottoming out at the Hirschberg-style minimal footprint
//! (`k = 2`, a tiny base buffer) — recording each step as a trace event.

use std::cell::Cell;
use std::sync::Arc;

use flsa_metrics::{names, Counter, Gauge, Registry};

use crate::cancel::CancelToken;
use crate::checkpoint::CheckpointPolicy;
use crate::config::FastLsaConfig;
use crate::error::AlignError;

/// The smallest Base Case buffer the ladder will degrade to: enough for a
/// handful of rows, i.e. the Hirschberg-style footprint where virtually
/// everything is solved by recursion over linear boundaries.
pub const MIN_BASE_CELLS: usize = 64;

/// Deterministic fault-injection hooks, threaded through the solver by
/// [`crate::AlignOptions`]. Production runs pass `None`; the `flsa-fault`
/// harness implements this to inject failures at exact points.
pub trait FaultHooks: Send + Sync {
    /// Called before every governed allocation; returning `true` makes
    /// the allocation fail as if the budget or allocator refused it.
    fn on_alloc(&self, bytes: usize) -> bool {
        let _ = bytes;
        false
    }

    /// Called at the start of every parallel tile; may panic to simulate
    /// a worker fault (the wavefront contains it as a poisoned job).
    fn on_tile(&self, r: usize, c: usize) {
        let _ = (r, c);
    }

    /// Called once per recursion step with a monotone counter; the fault
    /// harness uses it to fire cancellation at an exact step.
    fn on_step(&self, step: u64) {
        let _ = step;
    }
}

/// Options for [`crate::align_opts`]: a byte budget for the governor,
/// a cancellation token, and (for the fault harness) injection hooks.
#[derive(Clone, Default)]
pub struct AlignOptions {
    /// Byte budget for the run's structural allocations; `None` = only
    /// the allocator itself (`try_reserve`) can refuse.
    pub budget_bytes: Option<usize>,
    /// Cooperative cancellation handle.
    pub cancel: Option<CancelToken>,
    /// Deterministic fault-injection hooks.
    pub hooks: Option<Arc<dyn FaultHooks>>,
    /// Periodic crash-safe snapshots of the recursion state
    /// (DESIGN.md §10); `None` = no checkpointing.
    pub checkpoint: Option<CheckpointPolicy>,
    /// DP kernel backend to use (DESIGN.md §11); `None` = auto-detect
    /// the best available SIMD backend.
    pub kernel: Option<flsa_dp::KernelBackend>,
    /// Metrics registry (DESIGN.md §12); `None` = no metrics are
    /// recorded. The same registry should also be attached to the run's
    /// [`flsa_dp::Metrics`] (via `with_registry`) so the DP-layer
    /// counters land next to the engine's.
    pub registry: Option<Arc<Registry>>,
}

/// Owns the run's byte budget and performs fallible allocation for the
/// solver's structural buffers.
pub struct MemoryGovernor {
    budget: Option<usize>,
    used: Cell<usize>,
    hooks: Option<Arc<dyn FaultHooks>>,
    metrics: Option<GovernorMetrics>,
}

/// Cached registry handles mirroring the governor's budget accounting.
struct GovernorMetrics {
    reserved: Gauge,
    peak: Gauge,
    refused: Counter,
}

impl MemoryGovernor {
    /// A governor with an optional byte budget and no fault hooks.
    pub fn new(budget_bytes: Option<usize>) -> Self {
        MemoryGovernor {
            budget: budget_bytes,
            used: Cell::new(0),
            hooks: None,
            metrics: None,
        }
    }

    pub(crate) fn with_hooks(
        budget_bytes: Option<usize>,
        hooks: Option<Arc<dyn FaultHooks>>,
        registry: Option<&Registry>,
    ) -> Self {
        let metrics = registry.map(|reg| {
            reg.gauge(names::MEM_BUDGET_BYTES)
                .set(budget_bytes.map(|b| b as i64).unwrap_or(0));
            GovernorMetrics {
                reserved: reg.gauge(names::MEM_RESERVED_BYTES),
                peak: reg.gauge(names::MEM_PEAK_BYTES),
                refused: reg.counter(names::MEM_REFUSED_TOTAL),
            }
        });
        MemoryGovernor {
            budget: budget_bytes,
            used: Cell::new(0),
            hooks,
            metrics,
        }
    }

    /// Bytes currently charged against the budget.
    pub fn used_bytes(&self) -> usize {
        self.used.get()
    }

    /// Mirrors the current usage (and its peak) into the registry.
    fn note_usage(&self) {
        if let Some(m) = &self.metrics {
            let used = self.used.get() as i64;
            m.reserved.set(used);
            m.peak.fetch_max(used);
        }
    }

    /// Counts one refused reservation in the registry.
    fn note_refused(&self) {
        if let Some(m) = &self.metrics {
            m.refused.inc();
        }
    }

    /// Charges `len * 4` bytes without allocating (for buffers owned by
    /// other types, e.g. the parallel fill's shared tile boundaries).
    /// Balance with [`MemoryGovernor::release`].
    pub fn reserve_i32(&self, len: usize, what: &'static str) -> Result<(), AlignError> {
        let bytes = len.saturating_mul(std::mem::size_of::<i32>());
        if let Some(h) = &self.hooks {
            if h.on_alloc(bytes) {
                self.note_refused();
                return Err(AlignError::AllocFailed { bytes, what });
            }
        }
        if let Some(budget) = self.budget {
            if self.used.get().saturating_add(bytes) > budget {
                self.note_refused();
                return Err(AlignError::AllocFailed { bytes, what });
            }
        }
        self.used.set(self.used.get() + bytes);
        self.note_usage();
        Ok(())
    }

    /// Fallibly allocates a zeroed `Vec<i32>` of length `len`, charging it
    /// against the budget. Fails via the injection hook, the byte budget,
    /// or the allocator's own `try_reserve`.
    pub fn try_alloc_i32(&self, len: usize, what: &'static str) -> Result<Vec<i32>, AlignError> {
        self.reserve_i32(len, what)?;
        let bytes = len.saturating_mul(std::mem::size_of::<i32>());
        let mut v: Vec<i32> = Vec::new();
        if v.try_reserve_exact(len).is_err() {
            self.release_i32(len);
            return Err(AlignError::AllocFailed { bytes, what });
        }
        v.resize(len, 0);
        Ok(v)
    }

    /// Returns `len * 4` bytes to the budget (the buffer was dropped).
    pub fn release_i32(&self, len: usize) {
        let bytes = len.saturating_mul(std::mem::size_of::<i32>());
        self.used.set(self.used.get().saturating_sub(bytes));
        self.note_usage();
    }

    /// Charges raw bytes against the budget *without* consulting the
    /// fault hooks, returning whether the budget admits them. Used for
    /// opportunistic caches (the kernel arena) whose refusal is handled
    /// by graceful fallback rather than the degradation ladder — routing
    /// them through `on_alloc` would shift the deterministic allocation
    /// counts the fault harness keys on. Balance with
    /// [`MemoryGovernor::release_bytes`].
    pub fn try_charge_bytes(&self, bytes: usize) -> bool {
        if let Some(budget) = self.budget {
            if self.used.get().saturating_add(bytes) > budget {
                self.note_refused();
                return false;
            }
        }
        self.used.set(self.used.get() + bytes);
        self.note_usage();
        true
    }

    /// Returns bytes charged via [`MemoryGovernor::try_charge_bytes`].
    pub fn release_bytes(&self, bytes: usize) {
        self.used.set(self.used.get().saturating_sub(bytes));
        self.note_usage();
    }
}

/// The next rung down the degradation ladder, or `None` at the bottom.
///
/// Order follows the paper's space/recomputation trade-off: first halve
/// the Base Case buffer (`BM` is the dominant term and shrinking it only
/// deepens the recursion), then halve `k` (fewer grid lines per level, at
/// the cost of more recomputation), bottoming out at `k = 2` with a
/// [`MIN_BASE_CELLS`] buffer — the Hirschberg-style minimal footprint.
pub fn next_rung(cfg: &FastLsaConfig) -> Option<FastLsaConfig> {
    if cfg.base_cells > MIN_BASE_CELLS {
        Some(FastLsaConfig {
            base_cells: (cfg.base_cells / 2).max(MIN_BASE_CELLS),
            ..*cfg
        })
    } else if cfg.k > 2 {
        Some(FastLsaConfig {
            k: (cfg.k / 2).max(2),
            ..*cfg
        })
    } else {
        None
    }
}

/// Every configuration [`crate::align_opts`] may retry with, starting
/// from `cfg` itself and ending at the minimal-footprint rung.
pub fn degradation_ladder(cfg: &FastLsaConfig) -> Vec<FastLsaConfig> {
    let mut out = vec![*cfg];
    let mut cur = *cfg;
    while let Some(next) = next_rung(&cur) {
        out.push(next);
        cur = next;
    }
    out
}

/// Per-run fallible-execution context threaded through the solver.
pub(crate) struct RunCtx {
    pub governor: MemoryGovernor,
    pub cancel: Option<CancelToken>,
    pub hooks: Option<Arc<dyn FaultHooks>>,
    /// Monotone recursion-step counter for `FaultHooks::on_step`.
    pub steps: Cell<u64>,
    /// Checkpoint cadence and sink, if the run is checkpointed.
    pub checkpoint: Option<CheckpointPolicy>,
}

impl RunCtx {
    pub fn from_options(opts: &AlignOptions) -> Self {
        RunCtx {
            governor: MemoryGovernor::with_hooks(
                opts.budget_bytes,
                opts.hooks.clone(),
                opts.registry.as_deref(),
            ),
            cancel: opts.cancel.clone(),
            hooks: opts.hooks.clone(),
            steps: Cell::new(0),
            checkpoint: opts.checkpoint.clone(),
        }
    }

    /// Advances the step counter, fires `on_step`, and reports whether
    /// the run is cancelled. Called at every recursion entry.
    pub fn step(&self) -> Result<(), AlignError> {
        let step = self.steps.get();
        self.steps.set(step + 1);
        if let Some(h) = &self.hooks {
            h.on_step(step);
        }
        self.check_cancelled()
    }

    pub fn check_cancelled(&self) -> Result<(), AlignError> {
        match &self.cancel {
            Some(t) if t.is_cancelled() => Err(AlignError::Cancelled),
            _ => Ok(()),
        }
    }
}

impl Default for RunCtx {
    fn default() -> Self {
        RunCtx::from_options(&AlignOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_refuses_oversized_allocations() {
        let g = MemoryGovernor::new(Some(1024));
        let v = g.try_alloc_i32(128, "small").unwrap();
        assert_eq!(v.len(), 128);
        assert_eq!(g.used_bytes(), 512);
        let err = g.try_alloc_i32(256, "too big").unwrap_err();
        assert!(matches!(err, AlignError::AllocFailed { bytes: 1024, .. }));
        g.release_i32(128);
        assert_eq!(g.used_bytes(), 0);
        g.try_alloc_i32(256, "fits now").unwrap();
    }

    #[test]
    fn unbudgeted_governor_allocates_freely() {
        let g = MemoryGovernor::new(None);
        let v = g.try_alloc_i32(1 << 16, "big").unwrap();
        assert_eq!(v.len(), 1 << 16);
    }

    #[test]
    fn charge_bytes_respects_budget_but_skips_hooks() {
        struct AlwaysFail;
        impl FaultHooks for AlwaysFail {
            fn on_alloc(&self, _bytes: usize) -> bool {
                true
            }
        }
        let g = MemoryGovernor::with_hooks(Some(1024), Some(Arc::new(AlwaysFail)), None);
        // Hooks refuse every governed allocation…
        assert!(g.try_alloc_i32(8, "hooked").is_err());
        // …but raw charges bypass them and only the budget applies.
        assert!(g.try_charge_bytes(1000));
        assert_eq!(g.used_bytes(), 1000);
        assert!(!g.try_charge_bytes(100), "over budget");
        assert_eq!(g.used_bytes(), 1000, "failed charge leaves usage alone");
        g.release_bytes(1000);
        assert_eq!(g.used_bytes(), 0);
    }

    #[test]
    fn hook_injects_alloc_failure() {
        struct FailSecond(std::sync::atomic::AtomicUsize);
        impl FaultHooks for FailSecond {
            fn on_alloc(&self, _bytes: usize) -> bool {
                self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed) == 1
            }
        }
        let g = MemoryGovernor::with_hooks(
            None,
            Some(Arc::new(FailSecond(std::sync::atomic::AtomicUsize::new(0)))),
            None,
        );
        g.try_alloc_i32(8, "first").unwrap();
        assert!(g.try_alloc_i32(8, "second").is_err());
        g.try_alloc_i32(8, "third").unwrap();
    }

    #[test]
    fn ladder_descends_to_minimal_footprint() {
        let cfg = FastLsaConfig {
            k: 8,
            base_cells: 1 << 20,
            parallel: None,
        };
        let ladder = degradation_ladder(&cfg);
        assert_eq!(ladder[0], cfg);
        // Strictly monotone descent: base_cells halves to the floor, then
        // k halves to 2.
        for w in ladder.windows(2) {
            let (a, b) = (w[0], w[1]);
            assert!(
                b.base_cells < a.base_cells || b.k < a.k,
                "no progress between rungs"
            );
            assert!(b.base_cells >= MIN_BASE_CELLS);
            assert!(b.k >= 2);
        }
        let bottom = *ladder.last().unwrap();
        assert_eq!(bottom.k, 2);
        assert_eq!(bottom.base_cells, MIN_BASE_CELLS);
        assert!(next_rung(&bottom).is_none());
        // The ladder is bounded: log2 steps in each dimension.
        assert!(ladder.len() < 64);
    }

    #[test]
    fn governor_mirrors_usage_into_the_registry() {
        let reg = Registry::new();
        let g = MemoryGovernor::with_hooks(Some(1024), None, Some(&reg));
        let v = g.try_alloc_i32(128, "small").unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.gauge(names::MEM_BUDGET_BYTES), Some(1024));
        assert_eq!(snap.gauge(names::MEM_RESERVED_BYTES), Some(512));
        assert_eq!(snap.gauge(names::MEM_PEAK_BYTES), Some(512));
        assert_eq!(snap.counter(names::MEM_REFUSED_TOTAL), Some(0));

        assert!(g.try_alloc_i32(256, "too big").is_err());
        drop(v);
        g.release_i32(128);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge(names::MEM_RESERVED_BYTES), Some(0));
        assert_eq!(snap.gauge(names::MEM_PEAK_BYTES), Some(512), "peak sticks");
        assert_eq!(snap.counter(names::MEM_REFUSED_TOTAL), Some(1));
    }

    #[test]
    fn run_ctx_steps_and_cancels() {
        let token = CancelToken::new();
        let ctx = RunCtx::from_options(&AlignOptions {
            cancel: Some(token.clone()),
            ..AlignOptions::default()
        });
        ctx.step().unwrap();
        ctx.step().unwrap();
        assert_eq!(ctx.steps.get(), 2);
        token.cancel();
        assert_eq!(ctx.step().unwrap_err(), AlignError::Cancelled);
    }
}

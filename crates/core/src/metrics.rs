//! Engine-level metrics handles (DESIGN.md §12).
//!
//! [`CoreMetrics`] caches the registry handles the solver touches on its
//! drive loop. Everything here is updated at the loop's consistent
//! points (the same places checkpoints are taken), so a snapshot taken
//! at any moment describes a coherent recursion state. The DP-layer
//! counters (cells, per-backend attribution) live in
//! [`flsa_dp::Metrics`]; the wavefront occupancy handles live in
//! [`flsa_wavefront::PoolMetrics`]; this struct covers what only the
//! recursion itself knows: blocks, depth, phase, and the kernel arena's
//! reuse behaviour.

use flsa_metrics::{names, Counter, Gauge, Registry};

/// Cached registry handles for the solver's drive loop.
pub(crate) struct CoreMetrics {
    pub blocks: Counter,
    pub solver_steps: Counter,
    pub depth: Gauge,
    pub depth_peak: Gauge,
    pub phase: Gauge,
    pub run_expected: Gauge,
    pub arena_held: Gauge,
    pub arena_fresh: Gauge,
    pub arena_reuses: Gauge,
}

impl CoreMetrics {
    /// Binds the engine handles in `reg`.
    pub fn new(reg: &Registry) -> Self {
        CoreMetrics {
            blocks: reg.counter(names::BLOCKS_FILLED_TOTAL),
            solver_steps: reg.counter(names::SOLVER_STEPS_TOTAL),
            depth: reg.gauge(names::RECURSION_DEPTH),
            depth_peak: reg.gauge(names::RECURSION_DEPTH_PEAK),
            phase: reg.gauge(names::PHASE),
            run_expected: reg.gauge(names::RUN_CELLS_EXPECTED),
            arena_held: reg.gauge(names::ARENA_HELD_BYTES),
            arena_fresh: reg.gauge(names::ARENA_FRESH_ALLOCS),
            arena_reuses: reg.gauge(names::ARENA_REUSES),
        }
    }
}

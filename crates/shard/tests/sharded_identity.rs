//! Clean-path properties of sharded execution: byte-identity with the
//! sequential engine across shard counts and grid shapes, typed
//! configuration errors, the in-process fallback when no worker can be
//! spawned, and liveness gauges returning to baseline.

use std::sync::Arc;

use fastlsa_core::{align_with, FastLsaConfig};
use flsa_dp::Metrics;
use flsa_metrics::{names, Registry};
use flsa_scoring::tables;
use flsa_seq::generate::homologous_pair;
use flsa_seq::{Alphabet, Sequence};
use flsa_shard::{align_sharded, ShardError, ShardOptions};

fn worker_cmd() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_flsa-shard-worker").to_string()]
}

fn pair(len: usize, seed: u64) -> (Sequence, Sequence) {
    homologous_pair("t", &Alphabet::dna(), len, 0.8, seed).expect("pair")
}

fn reference(a: &Sequence, b: &Sequence, gap: i32, cfg: FastLsaConfig) -> flsa_dp::AlignResult {
    let scheme = tables::scheme_by_name("dna", gap).expect("dna scheme");
    align_with(a, b, &scheme, cfg, &Metrics::new()).expect("reference align")
}

#[test]
fn sharded_is_byte_identical_across_shard_counts_and_grids() {
    for (len, seed, k, base) in [
        (90usize, 7u64, 4usize, 1usize << 10),
        (140, 11, 8, 1 << 9),
        (61, 13, 2, 1 << 12),
    ] {
        let (a, b) = pair(len, seed);
        let cfg = FastLsaConfig::new(k, base);
        let oracle = reference(&a, &b, -3, cfg);
        for shards in [1usize, 2, 4] {
            let opts = ShardOptions::new(shards, worker_cmd());
            let got = align_sharded(&a, &b, "dna", -3, cfg, &opts, &Metrics::new())
                .expect("sharded align");
            assert_eq!(got.score, oracle.score, "len={len} shards={shards}");
            assert_eq!(got.path, oracle.path, "len={len} shards={shards}");
        }
    }
}

#[test]
fn uneven_sequences_and_matrices_stay_identical() {
    let alpha = tables::scheme_by_name("blosum62", -6).expect("scheme");
    let (a, b) = homologous_pair("p", alpha.alphabet(), 77, 0.7, 21).expect("pair");
    // Skew the shapes: trim one side hard.
    let b = Sequence::from_codes("p-b", alpha.alphabet(), b.codes()[..29].to_vec());
    let cfg = FastLsaConfig::new(4, 1 << 9);
    let oracle = align_with(&a, &b, &alpha, cfg, &Metrics::new()).expect("reference");
    let opts = ShardOptions::new(3, worker_cmd());
    let got = align_sharded(&a, &b, "blosum62", -6, cfg, &opts, &Metrics::new()).expect("sharded");
    assert_eq!(got.score, oracle.score);
    assert_eq!(got.path, oracle.path);
}

#[test]
fn degenerate_inputs_run_in_process() {
    let scheme = tables::scheme_by_name("dna", -2).expect("scheme");
    let a = Sequence::from_str("a", scheme.alphabet(), "A").expect("seq");
    let b = Sequence::from_str("b", scheme.alphabet(), "ACGT").expect("seq");
    let cfg = FastLsaConfig::default();
    let oracle = align_with(&a, &b, &scheme, cfg, &Metrics::new()).expect("reference");
    // Even with a nonsense worker command: degenerate inputs never
    // spawn a process.
    let opts = ShardOptions::new(2, vec!["/nonexistent/worker".to_string()]);
    let got = align_sharded(&a, &b, "dna", -2, cfg, &opts, &Metrics::new()).expect("sharded");
    assert_eq!(got.score, oracle.score);
    assert_eq!(got.path, oracle.path);
}

#[test]
fn config_errors_are_typed() {
    let (a, b) = pair(40, 3);
    let cfg = FastLsaConfig::default();
    let cases: Vec<(ShardOptions, &str, &str)> = vec![
        (ShardOptions::new(0, worker_cmd()), "dna", "zero shards"),
        (
            ShardOptions::new(2, Vec::new()),
            "dna",
            "empty worker command",
        ),
        (ShardOptions::new(2, worker_cmd()), "nonesuch", "bad matrix"),
    ];
    for (opts, matrix, what) in cases {
        match align_sharded(&a, &b, matrix, -3, cfg, &opts, &Metrics::new()) {
            Err(ShardError::Config { .. }) => {}
            other => panic!("{what}: expected Config error, got {other:?}"),
        }
    }
}

#[test]
fn unspawnable_workers_fall_back_in_process_byte_identically() {
    let (a, b) = pair(70, 5);
    let cfg = FastLsaConfig::new(4, 1 << 10);
    let oracle = reference(&a, &b, -3, cfg);
    let registry = Arc::new(Registry::new());
    let mut opts = ShardOptions::new(2, vec!["/nonexistent/flsa-shard-worker".to_string()]);
    opts.registry = Some(Arc::clone(&registry));
    let got = align_sharded(&a, &b, "dna", -3, cfg, &opts, &Metrics::new()).expect("fallback");
    assert_eq!(got.score, oracle.score);
    assert_eq!(got.path, oracle.path);
    // Everything ran on the coordinator.
    assert!(registry.counter(names::SHARD_TASKS_INPROCESS_TOTAL).get() > 0);
    assert_eq!(
        registry.counter(names::SHARD_TASKS_COMPLETED_TOTAL).get(),
        0
    );

    // And with the fallback disabled, the same fleet is a typed error.
    let mut opts = ShardOptions::new(2, vec!["/nonexistent/flsa-shard-worker".to_string()]);
    opts.policy.fallback_inprocess = false;
    match align_sharded(&a, &b, "dna", -3, cfg, &opts, &Metrics::new()) {
        Err(ShardError::NoWorkers { .. }) => {}
        other => panic!("expected NoWorkers, got {other:?}"),
    }
}

#[test]
fn healthy_run_counts_tasks_and_returns_gauges_to_baseline() {
    let (a, b) = pair(100, 9);
    let cfg = FastLsaConfig::new(4, 1 << 10);
    let registry = Arc::new(Registry::new());
    let mut opts = ShardOptions::new(2, worker_cmd());
    opts.registry = Some(Arc::clone(&registry));
    // A cadence fast enough that even this small run sees beats.
    opts.policy.heartbeat_ms = 1;
    let oracle = reference(&a, &b, -3, cfg);
    let got = align_sharded(&a, &b, "dna", -3, cfg, &opts, &Metrics::new()).expect("sharded");
    assert_eq!(got.path, oracle.path);

    let dispatched = registry.counter(names::SHARD_TASKS_DISPATCHED_TOTAL).get();
    let completed = registry.counter(names::SHARD_TASKS_COMPLETED_TOTAL).get();
    assert!(
        dispatched >= 15,
        "expected a real task fan-out, got {dispatched}"
    );
    assert_eq!(completed, dispatched, "every dispatch completed");
    assert_eq!(
        registry.counter(names::SHARD_WORKERS_SPAWNED_TOTAL).get(),
        2
    );
    assert!(registry.counter(names::SHARD_HEARTBEATS_TOTAL).get() > 0);
    for gauge in [
        names::SHARD_WORKERS_LIVE,
        names::SHARD_WORKERS_QUARANTINED,
        names::SHARD_TASKS_INFLIGHT,
    ] {
        assert_eq!(registry.gauge(gauge).get(), 0, "{gauge} not at baseline");
    }
}

//! The coordinator chaos matrix (ISSUE 9 acceptance).
//!
//! ≥ 24 seeded [`ShardFaultPlan`]s — real worker SIGKILLs, hangs with
//! the write lock held, CRC-corrupted results, and mid-frame pipe
//! stalls, at early/mid/late wavefront phases, against single slots and
//! whole fleets, with clean and cursed respawns — each run against the
//! sequential engine as oracle. With the in-process fallback enabled
//! (the default), **every** plan must end byte-identical to the
//! unsharded baseline: the reassignment ladder guarantees completion,
//! whatever the fleet does. With the fallback disabled, a fleet-killing
//! plan must surface as a typed [`ShardError::NoWorkers`] — never a
//! hang (each plan runs under a watchdog) or a wrong answer. After
//! every plan, the worker-liveness gauges must be back at baseline.

use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use fastlsa_core::{align_with, FastLsaConfig};
use flsa_dp::{AlignResult, Metrics};
use flsa_fault::shard::{chaos_matrix, ShardFaultKind, ShardFaultPlan};
use flsa_metrics::{names, Registry};
use flsa_scoring::tables;
use flsa_seq::generate::homologous_pair;
use flsa_seq::Sequence;
use flsa_shard::{align_sharded, ShardError, ShardOptions, ShardPolicy};

/// Far beyond any healthy plan; hitting it means the coordinator lost
/// track of a task or deadlocked on a dead fleet.
const WATCHDOG: Duration = Duration::from_secs(60);

/// Detection windows tuned for the chaos inputs: hangs and stalls are
/// reclaimed in a quarter second, so the whole matrix stays fast.
fn chaos_policy() -> ShardPolicy {
    ShardPolicy {
        task_timeout: Duration::from_millis(500),
        heartbeat_ms: 5,
        heartbeat_timeout: Duration::from_millis(250),
        max_task_attempts: 3,
        quarantine_after: 2,
        max_spawns: 0,
        backoff: Duration::from_millis(2),
        fallback_inprocess: true,
    }
}

fn chaos_opts(plan: &ShardFaultPlan, registry: &Arc<Registry>) -> ShardOptions {
    let mut opts = ShardOptions::new(
        plan.shards,
        vec![env!("CARGO_BIN_EXE_flsa-shard-worker").to_string()],
    );
    opts.worker_faults = plan.worker_faults();
    opts.refault_respawns = plan.refault_respawns;
    opts.policy = chaos_policy();
    opts.registry = Some(Arc::clone(registry));
    opts
}

/// Runs one plan under the watchdog; panics on timeout or an escaped
/// panic.
fn run_plan(
    label: &str,
    a: &Sequence,
    b: &Sequence,
    cfg: FastLsaConfig,
    opts: ShardOptions,
) -> Result<AlignResult, ShardError> {
    let (tx, rx) = mpsc::channel();
    let (a, b) = (a.clone(), b.clone());
    thread::spawn(move || {
        let out = align_sharded(&a, &b, "dna", -3, cfg, &opts, &Metrics::new());
        tx.send(out).ok();
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(out) => out,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("{label}: no result within {WATCHDOG:?} — coordinator deadlocked")
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            panic!("{label}: panic escaped align_sharded")
        }
    }
}

#[test]
fn every_chaos_plan_ends_byte_identical_with_gauges_at_baseline() {
    let scheme = tables::scheme_by_name("dna", -3).expect("dna scheme");
    let (a, b) = homologous_pair("chaos", scheme.alphabet(), 110, 0.8, 0xC4A0).expect("pair");
    let cfg = FastLsaConfig::new(4, 1 << 10);
    let oracle = align_with(&a, &b, &scheme, cfg, &Metrics::new()).expect("oracle");

    let plans = chaos_matrix();
    assert!(plans.len() >= 24, "matrix shrank to {} plans", plans.len());

    // Fault-machinery coverage accumulated across the matrix; asserted
    // at the end so a silently-never-firing fault class can't pass.
    let (mut killed, mut reassigned, mut corrupt, mut inprocess) = (0u64, 0u64, 0u64, 0u64);

    for plan in &plans {
        let label = plan.label();
        let registry = Arc::new(Registry::new());
        let opts = chaos_opts(plan, &registry);
        let got = run_plan(&label, &a, &b, cfg, opts)
            .unwrap_or_else(|e| panic!("{label}: fallback-enabled plan failed: {e}"));
        assert_eq!(got.score, oracle.score, "{label}: score differs");
        assert_eq!(got.path, oracle.path, "{label}: path differs");

        for gauge in [
            names::SHARD_WORKERS_LIVE,
            names::SHARD_WORKERS_QUARANTINED,
            names::SHARD_TASKS_INFLIGHT,
        ] {
            assert_eq!(
                registry.gauge(gauge).get(),
                0,
                "{label}: {gauge} not back at baseline"
            );
        }
        killed += registry.counter(names::SHARD_WORKERS_KILLED_TOTAL).get();
        reassigned += registry.counter(names::SHARD_TASKS_REASSIGNED_TOTAL).get();
        corrupt += registry.counter(names::SHARD_RESULTS_CORRUPT_TOTAL).get();
        inprocess += registry.counter(names::SHARD_TASKS_INPROCESS_TOTAL).get();
    }

    assert!(killed > 0, "no worker was ever killed — faults never fired");
    assert!(reassigned > 0, "no task was ever reassigned");
    assert!(corrupt > 0, "no corrupt result was ever detected");
    // The cursed whole-fleet plans must have pushed at least one task
    // down to the coordinator's in-process rung.
    assert!(inprocess > 0, "the in-process rung was never exercised");
}

#[test]
fn fleet_killing_plan_without_fallback_is_a_typed_error() {
    let scheme = tables::scheme_by_name("dna", -3).expect("dna scheme");
    let (a, b) = homologous_pair("nofb", scheme.alphabet(), 90, 0.8, 0xF00).expect("pair");
    let cfg = FastLsaConfig::new(4, 1 << 10);
    let oracle = align_with(&a, &b, &scheme, cfg, &Metrics::new()).expect("oracle");

    // Find whole-fleet kill plans (with cursed respawns they must drive
    // every slot into quarantine).
    let mut checked = 0;
    for plan in chaos_matrix() {
        if !(plan.kind == ShardFaultKind::WorkerKill
            && plan.faulty == plan.shards
            && plan.refault_respawns)
        {
            continue;
        }
        checked += 1;
        let registry = Arc::new(Registry::new());
        let mut opts = chaos_opts(&plan, &registry);
        opts.policy.fallback_inprocess = false;
        // With the fallback off, per-task in-process execution is the
        // only escape; force the error path by exhausting slots first.
        opts.policy.max_task_attempts = u32::MAX;
        match run_plan(&plan.label(), &a, &b, cfg, opts) {
            Err(ShardError::NoWorkers { .. }) => {}
            Ok(got) => {
                // Legitimate only if the fault ordinal never fired.
                assert_eq!(got.path, oracle.path, "{}: wrong answer", plan.label());
            }
            Err(other) => panic!("{}: expected NoWorkers, got {other}", plan.label()),
        }
        for gauge in [names::SHARD_WORKERS_LIVE, names::SHARD_TASKS_INFLIGHT] {
            assert_eq!(registry.gauge(gauge).get(), 0, "{gauge} leaked");
        }
    }
    // A synthetic guaranteed-fleet-killer in case the seeded matrix
    // rotates away from the combination.
    if checked == 0 {
        let plan = ShardFaultPlan {
            seed: u64::MAX,
            kind: ShardFaultKind::WorkerKill,
            phase: flsa_fault::shard::FaultPhase::Early,
            shards: 2,
            faulty: 2,
            at_task: 0,
            slow_ms: 0,
            refault_respawns: true,
        };
        let registry = Arc::new(Registry::new());
        let mut opts = chaos_opts(&plan, &registry);
        opts.policy.fallback_inprocess = false;
        opts.policy.max_task_attempts = u32::MAX;
        match run_plan("synthetic fleet-kill", &a, &b, cfg, opts) {
            Err(ShardError::NoWorkers { .. }) => {}
            other => panic!("synthetic fleet-kill: expected NoWorkers, got {other:?}"),
        }
    }
}

//! **flsa-shard** — fault-tolerant multi-process sharded FastLSA
//! execution (DESIGN.md §15).
//!
//! A [`coordinator`] owns the grid cache and farms Fill-Cache and
//! Base-Case block tasks out to worker *processes* over the
//! CRC32-framed `FLSASHD1` pipe [`protocol`] (the same allocation-safe
//! wire discipline as `FLSACKP1` checkpoints). The [`worker`] side is
//! deliberately dumb — read task, [`compute`], write result — because
//! all fault tolerance lives on the coordinator's side of the pipe:
//!
//! - per-task **deadlines** and **heartbeats** detect dead, hung, and
//!   wedged workers;
//! - failed tasks are **reassigned** with bounded backoff, and a task
//!   that keeps failing runs **in-process** on the coordinator;
//! - repeatedly-failing worker slots are **quarantined**, and when
//!   every slot is gone the run degrades to sequential in-process
//!   execution (or a typed [`ShardError::NoWorkers`]);
//! - CRC-failing or semantically invalid results burn the offending
//!   worker's trust and are recomputed.
//!
//! The headline guarantee: [`align_sharded`] is **byte-identical** to
//! the sequential engine's output under *any* mix of worker failures —
//! the chaos matrix in `flsa_fault::shard` kills, hangs, corrupts, and
//! stalls workers at every wavefront phase and asserts exactly that.

#![forbid(unsafe_code)]

pub mod compute;
pub mod coordinator;
pub mod protocol;
pub mod worker;

pub use coordinator::{align_sharded, ShardError, ShardOptions, ShardPolicy};
pub use protocol::{Frame, TaskKind, TaskOutput, TaskSpec, WireError};
pub use worker::{WorkerFault, WorkerOptions};

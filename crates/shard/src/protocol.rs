//! The `FLSASHD1` coordinator↔worker wire protocol (DESIGN.md §15).
//!
//! Both directions of a worker pipe open with the 8-byte preamble
//! `FLSASHD1`; after that the stream is length-prefixed frames:
//!
//! ```text
//! +-------------+---------+------------------+---------------------+
//! | len: u32 LE | tag: u8 | body (tag-based) | crc32(tag+body) u32 |
//! +-------------+---------+------------------+---------------------+
//! ```
//!
//! `len` counts everything after the prefix (tag + body + crc) and must
//! be `5..=MAX_FRAME`. The body is encoded with the checkpoint crate's
//! [`flsa_checkpoint::wire`] primitives — the same CRC32 framing and
//! allocation-bomb-safe cursor the `FLSACKP1` snapshot format uses, so
//! a corrupted inner length rejects *before* any allocation and a
//! bit-flipped result frame fails its checksum instead of producing a
//! wrong alignment.
//!
//! Failure taxonomy mirrors `FLSASRV1`:
//!
//! * [`WireError::Frame`] — the length prefix is damaged or the stream
//!   died mid-frame; framing is lost and the peer is untrustworthy.
//! * [`WireError::Malformed`] — a well-framed payload that fails its
//!   CRC or does not parse. The coordinator treats this exactly like a
//!   dead worker: the result is discarded and the task reassigned,
//!   because a peer that ships one corrupt frame cannot be trusted to
//!   frame the next one correctly.

use std::io::{Read, Write};

use flsa_checkpoint::wire::{crc32, Cur, Enc};
use flsa_checkpoint::CheckpointError;

/// Pipe preamble: protocol name + version, written by both sides
/// immediately after the pipe opens.
pub const PREAMBLE: &[u8; 8] = b"FLSASHD1";

/// Hard cap on a frame (tag + body + crc). Large enough for a grid
/// block's sequence slices and boundaries at any realistic split, small
/// enough that a hostile length prefix cannot OOM the coordinator.
pub const MAX_FRAME: usize = 64 << 20;

/// Typed decode/transport failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Framing damage: length prefix invalid or stream died mid-frame.
    Frame {
        /// What was wrong with the framing.
        detail: String,
    },
    /// A complete frame that failed its CRC or did not parse.
    Malformed {
        /// What failed to verify or parse.
        detail: String,
    },
    /// Transport I/O error.
    Io {
        /// The underlying error.
        detail: String,
    },
    /// Clean end-of-stream between frames.
    Closed,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Frame { detail } => write!(f, "framing error: {detail}"),
            WireError::Malformed { detail } => write!(f, "malformed frame: {detail}"),
            WireError::Io { detail } => write!(f, "i/o error: {detail}"),
            WireError::Closed => write!(f, "pipe closed"),
        }
    }
}

impl std::error::Error for WireError {}

fn malformed(e: CheckpointError) -> WireError {
    WireError::Malformed {
        detail: e.to_string(),
    }
}

/// What a task asks the worker to compute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskKind {
    /// Fill-Cache: compute the block's last row and/or last column.
    Fill {
        /// Return the bottom boundary row (`cols + 1` values).
        want_bottom: bool,
        /// Return the right boundary column (`rows + 1` values).
        want_right: bool,
    },
    /// Base-Case: fill the block's full matrix and trace back from
    /// `head` (block-local coordinates) to the block's top/left edge.
    Trace {
        /// Traceback entry point, block-local, `1 ≤ head ≤ (rows, cols)`.
        head: (u64, u64),
    },
}

/// One self-contained block task. Everything the worker needs is in the
/// spec — sequences as alphabet codes, exact input boundaries, and the
/// named scheme — so a reassigned task can go to a freshly spawned
/// worker with no session state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    /// Coordinator-chosen id, echoed on the result.
    pub task_id: u64,
    /// Named substitution matrix (`dna`, `blosum62`, `pam250`,
    /// `identity`, `paper`) — the registry in
    /// [`flsa_scoring::tables::scheme_by_name`].
    pub matrix: String,
    /// Linear gap penalty.
    pub gap: i32,
    /// Block slice of sequence A, as alphabet codes (`rows` residues).
    pub a: Vec<u8>,
    /// Block slice of sequence B, as alphabet codes (`cols` residues).
    pub b: Vec<u8>,
    /// Input top boundary, length `cols + 1`.
    pub top: Vec<i32>,
    /// Input left boundary, length `rows + 1`.
    pub left: Vec<i32>,
    /// What to compute.
    pub kind: TaskKind,
}

/// A completed task's payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskOutput {
    /// Fill-Cache result. Boundaries not requested come back empty.
    Fill {
        /// Bottom boundary row (`cols + 1` values, or empty).
        bottom: Vec<i32>,
        /// Right boundary column (`rows + 1` values, or empty).
        right: Vec<i32>,
    },
    /// Base-Case result: the traceback segment and where it left the
    /// block.
    Trace {
        /// Path moves in traceback order (end → start), as
        /// [`flsa_dp::Move`] codes.
        rev_moves: Vec<u8>,
        /// Block-local exit point on the top row or left column.
        exit: (u64, u64),
    },
}

/// Every frame the protocol speaks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Worker → coordinator: alive and ready, sent once after the
    /// preamble.
    Hello {
        /// Worker process id (for diagnostics and hard kills).
        pid: u32,
    },
    /// Coordinator → worker: execute a task.
    Task(TaskSpec),
    /// Worker → coordinator: task finished.
    Result {
        /// Echoed task id.
        task_id: u64,
        /// The computed payload.
        output: TaskOutput,
    },
    /// Worker → coordinator: periodic liveness beacon.
    Heartbeat {
        /// Monotonic per-worker sequence number.
        seq: u64,
    },
    /// Coordinator → worker: finish up and exit cleanly.
    Shutdown,
}

const TAG_HELLO: u8 = 0x01;
const TAG_TASK: u8 = 0x02;
const TAG_RESULT: u8 = 0x03;
const TAG_HEARTBEAT: u8 = 0x04;
const TAG_SHUTDOWN: u8 = 0x05;

const KIND_FILL: u8 = 0x01;
const KIND_TRACE: u8 = 0x02;

const OUT_FILL: u8 = 0x01;
const OUT_TRACE: u8 = 0x02;

// --- encoding ------------------------------------------------------------

/// Encodes `frame` as tag + body, without length prefix or CRC.
fn encode_body(frame: &Frame) -> Vec<u8> {
    let mut e = Enc::default();
    match frame {
        Frame::Hello { pid } => {
            e.u8(TAG_HELLO);
            e.u32(*pid);
        }
        Frame::Task(t) => {
            e.u8(TAG_TASK);
            e.u64(t.task_id);
            e.str(&t.matrix);
            e.i32(t.gap);
            e.bytes(&t.a);
            e.bytes(&t.b);
            e.i32s(&t.top);
            e.i32s(&t.left);
            match &t.kind {
                TaskKind::Fill {
                    want_bottom,
                    want_right,
                } => {
                    e.u8(KIND_FILL);
                    e.u8(*want_bottom as u8);
                    e.u8(*want_right as u8);
                }
                TaskKind::Trace { head } => {
                    e.u8(KIND_TRACE);
                    e.u64(head.0);
                    e.u64(head.1);
                }
            }
        }
        Frame::Result { task_id, output } => {
            e.u8(TAG_RESULT);
            e.u64(*task_id);
            match output {
                TaskOutput::Fill { bottom, right } => {
                    e.u8(OUT_FILL);
                    e.i32s(bottom);
                    e.i32s(right);
                }
                TaskOutput::Trace { rev_moves, exit } => {
                    e.u8(OUT_TRACE);
                    e.bytes(rev_moves);
                    e.u64(exit.0);
                    e.u64(exit.1);
                }
            }
        }
        Frame::Heartbeat { seq } => {
            e.u8(TAG_HEARTBEAT);
            e.u64(*seq);
        }
        Frame::Shutdown => e.u8(TAG_SHUTDOWN),
    }
    e.buf
}

/// Encodes `frame` with length prefix and CRC — the exact pipe bytes.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let body = encode_body(frame);
    let crc = crc32(&body);
    let mut out = Vec::with_capacity(4 + body.len() + 4);
    out.extend_from_slice(&((body.len() + 4) as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Writes one frame (single `write_all`, so writers holding the same
/// lock interleave at frame granularity).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    let bytes = encode_frame(frame);
    w.write_all(&bytes).map_err(|e| WireError::Io {
        detail: e.to_string(),
    })?;
    w.flush().map_err(|e| WireError::Io {
        detail: e.to_string(),
    })
}

// --- decoding ------------------------------------------------------------

/// Decodes one CRC-verified payload (tag + body) into a [`Frame`].
pub fn decode_body(body: &[u8]) -> Result<Frame, WireError> {
    let mut c = Cur::new(body);
    let tag = c.u8().map_err(malformed)?;
    let frame = match tag {
        TAG_HELLO => Frame::Hello {
            pid: c.u32().map_err(malformed)?,
        },
        TAG_TASK => {
            let task_id = c.u64().map_err(malformed)?;
            let matrix = c.str().map_err(malformed)?;
            if matrix.len() > 64 {
                return Err(WireError::Malformed {
                    detail: format!("matrix name of {} bytes", matrix.len()),
                });
            }
            let gap = c.i32().map_err(malformed)?;
            let a = c.bytes().map_err(malformed)?;
            let b = c.bytes().map_err(malformed)?;
            let top = c.i32s().map_err(malformed)?;
            let left = c.i32s().map_err(malformed)?;
            let kind = match c.u8().map_err(malformed)? {
                KIND_FILL => TaskKind::Fill {
                    want_bottom: c.u8().map_err(malformed)? != 0,
                    want_right: c.u8().map_err(malformed)? != 0,
                },
                KIND_TRACE => TaskKind::Trace {
                    head: (c.u64().map_err(malformed)?, c.u64().map_err(malformed)?),
                },
                other => {
                    return Err(WireError::Malformed {
                        detail: format!("unknown task kind 0x{other:02x}"),
                    })
                }
            };
            Frame::Task(TaskSpec {
                task_id,
                matrix,
                gap,
                a,
                b,
                top,
                left,
                kind,
            })
        }
        TAG_RESULT => {
            let task_id = c.u64().map_err(malformed)?;
            let output = match c.u8().map_err(malformed)? {
                OUT_FILL => TaskOutput::Fill {
                    bottom: c.i32s().map_err(malformed)?,
                    right: c.i32s().map_err(malformed)?,
                },
                OUT_TRACE => TaskOutput::Trace {
                    rev_moves: c.bytes().map_err(malformed)?,
                    exit: (c.u64().map_err(malformed)?, c.u64().map_err(malformed)?),
                },
                other => {
                    return Err(WireError::Malformed {
                        detail: format!("unknown output kind 0x{other:02x}"),
                    })
                }
            };
            Frame::Result { task_id, output }
        }
        TAG_HEARTBEAT => Frame::Heartbeat {
            seq: c.u64().map_err(malformed)?,
        },
        TAG_SHUTDOWN => Frame::Shutdown,
        other => {
            return Err(WireError::Malformed {
                detail: format!("unknown frame tag 0x{other:02x}"),
            })
        }
    };
    if !c.done() {
        return Err(WireError::Malformed {
            detail: format!("{} trailing bytes after last field", c.remaining()),
        });
    }
    Ok(frame)
}

/// Validates a frame length prefix before any buffer is reserved.
pub fn check_frame_len(len: u32) -> Result<usize, WireError> {
    let len = len as usize;
    if len < 5 {
        return Err(WireError::Frame {
            detail: format!("frame length {len} below the 5-byte minimum"),
        });
    }
    if len > MAX_FRAME {
        return Err(WireError::Frame {
            detail: format!("frame length {len} exceeds cap {MAX_FRAME}"),
        });
    }
    Ok(len)
}

/// Reads one frame from a blocking reader, verifying its CRC. A clean
/// EOF *between* frames is [`WireError::Closed`]; an EOF mid-frame is
/// framing damage.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Err(WireError::Closed),
            Ok(0) => {
                return Err(WireError::Frame {
                    detail: "eof inside frame length".to_string(),
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                return Err(WireError::Io {
                    detail: e.to_string(),
                })
            }
        }
    }
    let len = check_frame_len(u32::from_le_bytes(len_buf))?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Frame {
                detail: "eof inside frame payload".to_string(),
            }
        } else {
            WireError::Io {
                detail: e.to_string(),
            }
        }
    })?;
    let (body, crc_bytes) = payload.split_at(len - 4);
    let want = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    let got = crc32(body);
    if want != got {
        return Err(WireError::Malformed {
            detail: format!("crc mismatch: frame says {want:#010x}, bytes hash to {got:#010x}"),
        });
    }
    decode_body(body)
}

/// Writes the preamble.
pub fn write_preamble(w: &mut impl Write) -> Result<(), WireError> {
    w.write_all(PREAMBLE).map_err(|e| WireError::Io {
        detail: e.to_string(),
    })?;
    w.flush().map_err(|e| WireError::Io {
        detail: e.to_string(),
    })
}

/// Reads and validates the peer's preamble.
pub fn read_preamble(r: &mut impl Read) -> Result<(), WireError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Closed
        } else {
            WireError::Io {
                detail: e.to_string(),
            }
        }
    })?;
    if &buf != PREAMBLE {
        return Err(WireError::Frame {
            detail: format!("bad preamble {buf:02x?}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_task() -> TaskSpec {
        TaskSpec {
            task_id: 42,
            matrix: "dna".to_string(),
            gap: -4,
            a: vec![0, 1, 2, 3],
            b: vec![3, 2, 1],
            top: vec![0, -4, -8, -12],
            left: vec![0, -4, -8, -12, -16],
            kind: TaskKind::Fill {
                want_bottom: true,
                want_right: false,
            },
        }
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { pid: 1234 },
            Frame::Task(sample_task()),
            Frame::Task(TaskSpec {
                kind: TaskKind::Trace { head: (4, 3) },
                ..sample_task()
            }),
            Frame::Result {
                task_id: 42,
                output: TaskOutput::Fill {
                    bottom: vec![1, 2, 3, 4],
                    right: vec![],
                },
            },
            Frame::Result {
                task_id: 43,
                output: TaskOutput::Trace {
                    rev_moves: vec![0, 1, 2, 0],
                    exit: (0, 2),
                },
            },
            Frame::Heartbeat { seq: 7 },
            Frame::Shutdown,
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for f in sample_frames() {
            let wire = encode_frame(&f);
            let mut cursor = std::io::Cursor::new(wire);
            assert_eq!(read_frame(&mut cursor).unwrap(), f, "{f:?}");
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        // The CRC (plus the length/tag checks) must catch any one-byte
        // corruption anywhere in the frame — this is what lets the
        // coordinator treat a CorruptResult fault as a typed failure
        // instead of a wrong alignment.
        let wire = encode_frame(&Frame::Result {
            task_id: 9,
            output: TaskOutput::Fill {
                bottom: vec![5, -6, 7],
                right: vec![8],
            },
        });
        for i in 0..wire.len() {
            for bit in 0..8 {
                let mut bad = wire.clone();
                bad[i] ^= 1 << bit;
                let mut cursor = std::io::Cursor::new(bad);
                match read_frame(&mut cursor) {
                    Ok(f) => panic!("flip at byte {i} bit {bit} decoded as {f:?}"),
                    Err(
                        WireError::Frame { .. }
                        | WireError::Malformed { .. }
                        | WireError::Io { .. },
                    ) => {}
                    Err(WireError::Closed) => panic!("flip at byte {i} bit {bit} read as Closed"),
                }
            }
        }
    }

    #[test]
    fn truncation_is_framing_damage() {
        let wire = encode_frame(&Frame::Heartbeat { seq: 3 });
        for cut in 1..wire.len() {
            let mut cursor = std::io::Cursor::new(wire[..cut].to_vec());
            let err = read_frame(&mut cursor).unwrap_err();
            assert!(matches!(err, WireError::Frame { .. }), "cut={cut}: {err:?}");
        }
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert_eq!(read_frame(&mut empty).unwrap_err(), WireError::Closed);
    }

    #[test]
    fn allocation_bomb_lengths_reject_before_allocation() {
        // A Task frame whose inner sequence length claims 2^60 elements:
        // the checkpoint cursor validates against remaining bytes first.
        let mut e = Enc::default();
        e.u8(TAG_TASK);
        e.u64(1); // task id
        e.str("dna");
        e.i32(-4);
        e.u64(1 << 60); // hostile length prefix for `a`
        let crc = crc32(&e.buf);
        let mut wire = Vec::new();
        wire.extend_from_slice(&((e.buf.len() + 4) as u32).to_le_bytes());
        wire.extend_from_slice(&e.buf);
        wire.extend_from_slice(&crc.to_le_bytes());
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cursor).unwrap_err(),
            WireError::Malformed { .. }
        ));
    }

    #[test]
    fn trailing_junk_is_malformed() {
        let mut body = encode_body(&Frame::Shutdown);
        body.push(0);
        let crc = crc32(&body);
        let mut wire = Vec::new();
        wire.extend_from_slice(&((body.len() + 4) as u32).to_le_bytes());
        wire.extend_from_slice(&body);
        wire.extend_from_slice(&crc.to_le_bytes());
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cursor).unwrap_err(),
            WireError::Malformed { .. }
        ));
    }

    #[test]
    fn preamble_round_trips_and_rejects_garbage() {
        let mut buf = Vec::new();
        write_preamble(&mut buf).unwrap();
        assert_eq!(&buf, PREAMBLE);
        let mut cursor = std::io::Cursor::new(buf);
        read_preamble(&mut cursor).unwrap();
        let mut bad = std::io::Cursor::new(b"FLSASRV1".to_vec());
        assert!(matches!(
            read_preamble(&mut bad).unwrap_err(),
            WireError::Frame { .. }
        ));
    }
}

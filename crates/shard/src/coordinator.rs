//! The shard coordinator: owns the grid cache, farms block tasks out to
//! worker processes, and survives any mix of worker failures without
//! changing a byte of the answer.
//!
//! # Execution model
//!
//! The coordinator decomposes the `m × n` alignment into a single-level
//! `k_r × k_c` block grid (cut points from [`fastlsa_core::grid::partition`],
//! exactly as the sequential solver's top recursion level) and runs two
//! phases:
//!
//! 1. **Fill**: every block except the bottom-right one is a Fill-Cache
//!    task — given exact `top`/`left` boundary vectors, compute the
//!    block's last row and/or column. Tasks become ready along the
//!    anti-diagonal wavefront as their up/left neighbours complete, and
//!    results land in the coordinator's `rows_cache`/`cols_cache`.
//! 2. **Trace**: a sequential chain of Base-Case tasks from `(m, n)`:
//!    each task full-fills one block and tracebacks from the current
//!    path head to the block boundary; the exit coordinate names the
//!    next block ([`fastlsa_core::grid::segment_of`]).
//!
//! # Why the answer is byte-identical
//!
//! Every global cell `(i, j)` with `i, j ≥ 1` is an interior decision
//! point of **exactly one** block — `(segment_of(i), segment_of(j))` —
//! and a block filled from exact boundary vectors reproduces the exact
//! global DP values. The traceback is a per-cell greedy walk over those
//! values with the fixed Diag ≻ Up ≻ Left tie-break of
//! [`flsa_dp::traceback::trace_from`], so the path is a pure function
//! of the DP values: it cannot matter which process computed a block,
//! how many times it was recomputed after a SIGKILL, or whether the
//! coordinator computed it itself on the last degradation rung. The
//! final forced `Up`/`Left` run to `(0, 0)` mirrors the sequential
//! solver's `finish_path`.
//!
//! # Failure ladder
//!
//! Per-task deadlines and heartbeat staleness detect dead, hung, and
//! wedged workers; a CRC-failing or semantically invalid result frame
//! burns trust in its worker. Every detection takes the same path:
//! kill + reap the process, reassign its task with bounded backoff,
//! respawn into the slot. A slot that fails [`ShardPolicy::quarantine_after`]
//! times (or when the spawn budget runs dry) is quarantined; a task
//! failing [`ShardPolicy::max_task_attempts`] times runs in-process on
//! the coordinator; when every slot is quarantined the whole run
//! degrades to sequential in-process execution (or a typed
//! [`ShardError::NoWorkers`] if the fallback is disabled).
//!
//! Worker I/O is fully decoupled from the control loop: a per-slot
//! writer thread owns the stdin pipe (a hung worker can never block the
//! coordinator) and a per-slot reader thread turns frames into events.
//! Each spawn gets a fresh generation number; events from a killed
//! worker's threads carry the old generation and are discarded, so a
//! slow frame from a replaced worker can never double-apply a task.

use std::collections::HashMap;
use std::fmt;
use std::io::{BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fastlsa_core::grid::{partition, segment_of};
use fastlsa_core::{align_opts, AlignError, AlignOptions, FastLsaConfig};
use flsa_dp::{AlignResult, Kernel, Metrics, Move, PathBuilder};
use flsa_metrics::{names, Counter, Gauge, Histogram, Registry};
use flsa_scoring::{tables, ScoringScheme};
use flsa_seq::Sequence;
use flsa_trace::{EventKind, SpanKind};

use crate::compute;
use crate::protocol::{self, Frame, TaskKind, TaskOutput, TaskSpec, WireError};

/// Everything that can go wrong in a sharded run. Worker deaths, hangs,
/// and corrupt results are *not* errors — they are handled by the
/// reassignment ladder; these are the conditions the ladder cannot (or
/// must not) absorb.
#[derive(Debug)]
pub enum ShardError {
    /// The run was misconfigured (unknown matrix, zero shards, empty
    /// worker command, scoring span too large). Maps to CLI exit 2.
    Config {
        /// Human-readable description.
        detail: String,
    },
    /// Every worker slot is quarantined and the in-process fallback is
    /// disabled by policy.
    NoWorkers {
        /// How the slots were lost.
        detail: String,
    },
    /// A task failed even when executed in-process — a bug, not a
    /// fault; the error is surfaced verbatim rather than retried.
    TaskFailed {
        /// Which task and why.
        detail: String,
    },
    /// The degenerate-input path delegated to the sequential engine and
    /// it refused.
    Align(AlignError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Config { detail } => write!(f, "shard configuration: {detail}"),
            ShardError::NoWorkers { detail } => {
                write!(f, "all worker slots quarantined: {detail}")
            }
            ShardError::TaskFailed { detail } => write!(f, "task failed in-process: {detail}"),
            ShardError::Align(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<AlignError> for ShardError {
    fn from(e: AlignError) -> Self {
        ShardError::Align(e)
    }
}

/// Fault-tolerance policy knobs. The defaults are tuned for tests and
/// interactive runs: failures are detected in tens of milliseconds and
/// a pathological worker set degrades to in-process execution in well
/// under a second.
#[derive(Debug, Clone)]
pub struct ShardPolicy {
    /// Hard deadline for one dispatched task; exceeding it fails the
    /// worker (covers hangs that keep heartbeating, e.g. a stalled
    /// mid-frame write).
    pub task_timeout: Duration,
    /// Heartbeat cadence requested from workers.
    pub heartbeat_ms: u64,
    /// Silence longer than this fails the worker, busy or idle.
    pub heartbeat_timeout: Duration,
    /// After this many dispatch attempts, a task runs in-process on the
    /// coordinator (the final per-task degradation rung). Must be ≥ 1.
    pub max_task_attempts: u32,
    /// A slot with this many worker failures is quarantined — no
    /// respawns, no more dispatches.
    pub quarantine_after: u32,
    /// Total process-spawn budget across all slots; 0 means
    /// `4 × shards`. Exhausting it quarantines slots on their next
    /// failure instead of respawning.
    pub max_spawns: usize,
    /// Base reassignment backoff; doubles per attempt (capped).
    pub backoff: Duration,
    /// When every slot is quarantined: `true` finishes the run
    /// in-process (byte-identical, slower); `false` returns
    /// [`ShardError::NoWorkers`].
    pub fallback_inprocess: bool,
}

impl Default for ShardPolicy {
    fn default() -> Self {
        ShardPolicy {
            task_timeout: Duration::from_secs(10),
            heartbeat_ms: 25,
            heartbeat_timeout: Duration::from_millis(1500),
            max_task_attempts: 3,
            quarantine_after: 2,
            max_spawns: 0,
            backoff: Duration::from_millis(10),
            fallback_inprocess: true,
        }
    }
}

/// One sharded run's configuration.
#[derive(Debug, Clone)]
pub struct ShardOptions {
    /// Number of worker slots (processes kept alive at once). Must be
    /// ≥ 1.
    pub shards: usize,
    /// Worker command line: program plus leading arguments (e.g.
    /// `["/path/to/flsa", "shard-worker"]` or the standalone
    /// `flsa-shard-worker` binary). `--heartbeat-ms`/`--fault` are
    /// appended by the coordinator.
    pub worker_cmd: Vec<String>,
    /// Per-slot `--fault` specs for chaos runs (see
    /// [`crate::worker::WorkerFault::parse`]); slot `i` uses entry `i`,
    /// missing entries mean no fault. Empty for production runs.
    pub worker_faults: Vec<String>,
    /// When `true`, a respawned worker inherits its slot's fault spec
    /// (models a cursed host driving the slot into quarantine); when
    /// `false` (default), respawns are clean (models one faulty
    /// process).
    pub refault_respawns: bool,
    /// Fault-tolerance policy.
    pub policy: ShardPolicy,
    /// Metrics registry for the `flsa_shard_*` instrument family.
    pub registry: Option<Arc<Registry>>,
}

impl ShardOptions {
    /// Options for `shards` workers launched via `worker_cmd`.
    pub fn new(shards: usize, worker_cmd: Vec<String>) -> Self {
        ShardOptions {
            shards,
            worker_cmd,
            worker_faults: Vec::new(),
            refault_respawns: false,
            policy: ShardPolicy::default(),
            registry: None,
        }
    }
}

/// Cached metric handles (lint rule R7: names only from
/// [`flsa_metrics::names`]).
struct Obs {
    dispatched: Counter,
    completed: Counter,
    reassigned: Counter,
    inprocess: Counter,
    corrupt: Counter,
    spawned: Counter,
    killed: Counter,
    heartbeats: Counter,
    quarantined: Gauge,
    live: Gauge,
    inflight: Gauge,
    task_ns: Histogram,
}

impl Obs {
    fn new(r: &Registry) -> Obs {
        Obs {
            dispatched: r.counter(names::SHARD_TASKS_DISPATCHED_TOTAL),
            completed: r.counter(names::SHARD_TASKS_COMPLETED_TOTAL),
            reassigned: r.counter(names::SHARD_TASKS_REASSIGNED_TOTAL),
            inprocess: r.counter(names::SHARD_TASKS_INPROCESS_TOTAL),
            corrupt: r.counter(names::SHARD_RESULTS_CORRUPT_TOTAL),
            spawned: r.counter(names::SHARD_WORKERS_SPAWNED_TOTAL),
            killed: r.counter(names::SHARD_WORKERS_KILLED_TOTAL),
            heartbeats: r.counter(names::SHARD_HEARTBEATS_TOTAL),
            quarantined: r.gauge(names::SHARD_WORKERS_QUARANTINED),
            live: r.gauge(names::SHARD_WORKERS_LIVE),
            inflight: r.gauge(names::SHARD_TASKS_INFLIGHT),
            task_ns: r.histogram(names::SHARD_TASK_NS),
        }
    }
}

/// What a reader thread tells the control loop. `gen` is the spawn
/// generation of the worker the thread belongs to; stale generations
/// are discarded.
enum Event {
    /// A well-formed frame arrived.
    Frame { slot: usize, gen: u64, frame: Frame },
    /// A frame failed its CRC or decoded to garbage — the worker (or
    /// its pipe) is lying; trust is gone.
    Corrupt {
        slot: usize,
        gen: u64,
        detail: String,
    },
    /// The pipe died (EOF, mid-frame truncation, I/O error).
    Dead {
        slot: usize,
        gen: u64,
        detail: String,
    },
}

/// A live worker process attached to a slot.
struct WorkerConn {
    child: Child,
    /// Encoded frames queued to the writer thread (preamble first).
    writer: Sender<Vec<u8>>,
    /// Spawn generation, for filtering stale reader events.
    gen: u64,
    /// Last frame of any kind (result, heartbeat, hello).
    last_seen: Instant,
    /// Currently dispatched task, with its dispatch instant.
    task: Option<(u64, Instant)>,
}

/// One worker slot: at most one live process, plus failure history.
struct Slot {
    conn: Option<WorkerConn>,
    failures: u32,
    quarantined: bool,
    /// `--fault` spec for this slot's first spawn (chaos runs).
    fault: String,
}

#[derive(Clone, Copy)]
enum TaskMeta {
    /// Fill-Cache for grid block `(s, t)`.
    Fill { s: usize, t: usize },
    /// Base-Case trace through block `(s, t)` from block-local `head`.
    Trace {
        s: usize,
        t: usize,
        head: (usize, usize),
    },
}

struct TaskState {
    meta: TaskMeta,
    /// Dispatch attempts so far (0 = never dispatched).
    attempts: u32,
    /// Backoff gate: not dispatched before this instant.
    not_before: Instant,
    /// Unfinished upstream fill tasks (wavefront dependency count).
    deps_left: u32,
    done: bool,
}

struct Coordinator<'a> {
    a: &'a Sequence,
    b: &'a Sequence,
    scheme: ScoringScheme,
    matrix: String,
    gap: i32,
    row_bounds: Vec<usize>,
    col_bounds: Vec<usize>,
    k_r: usize,
    k_c: usize,
    /// `rows_cache[s]` = DP row `row_bounds[s+1]`, full width `n + 1`.
    rows_cache: Vec<Vec<i32>>,
    /// `cols_cache[t]` = DP column `col_bounds[t+1]`, full height `m + 1`.
    cols_cache: Vec<Vec<i32>>,
    /// Global gap ramps (DP row 0 / column 0).
    top_ramp: Vec<i32>,
    left_ramp: Vec<i32>,

    slots: Vec<Slot>,
    events_tx: Sender<Event>,
    events_rx: Receiver<Event>,
    next_gen: u64,
    spawns_used: usize,
    max_spawns: usize,
    /// All slots quarantined + fallback allowed: execute everything
    /// in-process from here on.
    inprocess_only: bool,
    /// Most recent worker-failure description, for the NoWorkers error.
    last_failure: String,

    tasks: HashMap<u64, TaskState>,
    ready: Vec<u64>,
    pending: usize,
    next_task_id: u64,

    /// Partial optimal path, accumulated back-to-front through the
    /// trace chain exactly like the sequential solver's builder.
    path: PathBuilder,
    /// Current global path head; trace phase runs until a coordinate
    /// hits 0.
    head: (usize, usize),

    kernel: Kernel,
    metrics: &'a Metrics,
    obs: Option<Obs>,
    opts: &'a ShardOptions,
}

/// Aligns `a` and `b` across `opts.shards` worker processes,
/// byte-identical to [`fastlsa_core::align_with`] under the same
/// scoring, whatever the workers do.
///
/// `matrix`/`gap` name the scoring scheme by table
/// ([`flsa_scoring::tables::scheme_by_name`]) because worker processes
/// must reconstruct it from the wire. Degenerate inputs (either
/// sequence shorter than 2) run in-process directly.
pub fn align_sharded(
    a: &Sequence,
    b: &Sequence,
    matrix: &str,
    gap: i32,
    config: FastLsaConfig,
    opts: &ShardOptions,
    metrics: &Metrics,
) -> Result<AlignResult, ShardError> {
    let scheme = tables::scheme_by_name(matrix, gap).ok_or_else(|| ShardError::Config {
        detail: format!("unknown scoring matrix {matrix:?}"),
    })?;
    if opts.shards == 0 {
        return Err(ShardError::Config {
            detail: "shards must be ≥ 1".to_string(),
        });
    }
    if opts.worker_cmd.is_empty() || opts.worker_cmd[0].is_empty() {
        return Err(ShardError::Config {
            detail: "worker command is empty".to_string(),
        });
    }
    config
        .validate_run(&scheme, a.len(), b.len())
        .map_err(|e| ShardError::Config {
            detail: e.to_string(),
        })?;
    let n_symbols = scheme.alphabet().len();
    if a.codes()
        .iter()
        .chain(b.codes().iter())
        .any(|&c| c as usize >= n_symbols)
    {
        return Err(ShardError::Config {
            detail: format!("sequence code outside the {n_symbols}-symbol alphabet of {matrix:?}"),
        });
    }

    let (m, n) = (a.len(), b.len());
    if m < 2 || n < 2 {
        // Too small to decompose; the sequential engine is the
        // degenerate case of "every block in-process" anyway.
        return align_opts(a, b, &scheme, config, &AlignOptions::default(), metrics)
            .map_err(ShardError::Align);
    }

    let (k_r, k_c) = choose_grid(m, n, &config, opts.shards);
    let cache_bytes = (k_r - 1)
        .saturating_mul(n + 1)
        .saturating_add((k_c - 1).saturating_mul(m + 1))
        .saturating_mul(std::mem::size_of::<i32>());
    let cache_guard = metrics.track_alloc(cache_bytes);

    let mut coord = Coordinator::new(a, b, scheme, matrix, gap, k_r, k_c, opts, metrics);
    let result = coord.run();
    coord.shutdown();
    drop(cache_guard);
    result
}

/// Chooses the block grid: square-ish blocks whose full DP matrix fits
/// the configured base-case buffer (so trace tasks never exceed the
/// sequential solver's base-case footprint), with at least
/// `max(config.k, shards)` cuts per axis so there is real wavefront
/// parallelism to farm out.
fn choose_grid(m: usize, n: usize, config: &FastLsaConfig, shards: usize) -> (usize, usize) {
    let base = config.base_cells.max(16);
    let side = (base as f64).sqrt() as usize;
    let side = side.saturating_sub(1).max(1);
    let want = config.k.max(shards).max(2);
    let k_r = m.div_ceil(side).max(want).min(m).max(2);
    let k_c = n.div_ceil(side).max(want).min(n).max(2);
    (k_r, k_c)
}

impl<'a> Coordinator<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        a: &'a Sequence,
        b: &'a Sequence,
        scheme: ScoringScheme,
        matrix: &str,
        gap: i32,
        k_r: usize,
        k_c: usize,
        opts: &'a ShardOptions,
        metrics: &'a Metrics,
    ) -> Self {
        let (m, n) = (a.len(), b.len());
        let (events_tx, events_rx) = mpsc::channel();
        let slots = (0..opts.shards)
            .map(|i| Slot {
                conn: None,
                failures: 0,
                quarantined: false,
                fault: opts.worker_faults.get(i).cloned().unwrap_or_default(),
            })
            .collect();
        let max_spawns = if opts.policy.max_spawns == 0 {
            opts.shards.saturating_mul(4)
        } else {
            opts.policy.max_spawns
        };
        Coordinator {
            a,
            b,
            scheme,
            matrix: matrix.to_string(),
            gap,
            row_bounds: partition(m, k_r),
            col_bounds: partition(n, k_c),
            k_r,
            k_c,
            rows_cache: vec![vec![0i32; n + 1]; k_r - 1],
            cols_cache: vec![vec![0i32; m + 1]; k_c - 1],
            top_ramp: (0..=n).map(|j| (j as i32).wrapping_mul(gap)).collect(),
            left_ramp: (0..=m).map(|i| (i as i32).wrapping_mul(gap)).collect(),
            slots,
            events_tx,
            events_rx,
            next_gen: 1,
            spawns_used: 0,
            max_spawns,
            inprocess_only: false,
            last_failure: "no worker ever spawned".to_string(),
            tasks: HashMap::new(),
            ready: Vec::new(),
            pending: 0,
            next_task_id: (k_r * k_c) as u64,
            path: PathBuilder::new(),
            head: (m, n),
            kernel: Kernel::auto(),
            metrics,
            obs: opts.registry.as_deref().map(Obs::new),
            opts,
        }
    }

    fn run(&mut self) -> Result<AlignResult, ShardError> {
        self.spawn_initial();
        self.create_fill_tasks();
        self.run_pending()?;
        self.run_trace()?;

        // finish_path: extend along the gap-ramp boundary to (0, 0),
        // exactly like the sequential solver.
        let mut builder = std::mem::take(&mut self.path);
        for _ in 0..self.head.0 {
            builder.push_back(Move::Up);
        }
        for _ in 0..self.head.1 {
            builder.push_back(Move::Left);
        }
        let path = builder.finish((0, 0));
        let score = path.score(self.a, self.b, &self.scheme);
        Ok(AlignResult { score, path })
    }

    // ----- task graph -------------------------------------------------

    fn fill_task_id(&self, s: usize, t: usize) -> u64 {
        (s * self.k_c + t) as u64
    }

    fn create_fill_tasks(&mut self) {
        let now = Instant::now();
        for s in 0..self.k_r {
            for t in 0..self.k_c {
                if s == self.k_r - 1 && t == self.k_c - 1 {
                    continue; // the trace chain full-fills this block
                }
                let id = self.fill_task_id(s, t);
                let deps = u32::from(s > 0) + u32::from(t > 0);
                self.tasks.insert(
                    id,
                    TaskState {
                        meta: TaskMeta::Fill { s, t },
                        attempts: 0,
                        not_before: now,
                        deps_left: deps,
                        done: false,
                    },
                );
                if deps == 0 {
                    self.ready.push(id);
                }
                self.pending += 1;
            }
        }
    }

    fn run_trace(&mut self) -> Result<(), ShardError> {
        while self.head.0 > 0 && self.head.1 > 0 {
            let s = segment_of(&self.row_bounds, self.head.0);
            let t = segment_of(&self.col_bounds, self.head.1);
            let local = (
                self.head.0 - self.row_bounds[s],
                self.head.1 - self.col_bounds[t],
            );
            let id = self.next_task_id;
            self.next_task_id += 1;
            self.tasks.insert(
                id,
                TaskState {
                    meta: TaskMeta::Trace { s, t, head: local },
                    attempts: 0,
                    not_before: Instant::now(),
                    deps_left: 0,
                    done: false,
                },
            );
            self.ready.push(id);
            self.pending += 1;
            self.run_pending()?;
        }
        Ok(())
    }

    /// Block bounds `(r0, r1, c0, c1)` for grid block `(s, t)`.
    fn block_bounds(&self, s: usize, t: usize) -> (usize, usize, usize, usize) {
        (
            self.row_bounds[s],
            self.row_bounds[s + 1],
            self.col_bounds[t],
            self.col_bounds[t + 1],
        )
    }

    fn make_spec(&self, id: u64) -> Result<TaskSpec, ShardError> {
        let st = self.tasks.get(&id).ok_or_else(|| ShardError::TaskFailed {
            detail: format!("unknown task {id}"),
        })?;
        let (s, t, kind) = match st.meta {
            TaskMeta::Fill { s, t } => (
                s,
                t,
                TaskKind::Fill {
                    want_bottom: s + 1 < self.k_r,
                    want_right: t + 1 < self.k_c,
                },
            ),
            TaskMeta::Trace { s, t, head } => (
                s,
                t,
                TaskKind::Trace {
                    head: (head.0 as u64, head.1 as u64),
                },
            ),
        };
        let (r0, r1, c0, c1) = self.block_bounds(s, t);
        let top = if s == 0 {
            self.top_ramp[c0..=c1].to_vec()
        } else {
            self.rows_cache[s - 1][c0..=c1].to_vec()
        };
        let left = if t == 0 {
            self.left_ramp[r0..=r1].to_vec()
        } else {
            self.cols_cache[t - 1][r0..=r1].to_vec()
        };
        Ok(TaskSpec {
            task_id: id,
            matrix: self.matrix.clone(),
            gap: self.gap,
            a: self.a.codes()[r0..r1].to_vec(),
            b: self.b.codes()[c0..c1].to_vec(),
            top,
            left,
            kind,
        })
    }

    /// Applies a validated task result: updates caches / the path,
    /// marks the task done, releases wavefront dependents, and records
    /// a trace span. Errors mean the output is semantically invalid.
    fn apply(&mut self, task_id: u64, output: TaskOutput, elapsed: Duration) -> Result<(), String> {
        let st = self
            .tasks
            .get(&task_id)
            .ok_or_else(|| format!("unknown task {task_id}"))?;
        if st.done {
            return Ok(()); // duplicate delivery; first result stands
        }
        let meta = st.meta;
        let span_kind;
        let (rows, cols);
        match meta {
            TaskMeta::Fill { s, t } => {
                let TaskOutput::Fill { bottom, right } = output else {
                    return Err(format!("task {task_id}: expected a Fill result"));
                };
                let (r0, r1, c0, c1) = self.block_bounds(s, t);
                rows = r1 - r0;
                cols = c1 - c0;
                span_kind = SpanKind::FillCache;
                if s + 1 < self.k_r {
                    if bottom.len() != cols + 1 {
                        return Err(format!(
                            "task {task_id}: bottom row has {} entries, want {}",
                            bottom.len(),
                            cols + 1
                        ));
                    }
                    self.rows_cache[s][c0..=c1].copy_from_slice(&bottom);
                }
                if t + 1 < self.k_c {
                    if right.len() != rows + 1 {
                        return Err(format!(
                            "task {task_id}: right column has {} entries, want {}",
                            right.len(),
                            rows + 1
                        ));
                    }
                    self.cols_cache[t][r0..=r1].copy_from_slice(&right);
                }
                // Release the wavefront: the block below needs our
                // bottom row, the block to the right needs our column.
                let mut unlocked = Vec::new();
                if s + 1 < self.k_r && !(s + 1 == self.k_r - 1 && t == self.k_c - 1) {
                    unlocked.push(self.fill_task_id(s + 1, t));
                }
                if t + 1 < self.k_c && !(s == self.k_r - 1 && t + 1 == self.k_c - 1) {
                    unlocked.push(self.fill_task_id(s, t + 1));
                }
                for dep in unlocked {
                    if let Some(d) = self.tasks.get_mut(&dep) {
                        d.deps_left -= 1;
                        if d.deps_left == 0 {
                            self.ready.push(dep);
                        }
                    }
                }
            }
            TaskMeta::Trace { s, t, head } => {
                let TaskOutput::Trace { rev_moves, exit } = output else {
                    return Err(format!("task {task_id}: expected a Trace result"));
                };
                let (r0, r1, c0, c1) = self.block_bounds(s, t);
                rows = r1 - r0;
                cols = c1 - c0;
                span_kind = SpanKind::BaseCase;
                if rev_moves.is_empty() {
                    return Err(format!("task {task_id}: empty trace"));
                }
                // Re-walk the claimed moves from the head: every step
                // must be a legal interior decision, and the walk must
                // land exactly on the claimed boundary exit. A worker
                // cannot smuggle in a wrong path shape — only DP-exact
                // values decide between *valid* shapes, and those are
                // recomputed identically on any retry.
                let mut moves = Vec::with_capacity(rev_moves.len());
                let (mut i, mut j) = head;
                for &code in &rev_moves {
                    let mv = Move::from_code(code)
                        .ok_or_else(|| format!("task {task_id}: bad move code {code}"))?;
                    if i == 0 || j == 0 {
                        return Err(format!("task {task_id}: trace walked past the boundary"));
                    }
                    match mv {
                        Move::Diag => {
                            i -= 1;
                            j -= 1;
                        }
                        Move::Up => i -= 1,
                        Move::Left => j -= 1,
                    }
                    moves.push(mv);
                }
                if i != 0 && j != 0 {
                    return Err(format!(
                        "task {task_id}: trace stopped in the interior at ({i},{j})"
                    ));
                }
                if (exit.0, exit.1) != (i as u64, j as u64) {
                    return Err(format!(
                        "task {task_id}: claimed exit ({},{}) but moves land on ({i},{j})",
                        exit.0, exit.1
                    ));
                }
                for mv in moves {
                    self.path.push_back(mv);
                }
                self.head = (r0 + i, c0 + j);
            }
        }
        if let Some(st) = self.tasks.get_mut(&task_id) {
            st.done = true;
        }
        self.pending -= 1;
        if let Some(r) = self.metrics.recorder() {
            let end = r.now_ns();
            let start = end.saturating_sub(elapsed.as_nanos() as u64);
            r.record(
                start,
                end,
                EventKind::Span {
                    kind: span_kind,
                    depth: 0,
                    rows: rows as u64,
                    cols: cols as u64,
                    k_r: 0,
                    k_c: 0,
                    cells: (rows as u64) * (cols as u64),
                },
            );
        }
        Ok(())
    }

    // ----- control loop -----------------------------------------------

    fn run_pending(&mut self) -> Result<(), ShardError> {
        while self.pending > 0 {
            if !self.inprocess_only && self.slots.iter().all(|s| s.quarantined) {
                // Last rung of the ladder: no slot left to dispatch to.
                if self.opts.policy.fallback_inprocess {
                    self.inprocess_only = true;
                } else {
                    return Err(ShardError::NoWorkers {
                        detail: format!("last failure: {}", self.last_failure),
                    });
                }
            }
            if self.inprocess_only {
                self.drain_inprocess()?;
                continue;
            }
            self.dispatch_ready()?;
            if self.pending == 0 {
                break;
            }
            match self.events_rx.recv_timeout(Duration::from_millis(10)) {
                Ok(ev) => self.handle_event(ev)?,
                Err(RecvTimeoutError::Timeout) => {}
                // We hold a sender clone, so this cannot happen; treat
                // it as "no workers" rather than panicking.
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(ShardError::NoWorkers {
                        detail: "event channel disconnected".to_string(),
                    })
                }
            }
            self.check_deadlines()?;
        }
        Ok(())
    }

    fn drain_inprocess(&mut self) -> Result<(), ShardError> {
        while self.pending > 0 {
            self.ready.sort_unstable();
            if self.ready.is_empty() {
                return Err(ShardError::TaskFailed {
                    detail: "scheduler stalled: pending tasks but none ready".to_string(),
                });
            }
            let id = self.ready.remove(0);
            self.execute_inprocess(id)?;
        }
        Ok(())
    }

    fn dispatch_ready(&mut self) -> Result<(), ShardError> {
        loop {
            if self.inprocess_only {
                return Ok(());
            }
            let now = Instant::now();
            self.ready.sort_unstable();
            let Some(pos) = self
                .ready
                .iter()
                .position(|id| self.tasks.get(id).is_some_and(|t| t.not_before <= now))
            else {
                return Ok(());
            };
            let Some(slot_idx) = self
                .slots
                .iter()
                .position(|s| !s.quarantined && s.conn.as_ref().is_some_and(|c| c.task.is_none()))
            else {
                return Ok(());
            };
            let id = self.ready.remove(pos);
            let bytes = protocol::encode_frame(&Frame::Task(self.make_spec(id)?));
            let sent = match self.slots[slot_idx].conn.as_mut() {
                Some(conn) if conn.writer.send(bytes).is_ok() => {
                    conn.task = Some((id, now));
                    true
                }
                _ => false,
            };
            if sent {
                if let Some(o) = &self.obs {
                    o.dispatched.inc();
                    o.inflight.add(1);
                }
            } else {
                self.ready.push(id);
                self.fail_worker(slot_idx, "writer pipe closed".to_string())?;
            }
        }
    }

    fn gen_current(&self, slot: usize, gen: u64) -> bool {
        self.slots
            .get(slot)
            .and_then(|s| s.conn.as_ref())
            .is_some_and(|c| c.gen == gen)
    }

    fn handle_event(&mut self, ev: Event) -> Result<(), ShardError> {
        match ev {
            Event::Frame { slot, gen, frame } => {
                if !self.gen_current(slot, gen) {
                    return Ok(()); // echo of a replaced worker
                }
                if let Some(conn) = self.slots[slot].conn.as_mut() {
                    conn.last_seen = Instant::now();
                }
                match frame {
                    Frame::Hello { .. } => Ok(()),
                    Frame::Heartbeat { .. } => {
                        if let Some(o) = &self.obs {
                            o.heartbeats.inc();
                        }
                        Ok(())
                    }
                    Frame::Result { task_id, output } => self.on_result(slot, task_id, output),
                    Frame::Task(_) | Frame::Shutdown => {
                        self.fail_worker(slot, "coordinator-only frame from worker".to_string())
                    }
                }
            }
            Event::Corrupt { slot, gen, detail } => {
                if self.gen_current(slot, gen) {
                    if let Some(o) = &self.obs {
                        o.corrupt.inc();
                    }
                    self.fail_worker(slot, format!("corrupt frame: {detail}"))
                } else {
                    Ok(())
                }
            }
            Event::Dead { slot, gen, detail } => {
                if self.gen_current(slot, gen) {
                    self.fail_worker(slot, detail)
                } else {
                    Ok(())
                }
            }
        }
    }

    fn on_result(
        &mut self,
        slot: usize,
        task_id: u64,
        output: TaskOutput,
    ) -> Result<(), ShardError> {
        let assigned = self
            .slots
            .get(slot)
            .and_then(|s| s.conn.as_ref())
            .and_then(|c| c.task);
        let Some((expected, since)) = assigned else {
            return self.fail_worker(slot, format!("unsolicited result for task {task_id}"));
        };
        if expected != task_id {
            return self.fail_worker(
                slot,
                format!("result for task {task_id} while task {expected} was dispatched"),
            );
        }
        let elapsed = since.elapsed();
        // Account worker-side compute in the coordinator's metrics (the
        // worker's own counters die with its process).
        let stats = match &output {
            TaskOutput::Fill { .. } => Some((false, 0u64)),
            TaskOutput::Trace { rev_moves, .. } => Some((true, rev_moves.len() as u64)),
        };
        match self.apply(task_id, output, elapsed) {
            Ok(()) => {
                if let Some(conn) = self.slots.get_mut(slot).and_then(|s| s.conn.as_mut()) {
                    conn.task = None;
                }
                if let Some(st) = self.tasks.get(&task_id) {
                    if let (
                        TaskMeta::Fill { s, t } | TaskMeta::Trace { s, t, .. },
                        Some((trace, steps)),
                    ) = (st.meta, stats)
                    {
                        let (r0, r1, c0, c1) = self.block_bounds(s, t);
                        let cells = ((r1 - r0) as u64) * ((c1 - c0) as u64);
                        if trace {
                            self.metrics.add_base_case_cells(cells);
                            self.metrics.add_traceback_steps(steps);
                        } else {
                            self.metrics.add_cells(cells);
                        }
                    }
                }
                if let Some(o) = &self.obs {
                    o.completed.inc();
                    o.inflight.sub(1);
                    o.task_ns.record(elapsed.as_nanos() as u64);
                }
                Ok(())
            }
            Err(detail) => {
                if let Some(o) = &self.obs {
                    o.corrupt.inc();
                }
                self.fail_worker(slot, format!("semantically invalid result: {detail}"))
            }
        }
    }

    fn check_deadlines(&mut self) -> Result<(), ShardError> {
        let now = Instant::now();
        let mut failed = Vec::new();
        for (idx, slot) in self.slots.iter().enumerate() {
            let Some(conn) = &slot.conn else { continue };
            if conn
                .task
                .is_some_and(|(_, since)| now.duration_since(since) > self.opts.policy.task_timeout)
            {
                failed.push((idx, "task deadline exceeded"));
            } else if now.duration_since(conn.last_seen) > self.opts.policy.heartbeat_timeout {
                failed.push((idx, "heartbeats stopped"));
            }
        }
        for (idx, why) in failed {
            self.fail_worker(idx, why.to_string())?;
        }
        Ok(())
    }

    // ----- failure ladder ---------------------------------------------

    /// Kills and reaps the slot's worker, reassigns its task, and
    /// either respawns into the slot or quarantines it. The single
    /// funnel for every kind of worker failure.
    fn fail_worker(&mut self, idx: usize, detail: String) -> Result<(), ShardError> {
        let Some(mut conn) = self.slots.get_mut(idx).and_then(|s| s.conn.take()) else {
            return Ok(());
        };
        let _ = conn.child.kill();
        let _ = conn.child.wait();
        if let Some(o) = &self.obs {
            o.killed.inc();
            o.live.sub(1);
        }
        let lost_task = conn.task.map(|(id, _)| id);
        if lost_task.is_some() {
            if let Some(o) = &self.obs {
                o.inflight.sub(1);
            }
        }
        drop(conn);

        self.slots[idx].failures += 1;
        let failures = self.slots[idx].failures;
        if failures >= self.opts.policy.quarantine_after || self.spawns_used >= self.max_spawns {
            self.quarantine(idx);
        } else if self.spawn_into(idx).is_err() {
            // Could not replace the process (bad binary, fork limits);
            // the slot is as good as gone.
            self.quarantine(idx);
        }

        self.last_failure = detail;
        // Reassign after the respawn so an immediately-ready task can
        // land on the fresh worker.
        if let Some(task_id) = lost_task {
            self.requeue(task_id)?;
        }
        Ok(())
    }

    fn quarantine(&mut self, idx: usize) {
        if !self.slots[idx].quarantined {
            self.slots[idx].quarantined = true;
            if let Some(o) = &self.obs {
                o.quarantined.add(1);
            }
        }
    }

    fn requeue(&mut self, task_id: u64) -> Result<(), ShardError> {
        let attempts = match self.tasks.get_mut(&task_id) {
            Some(st) if !st.done => {
                st.attempts += 1;
                st.attempts
            }
            _ => return Ok(()),
        };
        if attempts >= self.opts.policy.max_task_attempts {
            // Final per-task rung: the coordinator computes it itself.
            self.execute_inprocess(task_id)
        } else {
            if let Some(o) = &self.obs {
                o.reassigned.inc();
            }
            let shift = (attempts - 1).min(6);
            let delay = self.opts.policy.backoff.saturating_mul(1u32 << shift);
            if let Some(st) = self.tasks.get_mut(&task_id) {
                st.not_before = Instant::now() + delay;
            }
            self.ready.push(task_id);
            Ok(())
        }
    }

    fn execute_inprocess(&mut self, task_id: u64) -> Result<(), ShardError> {
        if let Some(o) = &self.obs {
            o.inprocess.inc();
        }
        let spec = self.make_spec(task_id)?;
        let started = Instant::now();
        let out = compute::execute(&self.kernel, &spec, self.metrics).map_err(|detail| {
            ShardError::TaskFailed {
                detail: format!("task {task_id}: {detail}"),
            }
        })?;
        self.apply(task_id, out, started.elapsed())
            .map_err(|detail| ShardError::TaskFailed {
                detail: format!("task {task_id}: {detail}"),
            })
    }

    // ----- process management -----------------------------------------

    fn spawn_initial(&mut self) {
        for idx in 0..self.slots.len() {
            if let Err(detail) = self.spawn_into(idx) {
                self.slots[idx].failures += 1;
                self.last_failure = detail;
                self.quarantine(idx);
            }
        }
    }

    fn spawn_into(&mut self, idx: usize) -> Result<(), String> {
        if self.spawns_used >= self.max_spawns {
            return Err("spawn budget exhausted".to_string());
        }
        self.spawns_used += 1;

        let mut cmd = Command::new(&self.opts.worker_cmd[0]);
        cmd.args(&self.opts.worker_cmd[1..]);
        cmd.arg("--heartbeat-ms")
            .arg(self.opts.policy.heartbeat_ms.to_string());
        let first_spawn_here = self.slots[idx].failures == 0;
        let fault = &self.slots[idx].fault;
        if !fault.is_empty() && (first_spawn_here || self.opts.refault_respawns) {
            cmd.arg("--fault").arg(fault);
        }
        cmd.stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        let mut child = cmd
            .spawn()
            .map_err(|e| format!("spawn {:?}: {e}", self.opts.worker_cmd[0]))?;
        let stdin = child.stdin.take().ok_or("worker stdin not piped")?;
        let stdout = child.stdout.take().ok_or("worker stdout not piped")?;

        let gen = self.next_gen;
        self.next_gen += 1;

        // Writer thread: owns the stdin pipe so a worker that stops
        // reading can never block the control loop. The preamble goes
        // out as the first queued message.
        let (writer, writer_rx) = mpsc::channel::<Vec<u8>>();
        let _ = writer.send(protocol::PREAMBLE.to_vec());
        std::thread::spawn(move || {
            let mut stdin = stdin;
            while let Ok(bytes) = writer_rx.recv() {
                if stdin
                    .write_all(&bytes)
                    .and_then(|()| stdin.flush())
                    .is_err()
                {
                    return;
                }
            }
        });

        // Reader thread: frames → events, tagged with this spawn's
        // generation so echoes from replaced workers are discarded.
        let events = self.events_tx.clone();
        std::thread::spawn(move || {
            let mut out = BufReader::new(stdout);
            if let Err(e) = protocol::read_preamble(&mut out) {
                let _ = events.send(Event::Dead {
                    slot: idx,
                    gen,
                    detail: format!("worker preamble: {e}"),
                });
                return;
            }
            loop {
                match protocol::read_frame(&mut out) {
                    Ok(frame) => {
                        if events
                            .send(Event::Frame {
                                slot: idx,
                                gen,
                                frame,
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                    Err(WireError::Malformed { detail }) => {
                        let _ = events.send(Event::Corrupt {
                            slot: idx,
                            gen,
                            detail,
                        });
                        return;
                    }
                    Err(e) => {
                        let _ = events.send(Event::Dead {
                            slot: idx,
                            gen,
                            detail: e.to_string(),
                        });
                        return;
                    }
                }
            }
        });

        self.slots[idx].conn = Some(WorkerConn {
            child,
            writer,
            gen,
            last_seen: Instant::now(),
            task: None,
        });
        if let Some(o) = &self.obs {
            o.spawned.inc();
            o.live.add(1);
        }
        Ok(())
    }

    /// Graceful worker teardown and gauge reset: send Shutdown, give
    /// the fleet a short grace window, kill stragglers, and return all
    /// liveness gauges to their baseline.
    fn shutdown(&mut self) {
        let bye = protocol::encode_frame(&Frame::Shutdown);
        for slot in &self.slots {
            if let Some(conn) = &slot.conn {
                let _ = conn.writer.send(bye.clone());
            }
        }
        let deadline = Instant::now() + Duration::from_millis(500);
        for slot in &mut self.slots {
            let Some(mut conn) = slot.conn.take() else {
                continue;
            };
            if conn.task.is_some() {
                if let Some(o) = &self.obs {
                    o.inflight.sub(1);
                }
            }
            loop {
                match conn.child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() >= deadline => {
                        let _ = conn.child.kill();
                        let _ = conn.child.wait();
                        if let Some(o) = &self.obs {
                            o.killed.inc();
                        }
                        break;
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(5)),
                    Err(_) => {
                        let _ = conn.child.kill();
                        let _ = conn.child.wait();
                        break;
                    }
                }
            }
            if let Some(o) = &self.obs {
                o.live.sub(1);
            }
        }
        for slot in &mut self.slots {
            if slot.quarantined {
                slot.quarantined = false;
                if let Some(o) = &self.obs {
                    o.quarantined.sub(1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_choice_keeps_trace_blocks_within_base_cells() {
        for (m, n, base) in [
            (100usize, 100usize, 1usize << 10),
            (5000, 37, 1 << 12),
            (37, 5000, 1 << 12),
            (2, 2, 16),
            (10_000, 10_000, 1 << 20),
        ] {
            let config = FastLsaConfig::new(8, base);
            let (k_r, k_c) = choose_grid(m, n, &config, 4);
            assert!((2..=m).contains(&k_r), "k_r={k_r} for m={m}");
            assert!((2..=n).contains(&k_c), "k_c={k_c} for n={n}");
            let block_rows = m.div_ceil(k_r);
            let block_cols = n.div_ceil(k_c);
            assert!(
                (block_rows + 1) * (block_cols + 1) <= base.max(16),
                "block {block_rows}x{block_cols} exceeds base {base}"
            );
        }
    }

    #[test]
    fn policy_defaults_are_sane() {
        let p = ShardPolicy::default();
        assert!(p.max_task_attempts >= 1);
        assert!(p.quarantine_after >= 1);
        assert!(p.fallback_inprocess);
    }
}

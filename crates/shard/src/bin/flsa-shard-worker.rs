//! Standalone shard worker binary, spoken to over stdin/stdout with the
//! `FLSASHD1` protocol. The `flsa` CLI embeds the same loop as its
//! `shard-worker` subcommand; this binary exists so library tests (and
//! other embedders) can shard without the full CLI.

use flsa_shard::worker::{self, WorkerFault, WorkerOptions};

fn main() {
    let mut opts = WorkerOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let result = match arg.as_str() {
            "--heartbeat-ms" => args
                .next()
                .ok_or_else(|| "--heartbeat-ms needs a value".to_string())
                .and_then(|v| {
                    v.parse::<u64>()
                        .map_err(|_| format!("bad --heartbeat-ms {v:?}"))
                })
                .map(|v| opts.heartbeat_ms = v),
            "--fault" => args
                .next()
                .ok_or_else(|| "--fault needs a value".to_string())
                .and_then(|v| WorkerFault::parse(&v))
                .map(|f| opts.fault = f),
            other => Err(format!("unknown argument {other:?}")),
        };
        if let Err(detail) = result {
            eprintln!("flsa-shard-worker: {detail}");
            std::process::exit(2);
        }
    }
    std::process::exit(worker::run(&opts));
}

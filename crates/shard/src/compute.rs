//! Task execution, shared verbatim by the worker process and the
//! coordinator's in-process fallback.
//!
//! This is the whole byte-identical argument's mechanical half: a task
//! produces *exact* DP values (same kernels as the sequential solver,
//! which are bit-identical across backends) and the traceback uses the
//! same Diag ≻ Up ≻ Left tie-break as [`flsa_dp::traceback::trace_from`],
//! so it cannot matter whether a block was computed by worker 3, by a
//! respawned worker after a SIGKILL, or by the coordinator itself after
//! every retry was exhausted — the bytes that come back are the same.

use flsa_dp::traceback::trace_from;
use flsa_dp::{Kernel, Metrics, PathBuilder};
use flsa_scoring::tables;

use crate::protocol::{TaskKind, TaskOutput, TaskSpec};

/// Validates and executes one task. Errors are strings because on the
/// worker side they are diagnostics on stderr (the coordinator sees the
/// failure through its own deadline/heartbeat machinery), and on the
/// fallback side they indicate a coordinator bug worth surfacing
/// verbatim.
pub fn execute(kernel: &Kernel, spec: &TaskSpec, metrics: &Metrics) -> Result<TaskOutput, String> {
    let scheme = tables::scheme_by_name(&spec.matrix, spec.gap)
        .ok_or_else(|| format!("unknown matrix {:?}", spec.matrix))?;
    let rows = spec.a.len();
    let cols = spec.b.len();
    if rows == 0 || cols == 0 {
        return Err(format!("degenerate {rows}x{cols} block"));
    }
    if spec.top.len() != cols + 1 || spec.left.len() != rows + 1 {
        return Err(format!(
            "boundary shape mismatch: top {} (want {}), left {} (want {})",
            spec.top.len(),
            cols + 1,
            spec.left.len(),
            rows + 1
        ));
    }
    if spec.top[0] != spec.left[0] {
        return Err(format!(
            "inconsistent corner: top[0]={} left[0]={}",
            spec.top[0], spec.left[0]
        ));
    }
    let n_symbols = scheme.alphabet().len();
    if let Some(&c) = spec
        .a
        .iter()
        .chain(spec.b.iter())
        .find(|&&c| c as usize >= n_symbols)
    {
        return Err(format!(
            "sequence code {c} outside the {n_symbols}-symbol alphabet"
        ));
    }

    match spec.kind {
        TaskKind::Fill {
            want_bottom,
            want_right,
        } => {
            let mut bottom = vec![0i32; cols + 1];
            let mut right = vec![0i32; rows + 1];
            kernel.fill_last_row_col(
                &spec.a,
                &spec.b,
                &spec.top,
                &spec.left,
                &scheme,
                &mut bottom,
                Some(&mut right),
                metrics,
            );
            if !want_bottom {
                bottom.clear();
            }
            if !want_right {
                right.clear();
            }
            Ok(TaskOutput::Fill { bottom, right })
        }
        TaskKind::Trace { head } => {
            let (hi, hj) = (head.0 as usize, head.1 as usize);
            if head.0 as usize as u64 != head.0
                || head.1 as usize as u64 != head.1
                || hi == 0
                || hj == 0
                || hi > rows
                || hj > cols
            {
                return Err(format!(
                    "trace head ({},{}) outside interior of {rows}x{cols} block",
                    head.0, head.1
                ));
            }
            let dpm = kernel.fill_full_reusing(
                &spec.a,
                &spec.b,
                &spec.top,
                &spec.left,
                &scheme,
                Vec::new(),
                metrics,
            );
            let mut builder = PathBuilder::new();
            let exit = trace_from(
                &dpm,
                &spec.a,
                &spec.b,
                &scheme,
                (hi, hj),
                &mut builder,
                metrics,
            );
            let rev_moves = builder.rev_moves().iter().map(|m| m.code()).collect();
            Ok(TaskOutput::Trace {
                rev_moves,
                exit: (exit.0 as u64, exit.1 as u64),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::TaskSpec;

    fn ramp(n: usize, gap: i32) -> Vec<i32> {
        (0..=n as i64).map(|i| (i * gap as i64) as i32).collect()
    }

    fn fill_spec() -> TaskSpec {
        TaskSpec {
            task_id: 1,
            matrix: "dna".to_string(),
            gap: -4,
            a: vec![0, 1, 2, 3, 0],
            b: vec![0, 1, 2, 3],
            top: ramp(4, -4),
            left: ramp(5, -4),
            kind: TaskKind::Fill {
                want_bottom: true,
                want_right: true,
            },
        }
    }

    #[test]
    fn fill_matches_full_matrix_edges() {
        let kernel = Kernel::auto();
        let metrics = Metrics::new();
        let spec = fill_spec();
        let out = execute(&kernel, &spec, &metrics).unwrap();
        let TaskOutput::Fill { bottom, right } = out else {
            panic!("wrong output kind");
        };
        // Cross-check against the full-matrix fill.
        let scheme = tables::scheme_by_name("dna", -4).unwrap();
        let dpm = kernel.fill_full_reusing(
            &spec.a,
            &spec.b,
            &spec.top,
            &spec.left,
            &scheme,
            Vec::new(),
            &metrics,
        );
        let rows = spec.a.len();
        let cols = spec.b.len();
        for (j, v) in bottom.iter().enumerate().take(cols + 1) {
            assert_eq!(*v, dpm.get(rows, j), "bottom[{j}]");
        }
        for (i, v) in right.iter().enumerate().take(rows + 1) {
            assert_eq!(*v, dpm.get(i, cols), "right[{i}]");
        }
    }

    #[test]
    fn shape_and_code_validation_rejects() {
        let kernel = Kernel::auto();
        let metrics = Metrics::new();
        let mut bad = fill_spec();
        bad.top.pop();
        assert!(execute(&kernel, &bad, &metrics).is_err());

        let mut bad = fill_spec();
        bad.a[0] = 200; // outside the DNA alphabet
        assert!(execute(&kernel, &bad, &metrics).is_err());

        let mut bad = fill_spec();
        bad.matrix = "nonesuch".to_string();
        assert!(execute(&kernel, &bad, &metrics).is_err());

        let mut bad = fill_spec();
        bad.kind = TaskKind::Trace { head: (0, 2) };
        assert!(execute(&kernel, &bad, &metrics).is_err());
        let mut bad = fill_spec();
        bad.kind = TaskKind::Trace { head: (99, 2) };
        assert!(execute(&kernel, &bad, &metrics).is_err());
    }
}

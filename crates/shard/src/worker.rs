//! The worker process side of the shard protocol.
//!
//! A worker is deliberately dumb: read a task, compute it, write the
//! result, repeat. All fault-tolerance intelligence lives in the
//! coordinator — a worker that dies, stalls, or corrupts is detected
//! and replaced from the other side of the pipe, which is what lets the
//! chaos matrix kill workers at any instant without risking a wrong
//! answer.
//!
//! A background thread writes [`Frame::Heartbeat`] beacons under the
//! same stdout lock as results, so a worker stuck inside a hung
//! computation (or one whose fault plan seizes the lock) stops
//! heartbeating too — stall detection needs no extra channel.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use flsa_dp::{Kernel, Metrics};

use crate::compute;
use crate::protocol::{self, Frame, WireError};

/// Seeded-chaos fault switches for one worker process, parsed from the
/// `--fault` spec the coordinator passes on the command line (the plans
/// themselves live in `flsa_fault::shard` as pure data).
///
/// Spec grammar: comma-separated `name:value` entries —
/// `kill:N` (SIGKILL self when task `N` arrives, 0-based),
/// `hang:N` (seize the stdout lock and sleep when task `N` arrives),
/// `corrupt:N` (flip one byte inside result frame `N`),
/// `slow:MS` (stall mid-frame for `MS` ms on every result write).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerFault {
    /// SIGKILL self right before executing this task ordinal.
    pub kill_at_task: Option<u64>,
    /// Hold the stdout lock and sleep forever at this task ordinal.
    pub hang_at_task: Option<u64>,
    /// Flip one byte in this result ordinal's frame.
    pub corrupt_at_result: Option<u64>,
    /// Per-result mid-frame write stall in milliseconds.
    pub slow_write_ms: u64,
}

impl WorkerFault {
    /// Parses a `--fault` spec. Empty string means no faults.
    pub fn parse(spec: &str) -> Result<WorkerFault, String> {
        let mut f = WorkerFault::default();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (name, value) = part
                .split_once(':')
                .ok_or_else(|| format!("fault entry {part:?}: expected name:value"))?;
            let v: u64 = value
                .parse()
                .map_err(|_| format!("fault entry {part:?}: bad number {value:?}"))?;
            match name {
                "kill" => f.kill_at_task = Some(v),
                "hang" => f.hang_at_task = Some(v),
                "corrupt" => f.corrupt_at_result = Some(v),
                "slow" => f.slow_write_ms = v,
                other => return Err(format!("unknown fault {other:?}")),
            }
        }
        Ok(f)
    }

    /// Renders back to the spec grammar (coordinator side of the
    /// round-trip).
    pub fn render(&self) -> String {
        let mut parts = Vec::new();
        if let Some(n) = self.kill_at_task {
            parts.push(format!("kill:{n}"));
        }
        if let Some(n) = self.hang_at_task {
            parts.push(format!("hang:{n}"));
        }
        if let Some(n) = self.corrupt_at_result {
            parts.push(format!("corrupt:{n}"));
        }
        if self.slow_write_ms > 0 {
            parts.push(format!("slow:{}", self.slow_write_ms));
        }
        parts.join(",")
    }
}

/// Worker configuration, from the `shard-worker` command line.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Heartbeat cadence in milliseconds.
    pub heartbeat_ms: u64,
    /// Chaos switches (default: none).
    pub fault: WorkerFault,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            heartbeat_ms: 50,
            fault: WorkerFault::default(),
        }
    }
}

/// Delivers a real SIGKILL to this process — the chaos matrix's
/// WorkerKill is an actual uncatchable kill, not a polite exit, so the
/// coordinator's recovery path is exercised against the same signal an
/// OOM killer or operator would send. Falls back to `abort` if the
/// `kill` binary is unavailable.
fn sigkill_self() -> ! {
    let pid = std::process::id().to_string();
    let _ = std::process::Command::new("kill")
        .args(["-9", &pid])
        .status();
    // Either `kill` was missing or the signal has not landed yet; make
    // sure this process still dies abruptly.
    std::process::abort();
}

/// Runs the worker loop over stdin/stdout until the coordinator sends
/// [`Frame::Shutdown`] or closes the pipe. Returns the process exit
/// code: 0 for a clean shutdown, 1 for a transport failure, 3 for a
/// task the worker could not execute (a coordinator bug — the spec is
/// validated before dispatch).
pub fn run(opts: &WorkerOptions) -> i32 {
    let stdin = std::io::stdin();
    let mut input = stdin.lock();
    // Results and heartbeats share one lock so frames never interleave.
    let output = Arc::new(Mutex::new(std::io::stdout()));

    if let Err(e) = protocol::read_preamble(&mut input) {
        eprintln!("flsa-shard-worker: bad coordinator preamble: {e}");
        return 1;
    }
    {
        // flsa-check: allow(unwrap) below is not needed — handle poison
        // by exiting; a poisoned stdout lock means a writer panicked.
        let Ok(mut out) = output.lock() else {
            return 1;
        };
        if protocol::write_preamble(&mut *out).is_err()
            || protocol::write_frame(
                &mut *out,
                &Frame::Hello {
                    pid: std::process::id(),
                },
            )
            .is_err()
        {
            return 1;
        }
    }

    // Heartbeat thread: a beacon every `heartbeat_ms` for as long as it
    // can take the lock and the pipe accepts writes. The thread dies
    // with the process; there is no need to join it.
    let beat_seq = Arc::new(AtomicU64::new(0));
    {
        let output = Arc::clone(&output);
        let beat_seq = Arc::clone(&beat_seq);
        let period = Duration::from_millis(opts.heartbeat_ms.max(1));
        std::thread::spawn(move || loop {
            std::thread::sleep(period);
            let Ok(mut out) = output.lock() else { return };
            // Relaxed: the counter is only a monotonic beacon label read
            // by the coordinator for debugging; no memory is published
            // under it — the pipe write itself is the synchronization.
            let seq = beat_seq.fetch_add(1, Ordering::Relaxed);
            if protocol::write_frame(&mut *out, &Frame::Heartbeat { seq }).is_err() {
                return;
            }
        });
    }

    let kernel = Kernel::auto();
    let metrics = Metrics::new();
    let mut tasks_seen: u64 = 0;
    let mut results_sent: u64 = 0;
    loop {
        let frame = match protocol::read_frame(&mut input) {
            Ok(f) => f,
            Err(WireError::Closed) => return 0,
            Err(e) => {
                eprintln!("flsa-shard-worker: read failed: {e}");
                return 1;
            }
        };
        let spec = match frame {
            Frame::Task(spec) => spec,
            Frame::Shutdown => return 0,
            // Tolerate (and ignore) anything else the coordinator may
            // add later; unknown tags already failed decode.
            _ => continue,
        };

        let ordinal = tasks_seen;
        tasks_seen += 1;
        if opts.fault.kill_at_task == Some(ordinal) {
            sigkill_self();
        }
        if opts.fault.hang_at_task == Some(ordinal) {
            // Seize the write lock so heartbeats stop too, then stall:
            // an alive-but-wedged worker, detectable only by silence.
            let _held = output.lock();
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }

        let output_payload = match compute::execute(&kernel, &spec, &metrics) {
            Ok(o) => o,
            Err(detail) => {
                eprintln!(
                    "flsa-shard-worker: task {} rejected: {detail}",
                    spec.task_id
                );
                return 3;
            }
        };
        let mut bytes = protocol::encode_frame(&Frame::Result {
            task_id: spec.task_id,
            output: output_payload,
        });
        let this_result = results_sent;
        results_sent += 1;
        if opts.fault.corrupt_at_result == Some(this_result) {
            // Flip a bit inside the body (past the 4-byte length prefix,
            // before the trailing CRC) so framing stays intact and the
            // corruption is exactly a checksum failure.
            let at = 4 + (bytes.len() - 8) / 2;
            bytes[at] ^= 0x40;
        }
        let Ok(mut out) = output.lock() else { return 1 };
        let write_result = if opts.fault.slow_write_ms > 0 && bytes.len() > 8 {
            // Stall with a half-written frame on the pipe: the
            // coordinator's reader blocks mid-frame and only the task
            // deadline can save it.
            let (first, rest) = bytes.split_at(bytes.len() / 2);
            out.write_all(first)
                .and_then(|()| out.flush())
                .and_then(|()| {
                    std::thread::sleep(Duration::from_millis(opts.fault.slow_write_ms));
                    out.write_all(rest)
                })
                .and_then(|()| out.flush())
        } else {
            out.write_all(&bytes).and_then(|()| out.flush())
        };
        drop(out);
        if write_result.is_err() {
            // Coordinator hung up (likely killed us already on its
            // side); nothing useful left to do.
            return 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_spec_round_trips() {
        let cases = [
            WorkerFault::default(),
            WorkerFault {
                kill_at_task: Some(3),
                ..WorkerFault::default()
            },
            WorkerFault {
                hang_at_task: Some(0),
                slow_write_ms: 25,
                ..WorkerFault::default()
            },
            WorkerFault {
                kill_at_task: Some(1),
                hang_at_task: Some(2),
                corrupt_at_result: Some(4),
                slow_write_ms: 7,
            },
        ];
        for f in cases {
            let spec = f.render();
            assert_eq!(WorkerFault::parse(&spec).unwrap(), f, "spec {spec:?}");
        }
    }

    #[test]
    fn bad_fault_specs_are_rejected() {
        for bad in ["kill", "kill:x", "explode:1", "kill:1;hang:2"] {
            assert!(WorkerFault::parse(bad).is_err(), "{bad:?}");
        }
        assert_eq!(WorkerFault::parse("").unwrap(), WorkerFault::default());
    }
}

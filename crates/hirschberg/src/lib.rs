//! Hirschberg / Myers–Miller linear-space global alignment.
//!
//! The paper's linear-space baseline (§2.2): divide-and-conquer over the
//! *vertical* sequence. Each level computes the forward last row of the top
//! half and the backward last row of the bottom half, picks the split
//! column maximizing their sum, and recurses on the two sub-rectangles.
//! Space is `O(min(m, n))`; computation is ≈ `2·m·n` DPM entries (every
//! level re-fills the whole remaining area once, and the areas of the
//! sub-problems sum to at most half the parent's).
//!
//! Hirschberg's original algorithm computed longest common subsequences;
//! Myers & Miller adapted it to sequence alignment — this implementation
//! follows their formulation, restricted (like the paper) to linear gap
//! penalties.
//!
//! Like the paper's implementation, the recursion can stop early and
//! solve sub-problems that fit a small buffer with the FM algorithm
//! ([`HirschbergConfig::base_cells`]).
#![forbid(unsafe_code)]

pub mod affine;

pub use affine::myers_miller_affine;

use flsa_dp::traceback::trace_from;
use flsa_dp::{AlignResult, Boundary, Kernel, Metrics, Move, Path, PathBuilder};
use flsa_scoring::ScoringScheme;
use flsa_seq::Sequence;

/// Tuning for the Hirschberg recursion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HirschbergConfig {
    /// Sub-problems with at most this many DPM entries (including the
    /// boundary row/column) are solved by the FM algorithm instead of
    /// recursing further. The classical algorithm corresponds to a very
    /// small value; the paper notes termination "could be sooner by using
    /// a FM algorithm when the problem size is small enough".
    pub base_cells: usize,
}

impl Default for HirschbergConfig {
    fn default() -> Self {
        // Small enough to keep the ~2·m·n operation profile observable,
        // large enough to avoid deep recursion constants.
        HirschbergConfig { base_cells: 4096 }
    }
}

/// Global alignment in linear space with the default configuration.
///
/// # Examples
///
/// ```
/// use flsa_hirschberg::hirschberg;
/// use flsa_dp::Metrics;
/// use flsa_scoring::ScoringScheme;
/// use flsa_seq::Sequence;
///
/// let scheme = ScoringScheme::paper_example();
/// let a = Sequence::from_str("a", scheme.alphabet(), "TLDKLLKD").unwrap();
/// let b = Sequence::from_str("b", scheme.alphabet(), "TDVLKAD").unwrap();
/// let metrics = Metrics::new();
/// let r = hirschberg(&a, &b, &scheme, &metrics);
/// assert_eq!(r.score, 82); // the paper's worked example
/// ```
pub fn hirschberg(
    a: &Sequence,
    b: &Sequence,
    scheme: &ScoringScheme,
    metrics: &Metrics,
) -> AlignResult {
    hirschberg_with(a, b, scheme, HirschbergConfig::default(), metrics)
}

/// Global alignment in linear space with explicit tuning.
///
/// Uses the best DP kernel backend available on this CPU (every backend
/// is bit-identical to the scalar kernel, so the path and score do not
/// depend on the machine).
pub fn hirschberg_with(
    a: &Sequence,
    b: &Sequence,
    scheme: &ScoringScheme,
    config: HirschbergConfig,
    metrics: &Metrics,
) -> AlignResult {
    hirschberg_kernel(a, b, scheme, config, &Kernel::auto(), metrics)
}

/// [`hirschberg_with`] on an explicit DP kernel: the forward/backward
/// row fills and the FM base cases all dispatch through `kernel`, and
/// the per-level row buffers are drawn from its arena instead of being
/// freshly allocated at every recursion level.
pub fn hirschberg_kernel(
    a: &Sequence,
    b: &Sequence,
    scheme: &ScoringScheme,
    config: HirschbergConfig,
    kernel: &Kernel,
    metrics: &Metrics,
) -> AlignResult {
    scheme.check_sequences(a, b);
    // Working storage: two rows of length n+1 reused across all levels
    // (the linear-space claim), plus O(log m) recursion frames.
    let row_bytes = 2 * (b.len() + 1) * std::mem::size_of::<i32>();
    let _mem = metrics.track_alloc(row_bytes);

    let mut moves = Vec::with_capacity(a.len() + b.len());
    let mut ctx = Ctx {
        scheme,
        config,
        kernel,
        metrics,
    };
    ctx.solve(a.codes(), b.codes(), &mut moves);
    let path = Path::new((0, 0), moves);
    debug_assert!(path.is_global(a.len(), b.len()));
    let score = path.score(a, b, scheme);
    AlignResult { score, path }
}

struct Ctx<'s> {
    scheme: &'s ScoringScheme,
    config: HirschbergConfig,
    kernel: &'s Kernel,
    metrics: &'s Metrics,
}

impl Ctx<'_> {
    /// Appends the optimal path for the `a × b` rectangle to `out`
    /// (forward order). The rectangle is always a *standalone* global
    /// problem: once a split point is fixed, the halves are independent.
    fn solve(&mut self, a: &[u8], b: &[u8], out: &mut Vec<Move>) {
        let (m, n) = (a.len(), b.len());
        if m == 0 {
            out.extend(std::iter::repeat_n(Move::Left, n));
            return;
        }
        if n == 0 {
            out.extend(std::iter::repeat_n(Move::Up, m));
            return;
        }
        // FM base case: tiny area, or a single row (where the FM matrix is
        // itself linear-size).
        if m == 1 || (m + 1).saturating_mul(n + 1) <= self.config.base_cells {
            self.solve_fm(a, b, out);
            return;
        }

        let gap = self.scheme.gap().linear_penalty();
        let mid = m / 2;

        // Forward pass: last row of the top half. Row buffers come from
        // the kernel's arena, so each level past the first reuses them.
        let mut fwd = self.kernel.arena().take(n + 1);
        let top_bound = Boundary::global(mid, n, gap);
        self.kernel.fill_last_row(
            &a[..mid],
            b,
            &top_bound.top,
            &top_bound.left,
            self.scheme,
            &mut fwd,
            self.metrics,
        );

        // Backward pass: last row of the reversed bottom half.
        let ra: Vec<u8> = a[mid..].iter().rev().copied().collect();
        let rb: Vec<u8> = b.iter().rev().copied().collect();
        let mut rev = self.kernel.arena().take(n + 1);
        let bot_bound = Boundary::global(ra.len(), n, gap);
        self.kernel.fill_last_row(
            &ra,
            &rb,
            &bot_bound.top,
            &bot_bound.left,
            self.scheme,
            &mut rev,
            self.metrics,
        );

        // Split column: maximize fwd[j] + rev[n - j]. Ties broken toward
        // the smallest j (deterministic).
        let mut best_j = 0usize;
        let mut best = i64::MIN;
        for j in 0..=n {
            let s = fwd[j] as i64 + rev[n - j] as i64;
            if s > best {
                best = s;
                best_j = j;
            }
        }
        self.kernel.arena().put(fwd);
        self.kernel.arena().put(rev);

        self.solve(&a[..mid], &b[..best_j], out);
        self.solve(&a[mid..], &b[best_j..], out);
    }

    /// Full-matrix solve of a standalone sub-rectangle, appending forward
    /// moves.
    fn solve_fm(&mut self, a: &[u8], b: &[u8], out: &mut Vec<Move>) {
        let (m, n) = (a.len(), b.len());
        let gap = self.scheme.gap().linear_penalty();
        let bound = Boundary::global(m, n, gap);
        let dpm = self
            .kernel
            .fill_full(a, b, &bound.top, &bound.left, self.scheme, self.metrics);
        let _mem = self.metrics.track_alloc(dpm.bytes());
        self.metrics.add_base_case_cells(m as u64 * n as u64);
        let mut builder = PathBuilder::new();
        let (ei, ej) = trace_from(&dpm, a, b, self.scheme, (m, n), &mut builder, self.metrics);
        for _ in 0..ei {
            builder.push_back(Move::Up);
        }
        for _ in 0..ej {
            builder.push_back(Move::Left);
        }
        out.extend(builder.finish((0, 0)).moves());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flsa_fullmatrix::needleman_wunsch;
    use flsa_seq::generate::homologous_pair;
    use flsa_seq::Alphabet;

    fn paper_pair() -> (Sequence, Sequence, ScoringScheme) {
        let scheme = ScoringScheme::paper_example();
        let a = Sequence::from_str("a", scheme.alphabet(), "TLDKLLKD").unwrap();
        let b = Sequence::from_str("b", scheme.alphabet(), "TDVLKAD").unwrap();
        (a, b, scheme)
    }

    #[test]
    fn paper_example_scores_82() {
        let (a, b, scheme) = paper_pair();
        let metrics = Metrics::new();
        let r = hirschberg(&a, &b, &scheme, &metrics);
        assert_eq!(r.score, 82);
        assert!(r.path.is_global(a.len(), b.len()));
    }

    #[test]
    fn matches_needleman_wunsch_on_random_pairs() {
        let scheme = ScoringScheme::dna_default();
        for seed in 0..10 {
            let (a, b) = homologous_pair("t", &Alphabet::dna(), 200, 0.8, seed).unwrap();
            let metrics = Metrics::new();
            let nw = needleman_wunsch(&a, &b, &scheme, &metrics);
            // Force real recursion with a tiny base case.
            let h = hirschberg_with(
                &a,
                &b,
                &scheme,
                HirschbergConfig { base_cells: 16 },
                &metrics,
            );
            assert_eq!(nw.score, h.score, "seed {seed}");
            assert_eq!(h.path.score(&a, &b, &scheme), h.score);
        }
    }

    #[test]
    fn op_count_is_about_twice_mn() {
        // The paper: "Approximately m × n re-computations need to be done
        // using Hirschberg's algorithm", i.e. ≈ 2·m·n total cells.
        let scheme = ScoringScheme::dna_default();
        let (a, b) = homologous_pair("t", &Alphabet::dna(), 1200, 0.8, 7).unwrap();
        let metrics = Metrics::new();
        hirschberg_with(
            &a,
            &b,
            &scheme,
            HirschbergConfig { base_cells: 64 },
            &metrics,
        );
        let factor = metrics.snapshot().cell_factor(a.len(), b.len());
        assert!(factor <= 2.05, "factor {factor} should be <= ~2");
        assert!(factor >= 1.5, "factor {factor} should be near 2");
    }

    #[test]
    fn memory_is_linear_not_quadratic() {
        let scheme = ScoringScheme::dna_default();
        let (a, b) = homologous_pair("t", &Alphabet::dna(), 2000, 0.8, 3).unwrap();

        let m_h = Metrics::new();
        hirschberg(&a, &b, &scheme, &m_h);
        let m_fm = Metrics::new();
        needleman_wunsch(&a, &b, &scheme, &m_fm);

        let h_bytes = m_h.snapshot().peak_bytes;
        let fm_bytes = m_fm.snapshot().peak_bytes;
        assert!(
            h_bytes * 20 < fm_bytes,
            "hirschberg {h_bytes} B should be far under FM {fm_bytes} B"
        );
    }

    #[test]
    fn asymmetric_lengths_work() {
        let scheme = ScoringScheme::dna_default();
        let a = Sequence::from_str("a", scheme.alphabet(), &"ACGT".repeat(100)).unwrap();
        let b = Sequence::from_str("b", scheme.alphabet(), "ACGTACGT").unwrap();
        let metrics = Metrics::new();
        let nw = needleman_wunsch(&a, &b, &scheme, &metrics);
        let h = hirschberg_with(
            &a,
            &b,
            &scheme,
            HirschbergConfig { base_cells: 16 },
            &metrics,
        );
        assert_eq!(nw.score, h.score);
    }

    #[test]
    fn empty_inputs() {
        let scheme = ScoringScheme::dna_default();
        let e = Sequence::from_str("e", scheme.alphabet(), "").unwrap();
        let b = Sequence::from_str("b", scheme.alphabet(), "ACGT").unwrap();
        let metrics = Metrics::new();
        assert_eq!(hirschberg(&e, &b, &scheme, &metrics).score, -40);
        assert_eq!(hirschberg(&b, &e, &scheme, &metrics).score, -40);
        assert_eq!(hirschberg(&e, &e, &scheme, &metrics).score, 0);
    }

    #[test]
    fn single_residue_vertical_sequence() {
        let scheme = ScoringScheme::dna_default();
        let a = Sequence::from_str("a", scheme.alphabet(), "G").unwrap();
        let b = Sequence::from_str("b", scheme.alphabet(), &"ACG".repeat(50)).unwrap();
        let metrics = Metrics::new();
        let nw = needleman_wunsch(&a, &b, &scheme, &metrics);
        let h = hirschberg(&a, &b, &scheme, &metrics);
        assert_eq!(nw.score, h.score);
    }
}

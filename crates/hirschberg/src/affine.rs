//! Myers–Miller linear-space alignment with *affine* gap penalties.
//!
//! The paper restricts its algorithms to linear gaps; Myers & Miller's
//! 1988 formulation (the one the paper cites for applying Hirschberg's
//! technique to alignment) handles the affine model `gap(L) = open +
//! L·extend` in linear space. This module implements it as the
//! workspace's production extension and as an independent oracle for the
//! affine full-matrix aligner ([`flsa_fullmatrix::gotoh()`]).
//!
//! The subtlety over the linear case is a vertical gap run *spanning* the
//! split row: the forward pass tracks, besides the best score `CC[j]`,
//! the best score `DD[j]` ending in an open vertical gap; the join takes
//! `max_j max(CC₁[j]+CC₂[n−j], DD₁[j]+DD₂[n−j] − open)` (the run's open
//! is counted by both halves, so one copy is removed), and the recursion
//! passes boundary-open parameters `tb`/`te` so a sub-problem whose path
//! starts/ends mid-gap at its corner does not charge the open again.

use flsa_dp::{AlignResult, Metrics, Move, Path};
use flsa_scoring::{GapModel, ScoringScheme};
use flsa_seq::Sequence;

const NEG: i64 = i64::MIN / 4;

struct Ctx<'s> {
    scheme: &'s ScoringScheme,
    open: i64,
    extend: i64,
    metrics: &'s Metrics,
}

impl Ctx<'_> {
    fn gap(&self, len: usize) -> i64 {
        if len == 0 {
            0
        } else {
            self.open + self.extend * len as i64
        }
    }

    /// Forward affine scan: returns, for the rectangle `a × b` (with the
    /// path entering at the top-left corner and a vertical run down the
    /// left edge opening at cost `tb`), the last-row vectors
    /// `CC[j]` (best score ending at `(m, j)`) and
    /// `DD[j]` (best ending at `(m, j)` in vertical-gap state).
    fn scan(&self, a: &[u8], b: &[u8], tb: i64) -> (Vec<i64>, Vec<i64>) {
        let (m, n) = (a.len(), b.len());
        let (o, e) = (self.open, self.extend);
        let mut cc = vec![0i64; n + 1];
        let mut dd = vec![0i64; n + 1];
        for j in 1..=n {
            cc[j] = o + e * j as i64;
            dd[j] = cc[j] + o; // pending vertical open from row 0
        }
        dd[0] = NEG;
        for i in 1..=m {
            let ai = a[i - 1];
            let mut s = cc[0]; // CC(i-1, 0)
            cc[0] = tb + e * i as i64; // the only path to (i, 0)
            dd[0] = cc[0]; // …and it ends with an Up move (a vertical run)
            let mut c = cc[0];
            let mut ee = c + o; // pending horizontal open at column 0
            for j in 1..=n {
                ee = ee.max(c + o) + e;
                dd[j] = dd[j].max(cc[j] + o) + e;
                c = dd[j].max(ee).max(s + self.scheme.sub(ai, b[j - 1]) as i64);
                s = cc[j];
                cc[j] = c;
            }
        }
        self.metrics.add_cells(m as u64 * n as u64);
        (cc, dd)
    }

    /// Appends the optimal path of the `a × b` rectangle, where a
    /// vertical run leaving the top-left corner opens at `tb` and one
    /// entering the bottom-right corner opens at `te` (either may be 0
    /// when the run continues across the boundary).
    fn solve(&self, a: &[u8], b: &[u8], tb: i64, te: i64, out: &mut Vec<Move>) {
        let (m, n) = (a.len(), b.len());
        if m == 0 {
            out.extend(std::iter::repeat_n(Move::Left, n));
            return;
        }
        if n == 0 {
            out.extend(std::iter::repeat_n(Move::Up, m));
            return;
        }
        if m == 1 {
            // Either delete a[0] (one vertical run, cheapest boundary
            // open) plus one horizontal run of all of b, or match a[0]
            // against some b[j].
            let del_open = tb.max(te);
            let delete_score = del_open + self.extend + self.gap(n);
            let mut best = delete_score;
            let mut best_j = None;
            for (j, &bj) in b.iter().enumerate() {
                let s = self.gap(j) + self.scheme.sub(a[0], bj) as i64 + self.gap(n - 1 - j);
                if s > best {
                    best = s;
                    best_j = Some(j);
                }
            }
            match best_j {
                Some(j) => {
                    out.extend(std::iter::repeat_n(Move::Left, j));
                    out.push(Move::Diag);
                    out.extend(std::iter::repeat_n(Move::Left, n - 1 - j));
                }
                None => {
                    // Put the deletion at whichever corner granted the
                    // cheaper (= larger) open.
                    if tb >= te {
                        out.push(Move::Up);
                        out.extend(std::iter::repeat_n(Move::Left, n));
                    } else {
                        out.extend(std::iter::repeat_n(Move::Left, n));
                        out.push(Move::Up);
                    }
                }
            }
            return;
        }

        let mid = m / 2;
        // Forward over the top half.
        let (cc1, dd1) = self.scan(&a[..mid], b, tb);
        // Backward over the reversed bottom half.
        let ra: Vec<u8> = a[mid..].iter().rev().copied().collect();
        let rb: Vec<u8> = b.iter().rev().copied().collect();
        let (cc2, dd2) = self.scan(&ra, &rb, te);

        // Join: type 1 crosses row `mid` at a node; type 2 crosses inside
        // a vertical run (both halves charged the open; remove one).
        let mut best = NEG;
        let mut best_j = 0usize;
        let mut mid_gap = false;
        for j in 0..=n {
            let t1 = cc1[j] + cc2[n - j];
            let t2 = dd1[j] + dd2[n - j] - self.open;
            if t1 >= best {
                best = t1;
                best_j = j;
                mid_gap = false;
            }
            if t2 > best {
                best = t2;
                best_j = j;
                mid_gap = true;
            }
        }

        if mid_gap {
            // The crossing run covers rows mid and mid+1 at column j*.
            self.solve(&a[..mid - 1], &b[..best_j], tb, 0, out);
            out.push(Move::Up);
            out.push(Move::Up);
            self.solve(&a[mid + 1..], &b[best_j..], 0, te, out);
        } else {
            self.solve(&a[..mid], &b[..best_j], tb, self.open, out);
            self.solve(&a[mid..], &b[best_j..], self.open, te, out);
        }
    }
}

/// Affine-gap global alignment in linear space (Myers & Miller 1988).
///
/// # Panics
///
/// Panics when `scheme.gap()` is not [`GapModel::Affine`].
///
/// # Examples
///
/// ```
/// use flsa_hirschberg::myers_miller_affine;
/// use flsa_fullmatrix::gotoh;
/// use flsa_dp::Metrics;
/// use flsa_scoring::{GapModel, ScoringScheme, tables};
/// use flsa_seq::Sequence;
///
/// let scheme = ScoringScheme::new(tables::dna_default(), GapModel::affine(-10, -1));
/// let a = Sequence::from_str("a", scheme.alphabet(), "ACGTACCCGTACGT").unwrap();
/// let b = Sequence::from_str("b", scheme.alphabet(), "ACGTACGTACGT").unwrap();
/// let metrics = Metrics::new();
/// let mm = myers_miller_affine(&a, &b, &scheme, &metrics);
/// let full = gotoh(&a, &b, &scheme, &metrics);
/// assert_eq!(mm.score, full.score); // linear space, same optimum
/// ```
pub fn myers_miller_affine(
    a: &Sequence,
    b: &Sequence,
    scheme: &ScoringScheme,
    metrics: &Metrics,
) -> AlignResult {
    scheme.check_sequences(a, b);
    let (open, extend) = match *scheme.gap() {
        GapModel::Affine { open, extend } => (open as i64, extend as i64),
        GapModel::Linear { .. } => {
            // flsa-check: allow(panic) — documented `# Panics` contract;
            // the solver routes gap models before reaching this fn
            // (ConfigError::GapModelNotAffine guards the fallible path).
            panic!("myers_miller_affine requires an affine gap model; use hirschberg() for linear gaps")
        }
    };
    let ctx = Ctx {
        scheme,
        open,
        extend,
        metrics,
    };
    let _mem = metrics.track_alloc(4 * (b.len() + 1) * std::mem::size_of::<i64>());
    let mut moves = Vec::with_capacity(a.len() + b.len());
    ctx.solve(a.codes(), b.codes(), open, open, &mut moves);
    let path = Path::new((0, 0), moves);
    debug_assert!(path.is_global(a.len(), b.len()));
    let score = flsa_fullmatrix::gotoh::score_path_affine(&path, a, b, scheme);
    AlignResult { score, path }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flsa_fullmatrix::gotoh::{gotoh, score_path_affine};
    use flsa_scoring::tables;
    use flsa_seq::generate::homologous_pair;
    use flsa_seq::Alphabet;

    fn affine_scheme(open: i32, extend: i32) -> ScoringScheme {
        ScoringScheme::new(tables::dna_default(), GapModel::affine(open, extend))
    }

    fn dna(scheme: &ScoringScheme, s: &str) -> Sequence {
        Sequence::from_str("s", scheme.alphabet(), s).unwrap()
    }

    #[test]
    fn matches_gotoh_on_fixed_cases() {
        let scheme = affine_scheme(-10, -2);
        let cases = [
            ("ACGT", "ACGT"),
            ("ACGT", "AGT"),
            ("AAAACCAAAA", "AAAAAAAA"),
            ("ACGTACGTACGT", "TGCATGCA"),
            ("A", "TTTTTTTT"),
            ("GATTACA", "GCATGCT"),
            ("ACCCCCCCCA", "AA"),
        ];
        for (sa, sb) in cases {
            let a = dna(&scheme, sa);
            let b = dna(&scheme, sb);
            let metrics = Metrics::new();
            let full = gotoh(&a, &b, &scheme, &metrics);
            let mm = myers_miller_affine(&a, &b, &scheme, &metrics);
            assert_eq!(mm.score, full.score, "{sa} vs {sb}");
            assert!(mm.path.is_global(a.len(), b.len()));
            assert_eq!(score_path_affine(&mm.path, &a, &b, &scheme), mm.score);
        }
    }

    #[test]
    fn matches_gotoh_on_random_homologs() {
        let scheme = affine_scheme(-12, -1);
        for seed in 0..8 {
            let (a, b) = homologous_pair("t", &Alphabet::dna(), 180, 0.75, seed).unwrap();
            let metrics = Metrics::new();
            let full = gotoh(&a, &b, &scheme, &metrics);
            let mm = myers_miller_affine(&a, &b, &scheme, &metrics);
            assert_eq!(mm.score, full.score, "seed {seed}");
        }
    }

    #[test]
    fn matches_gotoh_on_random_unrelated() {
        use flsa_seq::generate::random_sequence;
        let scheme = affine_scheme(-8, -3);
        for seed in 0..8 {
            let a = random_sequence("a", &Alphabet::dna(), 97, seed * 2);
            let b = random_sequence("b", &Alphabet::dna(), 113, seed * 2 + 1);
            let metrics = Metrics::new();
            let full = gotoh(&a, &b, &scheme, &metrics);
            let mm = myers_miller_affine(&a, &b, &scheme, &metrics);
            assert_eq!(mm.score, full.score, "seed {seed}");
            assert_eq!(score_path_affine(&mm.path, &a, &b, &scheme), mm.score);
        }
    }

    #[test]
    fn gap_run_spanning_the_split_is_one_run() {
        // A 6-base deletion dead-centre: the optimal path's vertical run
        // spans the split row, exercising the DD/type-2 join.
        let scheme = affine_scheme(-20, -1);
        let a = dna(&scheme, "ACGTACCCCCCGTACGT");
        let b = dna(&scheme, "ACGTAGTACGT");
        let metrics = Metrics::new();
        let full = gotoh(&a, &b, &scheme, &metrics);
        let mm = myers_miller_affine(&a, &b, &scheme, &metrics);
        assert_eq!(mm.score, full.score);
        // The Ups must be contiguous (single run), or the rescore would
        // pay two opens and fall below the optimum — already checked by
        // the score equality above, but assert directly too.
        let ups: Vec<usize> = mm
            .path
            .moves()
            .iter()
            .enumerate()
            .filter(|(_, &m)| m == Move::Up)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(ups.len(), 6);
        assert!(ups.windows(2).all(|w| w[1] == w[0] + 1), "{ups:?}");
    }

    #[test]
    fn memory_is_linear() {
        let scheme = affine_scheme(-10, -2);
        let (a, b) = homologous_pair("t", &Alphabet::dna(), 1200, 0.8, 5).unwrap();
        let m_mm = Metrics::new();
        myers_miller_affine(&a, &b, &scheme, &m_mm);
        let m_full = Metrics::new();
        gotoh(&a, &b, &scheme, &m_full);
        assert!(
            m_mm.snapshot().peak_bytes * 20 < m_full.snapshot().peak_bytes,
            "mm {} vs gotoh {}",
            m_mm.snapshot().peak_bytes,
            m_full.snapshot().peak_bytes
        );
    }

    #[test]
    fn empty_and_single_inputs() {
        let scheme = affine_scheme(-10, -2);
        let metrics = Metrics::new();
        let e = dna(&scheme, "");
        let b = dna(&scheme, "ACG");
        assert_eq!(myers_miller_affine(&e, &b, &scheme, &metrics).score, -16);
        assert_eq!(myers_miller_affine(&b, &e, &scheme, &metrics).score, -16);
        assert_eq!(myers_miller_affine(&e, &e, &scheme, &metrics).score, 0);
        let a1 = dna(&scheme, "G");
        let full = gotoh(&a1, &b, &scheme, &metrics);
        let mm = myers_miller_affine(&a1, &b, &scheme, &metrics);
        assert_eq!(mm.score, full.score);
    }

    #[test]
    #[should_panic(expected = "requires an affine gap model")]
    fn linear_scheme_rejected() {
        let scheme = ScoringScheme::dna_default();
        let a = dna(&scheme, "ACG");
        let metrics = Metrics::new();
        myers_miller_affine(&a, &a, &scheme, &metrics);
    }
}

//! The `FLSASRV1` wire protocol (DESIGN.md §14).
//!
//! Every connection opens with the 8-byte preamble `FLSASRV1`; after
//! that both directions speak length-prefixed frames:
//!
//! ```text
//! +----------------+---------+------------------------+
//! | len: u32 LE    | tag: u8 | body (tag-specific)    |
//! +----------------+---------+------------------------+
//! ```
//!
//! `len` counts the payload (tag + body) and must be `1..=MAX_FRAME`.
//! Variable-length fields inside the body carry their own `u32` length,
//! validated against the *remaining* payload before any allocation — the
//! same allocation-bomb defence the `FLSACKP1` snapshot decoder uses: a
//! corrupted length can never make the decoder reserve more memory than
//! the (already capped) frame it arrived in.
//!
//! Decode failures are typed, not fatal by default:
//!
//! * [`ProtocolError::Frame`] — the length prefix itself is damaged
//!   (zero, over the cap, or the stream died mid-frame). Framing is
//!   lost; the peer answers with a `ProtocolError` frame and closes.
//! * [`ProtocolError::Malformed`] — a well-framed payload that does not
//!   parse (unknown tag, truncated field, over-long field, junk
//!   trailing bytes). The frame boundary is intact, so the peer answers
//!   with a `ProtocolError` frame and *keeps the connection* — one bad
//!   request must not tear down a client's other in-flight jobs.

use std::io::{Read, Write};

/// Connection preamble: protocol name + version, sent by the client
/// immediately after connecting.
pub const PREAMBLE: &[u8; 8] = b"FLSASRV1";

/// Hard cap on a frame payload. Large enough for two 8 Mb sequences,
/// small enough that a hostile length prefix cannot OOM the daemon.
pub const MAX_FRAME: usize = 20 << 20;

/// Cap on a single sequence field inside an [`AlignRequest`].
pub const MAX_SEQ_BYTES: usize = 8 << 20;

/// Typed decode/transport failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Framing damage: length prefix invalid or stream died mid-frame.
    /// The byte stream cannot be re-synchronized.
    Frame {
        /// What was wrong with the framing.
        detail: String,
    },
    /// A complete, well-framed payload that failed to parse. The stream
    /// is still framed correctly; the connection can continue.
    Malformed {
        /// What failed to parse.
        detail: String,
    },
    /// Transport I/O error.
    Io {
        /// The underlying error.
        detail: String,
    },
    /// Clean end-of-stream between frames.
    Closed,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Frame { detail } => write!(f, "framing error: {detail}"),
            ProtocolError::Malformed { detail } => write!(f, "malformed frame: {detail}"),
            ProtocolError::Io { detail } => write!(f, "i/o error: {detail}"),
            ProtocolError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Why a job failed, as carried on the wire. The server maps
/// [`fastlsa_core::AlignError`] onto this taxonomy; clients match on it
/// to decide between retrying, resubmitting smaller, and giving up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request itself is invalid (unknown matrix, alphabet
    /// mismatch, bad config). Retrying unchanged will fail again.
    BadRequest = 1,
    /// The request's deadline expired (queued or mid-run); partial work
    /// was drained and discarded.
    DeadlineExpired = 2,
    /// The run was cancelled without an expired deadline (drain races,
    /// client-side aborts).
    Cancelled = 3,
    /// Memory was exhausted past the bottom of the degradation ladder.
    ResourceExhausted = 4,
    /// A worker panicked on every bounded-retry attempt.
    WorkerPanic = 5,
    /// The job is larger than the server's total byte budget admits; it
    /// can never be scheduled here.
    TooLarge = 6,
    /// The server is draining and will not start this job; a snapshot
    /// (when the job was spooled) completes it after restart.
    Draining = 7,
    /// Anything else — the detail string carries the real error.
    Internal = 8,
}

impl ErrorCode {
    /// Wire value → code (`None` for unknown values).
    pub fn from_u8(v: u8) -> Option<ErrorCode> {
        match v {
            1 => Some(ErrorCode::BadRequest),
            2 => Some(ErrorCode::DeadlineExpired),
            3 => Some(ErrorCode::Cancelled),
            4 => Some(ErrorCode::ResourceExhausted),
            5 => Some(ErrorCode::WorkerPanic),
            6 => Some(ErrorCode::TooLarge),
            7 => Some(ErrorCode::Draining),
            8 => Some(ErrorCode::Internal),
            _ => None,
        }
    }

    /// Stable lower-case name (used in logs and test assertions).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::DeadlineExpired => "deadline-expired",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::ResourceExhausted => "resource-exhausted",
            ErrorCode::WorkerPanic => "worker-panic",
            ErrorCode::TooLarge => "too-large",
            ErrorCode::Draining => "draining",
            ErrorCode::Internal => "internal",
        }
    }
}

/// One alignment job as submitted by a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignRequest {
    /// Client-chosen correlation id, echoed on every response.
    pub id: u64,
    /// Deadline in milliseconds from server-side admission (0 = none).
    pub deadline_ms: u32,
    /// Worker threads for the run (0 or 1 = sequential).
    pub threads: u16,
    /// FastLSA grid division factor.
    pub k: u16,
    /// Linear gap penalty.
    pub gap: i32,
    /// FastLSA base-case buffer size in DPM entries.
    pub base_cells: u64,
    /// Named substitution matrix (`dna`, `blosum62`, `pam250`,
    /// `identity`, `paper`).
    pub matrix: String,
    /// Sequence A, ASCII residues.
    pub seq_a: Vec<u8>,
    /// Sequence B, ASCII residues.
    pub seq_b: Vec<u8>,
}

/// A completed alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignOk {
    /// Correlation id from the request.
    pub id: u64,
    /// Optimal global score.
    pub score: i64,
    /// The optimal path, run-length encoded (`M`/`D`/`I`).
    pub cigar: String,
}

/// A job that terminated with a typed error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignFail {
    /// Correlation id from the request.
    pub id: u64,
    /// Error class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub detail: String,
}

/// Every frame the protocol speaks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → server: submit a job.
    Align(AlignRequest),
    /// Server → client: job result.
    Ok(AlignOk),
    /// Server → client: job failed.
    Fail(AlignFail),
    /// Server → client: admission refused the job; retry after the hint.
    Overloaded {
        /// Correlation id from the request.
        id: u64,
        /// Suggested client back-off before resubmitting.
        retry_after_ms: u32,
    },
    /// Either direction: the last frame could not be decoded.
    ProtocolError {
        /// What failed to decode.
        detail: String,
    },
    /// Client → server: drain and exit (same path as SIGTERM).
    Shutdown,
    /// Server → client: drain acknowledged and under way.
    ShutdownAck,
    /// Liveness probe.
    Ping(u64),
    /// Liveness reply, echoing the probe token.
    Pong(u64),
}

const TAG_ALIGN: u8 = 0x01;
const TAG_OK: u8 = 0x02;
const TAG_FAIL: u8 = 0x03;
const TAG_OVERLOADED: u8 = 0x04;
const TAG_PROTOCOL_ERROR: u8 = 0x05;
const TAG_SHUTDOWN: u8 = 0x06;
const TAG_SHUTDOWN_ACK: u8 = 0x07;
const TAG_PING: u8 = 0x08;
const TAG_PONG: u8 = 0x09;

// --- encoding ------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u32(out, v.len() as u32);
    out.extend_from_slice(v);
}

/// Encodes `frame` as a payload (tag + body), without the length prefix.
pub fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    match frame {
        Frame::Align(r) => {
            out.push(TAG_ALIGN);
            put_u64(&mut out, r.id);
            put_u32(&mut out, r.deadline_ms);
            put_u32(&mut out, r.threads as u32);
            put_u32(&mut out, r.k as u32);
            put_i32(&mut out, r.gap);
            put_u64(&mut out, r.base_cells);
            put_bytes(&mut out, r.matrix.as_bytes());
            put_bytes(&mut out, &r.seq_a);
            put_bytes(&mut out, &r.seq_b);
        }
        Frame::Ok(r) => {
            out.push(TAG_OK);
            put_u64(&mut out, r.id);
            put_i64(&mut out, r.score);
            put_bytes(&mut out, r.cigar.as_bytes());
        }
        Frame::Fail(r) => {
            out.push(TAG_FAIL);
            put_u64(&mut out, r.id);
            out.push(r.code as u8);
            put_bytes(&mut out, r.detail.as_bytes());
        }
        Frame::Overloaded { id, retry_after_ms } => {
            out.push(TAG_OVERLOADED);
            put_u64(&mut out, *id);
            put_u32(&mut out, *retry_after_ms);
        }
        Frame::ProtocolError { detail } => {
            out.push(TAG_PROTOCOL_ERROR);
            put_bytes(&mut out, detail.as_bytes());
        }
        Frame::Shutdown => out.push(TAG_SHUTDOWN),
        Frame::ShutdownAck => out.push(TAG_SHUTDOWN_ACK),
        Frame::Ping(tok) => {
            out.push(TAG_PING);
            put_u64(&mut out, *tok);
        }
        Frame::Pong(tok) => {
            out.push(TAG_PONG);
            put_u64(&mut out, *tok);
        }
    }
    out
}

/// Encodes `frame` with its length prefix — the exact bytes that go on
/// the wire.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let payload = encode_payload(frame);
    let mut out = Vec::with_capacity(4 + payload.len());
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    out
}

/// Writes one frame to `w` (single `write_all`, so concurrent writers
/// holding the same lock interleave at frame granularity).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), ProtocolError> {
    let bytes = encode_frame(frame);
    w.write_all(&bytes).map_err(|e| ProtocolError::Io {
        detail: e.to_string(),
    })?;
    w.flush().map_err(|e| ProtocolError::Io {
        detail: e.to_string(),
    })
}

// --- decoding ------------------------------------------------------------

/// Bounded little-endian cursor over one frame payload. Every read is
/// length-checked against the remaining bytes before it happens, so a
/// corrupted inner length can reject but never over-read or over-allocate.
struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(data: &'a [u8]) -> Self {
        Dec { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ProtocolError> {
        if self.remaining() < n {
            return Err(ProtocolError::Malformed {
                detail: format!(
                    "truncated {what}: need {n} bytes, have {}",
                    self.remaining()
                ),
            });
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, ProtocolError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, ProtocolError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn i32(&mut self, what: &str) -> Result<i32, ProtocolError> {
        Ok(self.u32(what)? as i32)
    }

    fn u64(&mut self, what: &str) -> Result<u64, ProtocolError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn i64(&mut self, what: &str) -> Result<i64, ProtocolError> {
        Ok(self.u64(what)? as i64)
    }

    /// A length-prefixed byte field, capped by both the remaining payload
    /// and `cap`. The remaining-bytes check runs *before* the allocation.
    fn bytes(&mut self, cap: usize, what: &str) -> Result<Vec<u8>, ProtocolError> {
        let len = self.u32(what)? as usize;
        if len > cap {
            return Err(ProtocolError::Malformed {
                detail: format!("{what} length {len} exceeds cap {cap}"),
            });
        }
        Ok(self.take(len, what)?.to_vec())
    }

    fn string(&mut self, cap: usize, what: &str) -> Result<String, ProtocolError> {
        let raw = self.bytes(cap, what)?;
        String::from_utf8(raw).map_err(|_| ProtocolError::Malformed {
            detail: format!("{what} is not valid UTF-8"),
        })
    }

    /// Rejects trailing junk: a frame must be exactly its fields.
    fn finish(self, what: &str) -> Result<(), ProtocolError> {
        if self.remaining() != 0 {
            return Err(ProtocolError::Malformed {
                detail: format!(
                    "{what}: {} trailing bytes after last field",
                    self.remaining()
                ),
            });
        }
        Ok(())
    }
}

/// Decodes one payload (tag + body) into a [`Frame`].
pub fn decode_payload(payload: &[u8]) -> Result<Frame, ProtocolError> {
    let mut d = Dec::new(payload);
    let tag = d.u8("frame tag")?;
    let frame = match tag {
        TAG_ALIGN => {
            let id = d.u64("request id")?;
            let deadline_ms = d.u32("deadline_ms")?;
            let threads = d.u32("threads")?;
            let k = d.u32("k")?;
            if threads > u16::MAX as u32 || k > u16::MAX as u32 {
                return Err(ProtocolError::Malformed {
                    detail: format!("threads {threads} / k {k} out of range"),
                });
            }
            let gap = d.i32("gap")?;
            let base_cells = d.u64("base_cells")?;
            let matrix = d.string(64, "matrix name")?;
            let seq_a = d.bytes(MAX_SEQ_BYTES, "sequence a")?;
            let seq_b = d.bytes(MAX_SEQ_BYTES, "sequence b")?;
            Frame::Align(AlignRequest {
                id,
                deadline_ms,
                threads: threads as u16,
                k: k as u16,
                gap,
                base_cells,
                matrix,
                seq_a,
                seq_b,
            })
        }
        TAG_OK => {
            let id = d.u64("result id")?;
            let score = d.i64("score")?;
            let cigar = d.string(MAX_FRAME, "cigar")?;
            Frame::Ok(AlignOk { id, score, cigar })
        }
        TAG_FAIL => {
            let id = d.u64("fail id")?;
            let raw = d.u8("error code")?;
            let code = ErrorCode::from_u8(raw).ok_or_else(|| ProtocolError::Malformed {
                detail: format!("unknown error code {raw}"),
            })?;
            let detail = d.string(MAX_FRAME, "error detail")?;
            Frame::Fail(AlignFail { id, code, detail })
        }
        TAG_OVERLOADED => {
            let id = d.u64("overloaded id")?;
            let retry_after_ms = d.u32("retry_after_ms")?;
            Frame::Overloaded { id, retry_after_ms }
        }
        TAG_PROTOCOL_ERROR => {
            let detail = d.string(MAX_FRAME, "protocol error detail")?;
            Frame::ProtocolError { detail }
        }
        TAG_SHUTDOWN => Frame::Shutdown,
        TAG_SHUTDOWN_ACK => Frame::ShutdownAck,
        TAG_PING => Frame::Ping(d.u64("ping token")?),
        TAG_PONG => Frame::Pong(d.u64("pong token")?),
        other => {
            return Err(ProtocolError::Malformed {
                detail: format!("unknown frame tag 0x{other:02x}"),
            })
        }
    };
    d.finish("frame")?;
    Ok(frame)
}

/// Validates a frame length prefix before any buffer is reserved.
pub fn check_frame_len(len: u32) -> Result<usize, ProtocolError> {
    let len = len as usize;
    if len == 0 {
        return Err(ProtocolError::Frame {
            detail: "zero-length frame".to_string(),
        });
    }
    if len > MAX_FRAME {
        return Err(ProtocolError::Frame {
            detail: format!("frame length {len} exceeds cap {MAX_FRAME}"),
        });
    }
    Ok(len)
}

/// Reads one frame from a blocking reader. A clean EOF *between* frames
/// is [`ProtocolError::Closed`]; an EOF mid-frame is framing damage.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, ProtocolError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Err(ProtocolError::Closed),
            Ok(0) => {
                return Err(ProtocolError::Frame {
                    detail: "eof inside frame length".to_string(),
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                return Err(ProtocolError::Io {
                    detail: e.to_string(),
                })
            }
        }
    }
    let len = check_frame_len(u32::from_le_bytes(len_buf))?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ProtocolError::Frame {
                detail: "eof inside frame payload".to_string(),
            }
        } else {
            ProtocolError::Io {
                detail: e.to_string(),
            }
        }
    })?;
    decode_payload(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> AlignRequest {
        AlignRequest {
            id: 7,
            deadline_ms: 1500,
            threads: 2,
            k: 8,
            gap: -10,
            base_cells: 1 << 20,
            matrix: "dna".to_string(),
            seq_a: b"ACGTACGT".to_vec(),
            seq_b: b"ACGTTCGT".to_vec(),
        }
    }

    #[test]
    fn every_frame_round_trips() {
        let frames = vec![
            Frame::Align(sample_request()),
            Frame::Ok(AlignOk {
                id: 7,
                score: -42,
                cigar: "3M1D4M".to_string(),
            }),
            Frame::Fail(AlignFail {
                id: 9,
                code: ErrorCode::DeadlineExpired,
                detail: "deadline 1500ms expired".to_string(),
            }),
            Frame::Overloaded {
                id: 3,
                retry_after_ms: 250,
            },
            Frame::ProtocolError {
                detail: "unknown frame tag 0xff".to_string(),
            },
            Frame::Shutdown,
            Frame::ShutdownAck,
            Frame::Ping(99),
            Frame::Pong(99),
        ];
        for f in frames {
            let payload = encode_payload(&f);
            assert_eq!(decode_payload(&payload).unwrap(), f, "{f:?}");
            // And through the stream layer.
            let wire = encode_frame(&f);
            let mut cursor = std::io::Cursor::new(wire);
            assert_eq!(read_frame(&mut cursor).unwrap(), f, "{f:?}");
        }
    }

    #[test]
    fn error_codes_round_trip() {
        for raw in 0u8..=32 {
            match ErrorCode::from_u8(raw) {
                Some(code) => assert_eq!(code as u8, raw),
                None => assert!(!(1..=8).contains(&raw)),
            }
        }
    }

    #[test]
    fn zero_and_oversized_lengths_are_framing_errors() {
        assert!(matches!(
            check_frame_len(0),
            Err(ProtocolError::Frame { .. })
        ));
        assert!(matches!(
            check_frame_len((MAX_FRAME + 1) as u32),
            Err(ProtocolError::Frame { .. })
        ));
        assert_eq!(check_frame_len(1).unwrap(), 1);
    }

    #[test]
    fn inner_length_bomb_is_rejected_before_allocation() {
        // An Align frame claiming a 4 GiB sequence inside a tiny payload.
        let mut payload = encode_payload(&Frame::Align(sample_request()));
        // Corrupt the matrix-name length field into u32::MAX.
        let name_len_at = 1 + 8 + 4 + 4 + 4 + 4 + 8;
        payload[name_len_at..name_len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_payload(&payload).unwrap_err();
        assert!(matches!(err, ProtocolError::Malformed { .. }), "{err:?}");
    }

    #[test]
    fn trailing_junk_is_malformed() {
        let mut payload = encode_payload(&Frame::Ping(1));
        payload.push(0);
        assert!(matches!(
            decode_payload(&payload),
            Err(ProtocolError::Malformed { .. })
        ));
    }

    #[test]
    fn eof_between_frames_is_closed_inside_is_framing() {
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert_eq!(read_frame(&mut empty).unwrap_err(), ProtocolError::Closed);
        let wire = encode_frame(&Frame::Ping(1));
        for cut in 1..wire.len() {
            let mut cursor = std::io::Cursor::new(wire[..cut].to_vec());
            let err = read_frame(&mut cursor).unwrap_err();
            assert!(
                matches!(err, ProtocolError::Frame { .. }),
                "cut={cut}: {err:?}"
            );
        }
    }

    #[test]
    fn non_utf8_matrix_name_is_malformed() {
        let mut r = sample_request();
        r.matrix = "dna".to_string();
        let mut payload = encode_payload(&Frame::Align(r));
        let name_at = 1 + 8 + 4 + 4 + 4 + 4 + 8 + 4;
        payload[name_at] = 0xff;
        assert!(matches!(
            decode_payload(&payload),
            Err(ProtocolError::Malformed { .. })
        ));
    }
}

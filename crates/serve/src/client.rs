//! A small blocking client for the `FLSASRV1` protocol.
//!
//! Used by the CLI (`flsa bench serve`), the load generator, and the
//! integration tests. One TCP connection, synchronous send/receive;
//! responses may arrive out of submission order when multiple requests
//! are outstanding (the server answers as workers finish), so callers
//! pipelining requests must match responses by correlation id.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::wire::{self, AlignRequest, Frame, ProtocolError, PREAMBLE};

/// Bounds for [`Client::request_with_retry`]: how many times to submit
/// and how long to wait between attempts when the server is overloaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total submission attempts, the first included. Must be ≥ 1
    /// (a value of 0 is treated as 1 — the request always goes out
    /// once).
    pub max_attempts: u32,
    /// Backoff before a retry when the server's `Overloaded` carries no
    /// `retry_after_ms` hint; doubles per hintless rejection.
    pub base_backoff: Duration,
    /// Upper bound on any single wait, hinted or local — a confused
    /// server cannot park the client for minutes.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
        }
    }
}

/// A connected protocol client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects and sends the protocol preamble.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ProtocolError> {
        let stream = TcpStream::connect(addr).map_err(|e| ProtocolError::Io {
            detail: e.to_string(),
        })?;
        stream.set_nodelay(true).ok();
        let mut client = Client { stream };
        client.write_all(PREAMBLE)?;
        Ok(client)
    }

    /// A second handle over the same connection (a shared socket): one
    /// handle can keep sending while the other blocks on receives —
    /// how the open-loop load generator splits its sender from its
    /// response reader without desyncing the frame stream.
    pub fn try_clone(&self) -> Result<Client, ProtocolError> {
        let stream = self.stream.try_clone().map_err(|e| ProtocolError::Io {
            detail: e.to_string(),
        })?;
        Ok(Client { stream })
    }

    /// Bounds how long a [`Client::recv`] may block (`None` = forever).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ProtocolError> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| ProtocolError::Io {
                detail: e.to_string(),
            })
    }

    fn write_all(&mut self, bytes: &[u8]) -> Result<(), ProtocolError> {
        use std::io::Write;
        self.stream.write_all(bytes).map_err(|e| ProtocolError::Io {
            detail: e.to_string(),
        })
    }

    /// Sends one frame.
    pub fn send(&mut self, frame: &Frame) -> Result<(), ProtocolError> {
        wire::write_frame(&mut self.stream, frame)
    }

    /// Sends raw bytes as-is — the corruption tests use this to put
    /// deliberately damaged frames on the wire.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ProtocolError> {
        self.write_all(bytes)
    }

    /// Receives one frame.
    pub fn recv(&mut self) -> Result<Frame, ProtocolError> {
        wire::read_frame(&mut self.stream)
    }

    /// Submits one request and waits for its response (single
    /// outstanding request; skips unrelated frames such as `Pong`s).
    pub fn align(&mut self, request: AlignRequest) -> Result<Frame, ProtocolError> {
        let id = request.id;
        self.send(&Frame::Align(request))?;
        loop {
            let frame = self.recv()?;
            let matches = match &frame {
                Frame::Ok(r) => r.id == id,
                Frame::Fail(r) => r.id == id,
                Frame::Overloaded { id: rid, .. } => *rid == id,
                Frame::ProtocolError { .. } => true,
                _ => false,
            };
            if matches {
                return Ok(frame);
            }
        }
    }

    /// Submits a request, honoring `Overloaded` rejections with a
    /// bounded, server-guided retry loop: each rejection is retried
    /// after the server's `retry_after_ms` hint (or a doubling local
    /// backoff when the server sends no hint), up to
    /// [`RetryPolicy::max_attempts`] attempts. The final attempt's
    /// response — whatever it is, including a still-`Overloaded`
    /// rejection — is returned verbatim, so the caller always sees a
    /// typed outcome rather than an open-ended spin.
    pub fn request_with_retry(
        &mut self,
        request: &AlignRequest,
        policy: &RetryPolicy,
    ) -> Result<Frame, ProtocolError> {
        self.request_with_retry_via(request, policy, std::thread::sleep)
    }

    /// [`Client::request_with_retry`] with an injectable sleep, so the
    /// unit tests can run the whole backoff schedule on a virtual
    /// clock and assert the exact waits instead of actually waiting.
    pub fn request_with_retry_via(
        &mut self,
        request: &AlignRequest,
        policy: &RetryPolicy,
        mut sleep: impl FnMut(Duration),
    ) -> Result<Frame, ProtocolError> {
        let mut local_backoff = policy.base_backoff;
        let attempts = policy.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            attempt += 1;
            let frame = self.align(request.clone())?;
            match frame {
                // The guard fails on the final attempt, so the loop
                // always returns the last response verbatim.
                Frame::Overloaded { retry_after_ms, .. } if attempt < attempts => {
                    let hinted = if retry_after_ms > 0 {
                        Duration::from_millis(u64::from(retry_after_ms))
                    } else {
                        local_backoff
                    };
                    sleep(hinted.min(policy.max_backoff));
                    local_backoff = (local_backoff * 2).min(policy.max_backoff);
                }
                other => return Ok(other),
            }
        }
    }

    /// Round-trips a liveness probe.
    pub fn ping(&mut self, token: u64) -> Result<(), ProtocolError> {
        self.send(&Frame::Ping(token))?;
        match self.recv()? {
            Frame::Pong(t) if t == token => Ok(()),
            other => Err(ProtocolError::Malformed {
                detail: format!("expected Pong({token}), got {other:?}"),
            }),
        }
    }

    /// Requests a graceful drain and waits for the acknowledgement.
    pub fn shutdown(&mut self) -> Result<(), ProtocolError> {
        self.send(&Frame::Shutdown)?;
        loop {
            match self.recv()? {
                Frame::ShutdownAck => return Ok(()),
                // Responses for still-draining jobs may interleave.
                Frame::Ok(_) | Frame::Fail(_) | Frame::Overloaded { .. } => continue,
                other => {
                    return Err(ProtocolError::Malformed {
                        detail: format!("expected ShutdownAck, got {other:?}"),
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::AlignOk;
    use std::net::TcpListener;

    /// A scripted one-connection server: reads the preamble, then for
    /// each incoming `Align` answers the next frame of the script (the
    /// response id is patched to match the request).
    fn scripted_server(script: Vec<Frame>) -> (std::net::SocketAddr, std::thread::JoinHandle<u32>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut preamble = [0u8; PREAMBLE.len()];
            std::io::Read::read_exact(&mut stream, &mut preamble).expect("preamble");
            assert_eq!(&preamble, PREAMBLE);
            let mut served = 0u32;
            for mut response in script {
                let request = match wire::read_frame(&mut stream) {
                    Ok(f) => f,
                    // Client gave up mid-script: report how far we got.
                    Err(_) => return served,
                };
                let Frame::Align(req) = request else {
                    panic!("expected Align, got {request:?}")
                };
                match &mut response {
                    Frame::Ok(r) => r.id = req.id,
                    Frame::Overloaded { id, .. } => *id = req.id,
                    _ => {}
                }
                wire::write_frame(&mut stream, &response).expect("respond");
                served += 1;
            }
            served
        });
        (addr, handle)
    }

    fn request() -> AlignRequest {
        AlignRequest {
            id: 77,
            deadline_ms: 0,
            threads: 0,
            k: 0,
            gap: -2,
            base_cells: 4096,
            matrix: "dna".to_string(),
            seq_a: b"ACGT".to_vec(),
            seq_b: b"ACCT".to_vec(),
        }
    }

    fn ok_frame() -> Frame {
        Frame::Ok(AlignOk {
            id: 0,
            score: 5,
            cigar: "4M".to_string(),
        })
    }

    fn overloaded(retry_after_ms: u32) -> Frame {
        Frame::Overloaded {
            id: 0,
            retry_after_ms,
        }
    }

    #[test]
    fn retry_honors_server_hints_on_a_virtual_clock() {
        let (addr, server) = scripted_server(vec![overloaded(40), overloaded(90), ok_frame()]);
        let mut client = Client::connect(addr).expect("connect");
        let mut waits = Vec::new();
        let frame = client
            .request_with_retry_via(&request(), &RetryPolicy::default(), |d| waits.push(d))
            .expect("retry loop");
        assert!(matches!(frame, Frame::Ok(_)), "{frame:?}");
        // Each wait is exactly the server's hint, not the local schedule.
        assert_eq!(
            waits,
            vec![Duration::from_millis(40), Duration::from_millis(90)]
        );
        assert_eq!(server.join().expect("server"), 3);
    }

    #[test]
    fn hintless_rejections_double_the_local_backoff_and_cap_it() {
        let (addr, server) = scripted_server(vec![
            overloaded(0),
            overloaded(0),
            overloaded(0),
            ok_frame(),
        ]);
        let mut client = Client::connect(addr).expect("connect");
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(15),
        };
        let mut waits = Vec::new();
        let frame = client
            .request_with_retry_via(&request(), &policy, |d| waits.push(d))
            .expect("retry loop");
        assert!(matches!(frame, Frame::Ok(_)), "{frame:?}");
        // 10ms, then doubled-but-capped 15ms twice.
        assert_eq!(
            waits,
            vec![
                Duration::from_millis(10),
                Duration::from_millis(15),
                Duration::from_millis(15),
            ]
        );
        assert_eq!(server.join().expect("server"), 4);
    }

    #[test]
    fn attempts_are_bounded_and_the_last_rejection_is_returned() {
        let (addr, server) = scripted_server(vec![overloaded(5), overloaded(5), overloaded(5)]);
        let mut client = Client::connect(addr).expect("connect");
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let mut waits = Vec::new();
        let frame = client
            .request_with_retry_via(&request(), &policy, |d| waits.push(d))
            .expect("retry loop");
        // The caller sees the typed rejection, not an error or a spin.
        assert!(matches!(frame, Frame::Overloaded { .. }), "{frame:?}");
        assert_eq!(waits.len(), 2, "no wait after the final attempt");
        drop(client);
        assert_eq!(server.join().expect("server"), 3);
    }

    #[test]
    fn zero_attempts_still_submits_once() {
        let (addr, server) = scripted_server(vec![ok_frame()]);
        let mut client = Client::connect(addr).expect("connect");
        let policy = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        let frame = client
            .request_with_retry_via(&request(), &policy, |_| panic!("no wait expected"))
            .expect("retry loop");
        assert!(matches!(frame, Frame::Ok(_)), "{frame:?}");
        assert_eq!(server.join().expect("server"), 1);
    }
}

//! A small blocking client for the `FLSASRV1` protocol.
//!
//! Used by the CLI (`flsa bench serve`), the load generator, and the
//! integration tests. One TCP connection, synchronous send/receive;
//! responses may arrive out of submission order when multiple requests
//! are outstanding (the server answers as workers finish), so callers
//! pipelining requests must match responses by correlation id.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::wire::{self, AlignRequest, Frame, ProtocolError, PREAMBLE};

/// A connected protocol client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects and sends the protocol preamble.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ProtocolError> {
        let stream = TcpStream::connect(addr).map_err(|e| ProtocolError::Io {
            detail: e.to_string(),
        })?;
        stream.set_nodelay(true).ok();
        let mut client = Client { stream };
        client.write_all(PREAMBLE)?;
        Ok(client)
    }

    /// A second handle over the same connection (a shared socket): one
    /// handle can keep sending while the other blocks on receives —
    /// how the open-loop load generator splits its sender from its
    /// response reader without desyncing the frame stream.
    pub fn try_clone(&self) -> Result<Client, ProtocolError> {
        let stream = self.stream.try_clone().map_err(|e| ProtocolError::Io {
            detail: e.to_string(),
        })?;
        Ok(Client { stream })
    }

    /// Bounds how long a [`Client::recv`] may block (`None` = forever).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ProtocolError> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| ProtocolError::Io {
                detail: e.to_string(),
            })
    }

    fn write_all(&mut self, bytes: &[u8]) -> Result<(), ProtocolError> {
        use std::io::Write;
        self.stream.write_all(bytes).map_err(|e| ProtocolError::Io {
            detail: e.to_string(),
        })
    }

    /// Sends one frame.
    pub fn send(&mut self, frame: &Frame) -> Result<(), ProtocolError> {
        wire::write_frame(&mut self.stream, frame)
    }

    /// Sends raw bytes as-is — the corruption tests use this to put
    /// deliberately damaged frames on the wire.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ProtocolError> {
        self.write_all(bytes)
    }

    /// Receives one frame.
    pub fn recv(&mut self) -> Result<Frame, ProtocolError> {
        wire::read_frame(&mut self.stream)
    }

    /// Submits one request and waits for its response (single
    /// outstanding request; skips unrelated frames such as `Pong`s).
    pub fn align(&mut self, request: AlignRequest) -> Result<Frame, ProtocolError> {
        let id = request.id;
        self.send(&Frame::Align(request))?;
        loop {
            let frame = self.recv()?;
            let matches = match &frame {
                Frame::Ok(r) => r.id == id,
                Frame::Fail(r) => r.id == id,
                Frame::Overloaded { id: rid, .. } => *rid == id,
                Frame::ProtocolError { .. } => true,
                _ => false,
            };
            if matches {
                return Ok(frame);
            }
        }
    }

    /// Round-trips a liveness probe.
    pub fn ping(&mut self, token: u64) -> Result<(), ProtocolError> {
        self.send(&Frame::Ping(token))?;
        match self.recv()? {
            Frame::Pong(t) if t == token => Ok(()),
            other => Err(ProtocolError::Malformed {
                detail: format!("expected Pong({token}), got {other:?}"),
            }),
        }
    }

    /// Requests a graceful drain and waits for the acknowledgement.
    pub fn shutdown(&mut self) -> Result<(), ProtocolError> {
        self.send(&Frame::Shutdown)?;
        loop {
            match self.recv()? {
                Frame::ShutdownAck => return Ok(()),
                // Responses for still-draining jobs may interleave.
                Frame::Ok(_) | Frame::Fail(_) | Frame::Overloaded { .. } => continue,
                other => {
                    return Err(ProtocolError::Malformed {
                        detail: format!("expected ShutdownAck, got {other:?}"),
                    })
                }
            }
        }
    }
}

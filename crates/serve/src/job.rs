//! Request validation and job shaping.
//!
//! A wire-level [`AlignRequest`] becomes a [`JobSpec`] here: the named
//! scoring scheme is reconstructed, the sequences are checked against
//! its alphabet, the FastLSA configuration is validated, and the job's
//! memory footprint is estimated with the paper's space model so the
//! admission controller can reason about it *before* any allocation
//! happens. Every rejection carries a typed [`ErrorCode`] — a bad
//! request is answered, never dropped.

use fastlsa_core::{model, AlignError, FastLsaConfig};
use flsa_dp::{Move, Path};
use flsa_scoring::{tables, ScoringScheme};
use flsa_seq::Sequence;

use crate::wire::{AlignRequest, ErrorCode};

/// Default grid division factor when the request leaves `k` at 0.
pub const DEFAULT_K: usize = 8;
/// Most worker threads a single request may demand. A corrupted or
/// hostile request must be *answered*, never obeyed: without this cap a
/// single bit flip in the `threads` field would make the server spawn
/// tens of thousands of wavefront threads and abort on stack
/// exhaustion (found by the corruption sweep).
pub const MAX_THREADS: u16 = 64;
/// Largest base-case buffer (DPM entries) a request may demand — 256 Mi
/// entries, a 1 GiB DP buffer. Same reasoning as [`MAX_THREADS`]: the
/// estimate and the governor budget both derive from `base_cells`, so
/// an absurd value must become a typed rejection up front.
pub const MAX_BASE_CELLS: u64 = 1 << 28;
/// Default base-case buffer (DPM entries) when the request leaves
/// `base_cells` at 0 — matches [`FastLsaConfig::default`]'s 4 MiB.
pub const DEFAULT_BASE_CELLS: usize = 1 << 20;

/// Headroom multiplier on the modeled footprint: the space model bounds
/// the DP buffers, and real runs carry sequences, paths, and arena slack
/// on top (core's own tests allow 10%; admission allows 25%).
const ESTIMATE_HEADROOM_NUM: usize = 5;
const ESTIMATE_HEADROOM_DEN: usize = 4;
/// Flat per-job overhead added to the estimate (sequences, result path,
/// thread stacks).
const ESTIMATE_FLAT_BYTES: usize = 64 << 10;

/// A validated, runnable job.
#[derive(Debug)]
pub struct JobSpec {
    /// The request as received (kept for spooling and checkpoint meta).
    pub request: AlignRequest,
    /// Reconstructed scoring scheme.
    pub scheme: ScoringScheme,
    /// Sequence A, encoded in the scheme's alphabet.
    pub a: Sequence,
    /// Sequence B, encoded in the scheme's alphabet.
    pub b: Sequence,
    /// Validated FastLSA configuration.
    pub config: FastLsaConfig,
    /// Admission-controller footprint estimate in bytes.
    pub estimate_bytes: usize,
    /// DPM size `m · n`, the spool-threshold measure.
    pub cells: u64,
}

/// Reconstructs the scoring scheme a request names. The same resolution
/// the CLI uses: this is the server-side source of truth for which
/// matrices exist.
pub fn scheme_for(name: &str, gap: i32) -> Result<ScoringScheme, String> {
    tables::scheme_by_name(name, gap).ok_or_else(|| format!("unknown matrix {name:?}"))
}

/// Validates a request into a [`JobSpec`], or a typed rejection.
pub fn validate(request: AlignRequest) -> Result<JobSpec, (ErrorCode, String)> {
    if request.threads > MAX_THREADS {
        return Err((
            ErrorCode::BadRequest,
            format!(
                "threads {} exceeds the limit {MAX_THREADS}",
                request.threads
            ),
        ));
    }
    if request.base_cells > MAX_BASE_CELLS {
        return Err((
            ErrorCode::BadRequest,
            format!(
                "base_cells {} exceeds the limit {MAX_BASE_CELLS}",
                request.base_cells
            ),
        ));
    }
    let scheme = scheme_for(&request.matrix, request.gap)
        .map_err(|detail| (ErrorCode::BadRequest, detail))?;
    let text_a = std::str::from_utf8(&request.seq_a)
        .map_err(|_| (ErrorCode::BadRequest, "sequence a is not UTF-8".to_string()))?;
    let text_b = std::str::from_utf8(&request.seq_b)
        .map_err(|_| (ErrorCode::BadRequest, "sequence b is not UTF-8".to_string()))?;
    let a = Sequence::from_str("a", scheme.alphabet(), text_a)
        .map_err(|e| (ErrorCode::BadRequest, format!("sequence a: {e}")))?;
    let b = Sequence::from_str("b", scheme.alphabet(), text_b)
        .map_err(|e| (ErrorCode::BadRequest, format!("sequence b: {e}")))?;

    let k = if request.k == 0 {
        DEFAULT_K
    } else {
        request.k as usize
    };
    let base_cells = if request.base_cells == 0 {
        DEFAULT_BASE_CELLS
    } else {
        request.base_cells as usize
    };
    let mut config = FastLsaConfig::new(k, base_cells);
    if request.threads > 1 {
        config = config.with_threads(request.threads as usize);
    }
    config
        .validate_run(&scheme, a.len(), b.len())
        .map_err(|e| (ErrorCode::BadRequest, e.to_string()))?;

    let estimate_bytes = estimate_bytes(a.len(), b.len(), k, base_cells);
    let cells = (a.len() as u64).saturating_mul(b.len() as u64);
    Ok(JobSpec {
        request,
        scheme,
        a,
        b,
        config,
        estimate_bytes,
        cells,
    })
}

/// The admission footprint for an `m × n` job under FastLSA(`k`,
/// `base_cells`): the paper's space model (entries × 4 bytes) with
/// headroom plus a flat per-job overhead.
pub fn estimate_bytes(m: usize, n: usize, k: usize, base_cells: usize) -> usize {
    let entries = model::fastlsa_space_entries(m, n, k, base_cells);
    let dp_bytes = (entries * 4.0).ceil() as usize;
    dp_bytes / ESTIMATE_HEADROOM_DEN * ESTIMATE_HEADROOM_NUM + ESTIMATE_FLAT_BYTES
}

/// Renders the optimal path as a run-length-encoded CIGAR-style string:
/// `Diag` → `M`, `Up` → `D` (a residue of A against a gap), `Left` → `I`
/// (a residue of B against a gap). FastLSA recovers the canonical
/// full-matrix path for every configuration, so this string is
/// byte-identical across `k`/`base_cells`/threads — the chaos harness's
/// equality target.
pub fn cigar(path: &Path) -> String {
    let mut out = String::new();
    let mut run: Option<(char, u64)> = None;
    for m in path.moves() {
        let op = match m {
            Move::Diag => 'M',
            Move::Up => 'D',
            Move::Left => 'I',
        };
        run = match run {
            Some((cur, n)) if cur == op => Some((cur, n + 1)),
            Some((cur, n)) => {
                out.push_str(&format!("{n}{cur}"));
                Some((op, 1))
            }
            None => Some((op, 1)),
        };
    }
    if let Some((cur, n)) = run {
        out.push_str(&format!("{n}{cur}"));
    }
    out
}

/// Maps an engine error onto the wire taxonomy. `deadline_expired`
/// distinguishes a deadline-driven cancellation from an administrative
/// one — the token itself cannot tell us which fired.
pub fn error_code_for(err: &AlignError, deadline_expired: bool) -> (ErrorCode, String) {
    let code = match err {
        AlignError::Config(_) | AlignError::AlphabetMismatch { .. } => ErrorCode::BadRequest,
        AlignError::AllocFailed { .. } => ErrorCode::ResourceExhausted,
        AlignError::Cancelled if deadline_expired => ErrorCode::DeadlineExpired,
        AlignError::Cancelled => ErrorCode::Cancelled,
        AlignError::WorkerPanic => ErrorCode::WorkerPanic,
        AlignError::CheckpointSave { .. } | AlignError::CorruptCheckpoint { .. } => {
            ErrorCode::Internal
        }
    };
    (code, err.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flsa_dp::Metrics;

    fn request(matrix: &str, a: &str, b: &str) -> AlignRequest {
        AlignRequest {
            id: 1,
            deadline_ms: 0,
            threads: 0,
            k: 0,
            gap: -1,
            base_cells: 0,
            matrix: matrix.to_string(),
            seq_a: a.as_bytes().to_vec(),
            seq_b: b.as_bytes().to_vec(),
        }
    }

    #[test]
    fn valid_request_produces_runnable_spec() {
        let spec = validate(request("dna", "ACGTACGT", "ACGTTCGT")).unwrap();
        assert_eq!(spec.config.k, DEFAULT_K);
        assert_eq!(spec.cells, 64);
        assert!(spec.estimate_bytes > ESTIMATE_FLAT_BYTES);
        let r =
            fastlsa_core::align_with(&spec.a, &spec.b, &spec.scheme, spec.config, &Metrics::new())
                .unwrap();
        assert_eq!(r.path.score(&spec.a, &spec.b, &spec.scheme), r.score);
    }

    #[test]
    fn unknown_matrix_and_bad_residues_are_bad_requests() {
        let (code, detail) = validate(request("nope", "ACGT", "ACGT")).unwrap_err();
        assert_eq!(code, ErrorCode::BadRequest);
        assert!(detail.contains("nope"));
        let (code, _) = validate(request("dna", "ACGT", "AXGT")).unwrap_err();
        assert_eq!(code, ErrorCode::BadRequest);
        let mut req = request("dna", "ACGT", "ACGT");
        req.seq_b = vec![0xff, 0xfe];
        let (code, detail) = validate(req).unwrap_err();
        assert_eq!(code, ErrorCode::BadRequest);
        assert!(detail.contains("UTF-8"));
    }

    #[test]
    fn hostile_resource_demands_are_rejected() {
        let mut req1 = request("dna", "ACGT", "ACGT");
        req1.threads = u16::MAX;
        let (code, detail) = validate(req1).unwrap_err();
        assert_eq!(code, ErrorCode::BadRequest);
        assert!(detail.contains("threads"), "{detail}");
        let mut req2 = request("dna", "ACGT", "ACGT");
        req2.base_cells = u64::MAX;
        let (code, detail) = validate(req2).unwrap_err();
        assert_eq!(code, ErrorCode::BadRequest);
        assert!(detail.contains("base_cells"), "{detail}");
    }

    #[test]
    fn invalid_config_is_a_bad_request() {
        let mut req = request("dna", "ACGT", "ACGT");
        req.k = 1;
        let (code, detail) = validate(req).unwrap_err();
        assert_eq!(code, ErrorCode::BadRequest);
        assert!(detail.contains("k"));
    }

    #[test]
    fn cigar_run_length_encodes_the_canonical_path() {
        let spec = validate(request("dna", "ACGTACGT", "ACGTCGT")).unwrap();
        let r =
            fastlsa_core::align_with(&spec.a, &spec.b, &spec.scheme, spec.config, &Metrics::new())
                .unwrap();
        let s = cigar(&r.path);
        assert!(!s.is_empty());
        // Total ops cover the whole path, and only MDI appear.
        let mut total = 0u64;
        let mut num = String::new();
        for ch in s.chars() {
            if ch.is_ascii_digit() {
                num.push(ch);
            } else {
                assert!(matches!(ch, 'M' | 'D' | 'I'), "bad op {ch}");
                total += num.parse::<u64>().unwrap();
                num.clear();
            }
        }
        assert_eq!(total as usize, r.path.moves().len());
    }

    #[test]
    fn estimate_grows_with_problem_size() {
        let small = estimate_bytes(100, 100, 8, 1024);
        let big = estimate_bytes(10_000, 10_000, 8, 1024);
        assert!(big > small);
    }

    #[test]
    fn error_codes_map_the_taxonomy() {
        let (c, _) = error_code_for(&AlignError::Cancelled, true);
        assert_eq!(c, ErrorCode::DeadlineExpired);
        let (c, _) = error_code_for(&AlignError::Cancelled, false);
        assert_eq!(c, ErrorCode::Cancelled);
        let (c, _) = error_code_for(&AlignError::WorkerPanic, false);
        assert_eq!(c, ErrorCode::WorkerPanic);
        let (c, _) = error_code_for(
            &AlignError::AllocFailed {
                bytes: 1,
                what: "x",
            },
            false,
        );
        assert_eq!(c, ErrorCode::ResourceExhausted);
    }
}

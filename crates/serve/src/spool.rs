//! The crash-safe job spool (DESIGN.md §14).
//!
//! Jobs past the server's size threshold are written to disk *before*
//! they are queued, so a SIGKILL'd daemon loses no accepted work:
//!
//! ```text
//! spool/
//!   job-00000007.req    encoded Align frame payload (wire format)
//!   job-00000007.ckpt   FLSACKP1 snapshot, updated as the job runs
//!   job-00000007.done   encoded response frame payload, written once
//! ```
//!
//! Lifecycle: `.req` appears at admission (atomic tmp → rename), `.ckpt`
//! while running (the checkpoint sink's own atomic double-buffering),
//! `.done` at completion — then `.req`/`.ckpt` are removed. Recovery
//! scans for `.req` without `.done`: with a valid `.ckpt` the job
//! resumes mid-flight, otherwise it restarts from the request. A corrupt
//! `.req` is unrecoverable corruption (the daemon refuses to start and
//! the CLI exits 3); a corrupt `.ckpt` merely costs the checkpointed
//! progress — the job falls back to a fresh run.

use std::path::{Path, PathBuf};

use crate::wire::{self, AlignRequest, Frame};

/// Why the spool could not be used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpoolError {
    /// Filesystem failure.
    Io(String),
    /// A `.req` file failed to decode: accepted work is unrecoverable.
    Corrupt(String),
}

impl std::fmt::Display for SpoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpoolError::Io(d) => write!(f, "spool i/o error: {d}"),
            SpoolError::Corrupt(d) => write!(f, "spool corrupt: {d}"),
        }
    }
}

impl std::error::Error for SpoolError {}

/// A job found in the spool at startup.
#[derive(Debug)]
pub struct RecoveredJob {
    /// Server-side sequence number (from the filename).
    pub seq: u64,
    /// The original request, exactly as admitted.
    pub request: AlignRequest,
    /// Path of a snapshot file, when one exists (it may still fail to
    /// decode — the server falls back to a fresh run).
    pub ckpt: Option<PathBuf>,
}

/// The on-disk spool directory.
pub struct Spool {
    dir: PathBuf,
}

impl Spool {
    /// Opens (creating if needed) the spool directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, SpoolError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| SpoolError::Io(format!("{}: {e}", dir.display())))?;
        Ok(Spool { dir })
    }

    /// The spool directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, seq: u64, ext: &str) -> PathBuf {
        self.dir.join(format!("job-{seq:08}.{ext}"))
    }

    /// Path of a job's checkpoint snapshot.
    pub fn ckpt_path(&self, seq: u64) -> PathBuf {
        self.path_for(seq, "ckpt")
    }

    /// Path of a job's result file.
    pub fn done_path(&self, seq: u64) -> PathBuf {
        self.path_for(seq, "done")
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), SpoolError> {
        let tmp = path.with_extension("tmp");
        let io = |e: std::io::Error| SpoolError::Io(format!("{}: {e}", path.display()));
        std::fs::write(&tmp, bytes).map_err(io)?;
        // fsync before rename so the rename never exposes a hole.
        let f = std::fs::File::open(&tmp).map_err(io)?;
        f.sync_all().map_err(io)?;
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Durably records an admitted request.
    pub fn write_request(&self, seq: u64, request: &AlignRequest) -> Result<(), SpoolError> {
        let bytes = wire::encode_payload(&Frame::Align(request.clone()));
        self.write_atomic(&self.path_for(seq, "req"), &bytes)
    }

    /// Durably records a job's terminal response (the exact frame
    /// payload a connected client would have received — the
    /// kill–restore test compares these files byte-for-byte).
    pub fn write_done(&self, seq: u64, response: &Frame) -> Result<(), SpoolError> {
        let bytes = wire::encode_payload(response);
        self.write_atomic(&self.done_path(seq), &bytes)
    }

    /// Reads back a job's terminal response, if present.
    pub fn read_done(&self, seq: u64) -> Option<Frame> {
        let bytes = std::fs::read(self.done_path(seq)).ok()?;
        wire::decode_payload(&bytes).ok()
    }

    /// Removes a completed job's `.req` and `.ckpt` (the `.done` file
    /// stays as the durable result). Best-effort: a crash between
    /// `write_done` and this call is resolved at recovery by the
    /// presence of `.done`.
    pub fn mark_complete(&self, seq: u64) {
        let _ = std::fs::remove_file(self.path_for(seq, "req"));
        let _ = std::fs::remove_file(self.ckpt_path(seq));
    }

    /// Removes every trace of a job that will never run (e.g. its queue
    /// push was refused after the `.req` was written).
    pub fn forget(&self, seq: u64) {
        let _ = std::fs::remove_file(self.path_for(seq, "req"));
        let _ = std::fs::remove_file(self.ckpt_path(seq));
        let _ = std::fs::remove_file(self.done_path(seq));
    }

    /// Scans the spool: every `.req` without a `.done` is returned for
    /// re-execution, oldest first. Also returns the next free sequence
    /// number (1 past the largest seen anywhere in the spool).
    pub fn recover(&self) -> Result<(Vec<RecoveredJob>, u64), SpoolError> {
        let mut max_seq = 0u64;
        let mut pending = Vec::new();
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| SpoolError::Io(format!("{}: {e}", self.dir.display())))?;
        for entry in entries {
            let entry = entry.map_err(|e| SpoolError::Io(e.to_string()))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some((seq, ext)) = parse_name(name) else {
                continue;
            };
            max_seq = max_seq.max(seq);
            if ext != "req" {
                continue;
            }
            if self.done_path(seq).exists() {
                // Completed just before the crash; result is durable.
                continue;
            }
            let path = entry.path();
            let bytes = std::fs::read(&path)
                .map_err(|e| SpoolError::Io(format!("{}: {e}", path.display())))?;
            let request = match wire::decode_payload(&bytes) {
                Ok(Frame::Align(req)) => req,
                Ok(other) => {
                    return Err(SpoolError::Corrupt(format!(
                        "{}: holds a {other:?} frame, not an Align request",
                        path.display()
                    )))
                }
                Err(e) => {
                    return Err(SpoolError::Corrupt(format!("{}: {e}", path.display())));
                }
            };
            let ckpt = self.ckpt_path(seq);
            pending.push(RecoveredJob {
                seq,
                request,
                ckpt: ckpt.exists().then_some(ckpt),
            });
        }
        pending.sort_by_key(|j| j.seq);
        Ok((pending, max_seq + 1))
    }

    /// The ordered deletion plan for [`Spool::gc`]: keep the newest
    /// `keep_done` completed results, collect everything older. Within
    /// one job the order is `.done` before `.req` before `.ckpt`, so at
    /// every prefix of the plan an accepted job is either durably
    /// answered (`.done` still present) or re-runnable at recovery
    /// (`.req` still present) — a crash mid-GC can cost duplicate work,
    /// never lose a job. Jobs without a `.done` are never planned: GC
    /// only ever touches completed work.
    pub fn gc_plan(&self, keep_done: usize) -> Vec<PathBuf> {
        let mut done_seqs: Vec<u64> = Vec::new();
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some((seq, "done")) = parse_name(name) {
                done_seqs.push(seq);
            }
        }
        done_seqs.sort_unstable();
        let excess = done_seqs.len().saturating_sub(keep_done);
        let mut plan = Vec::new();
        for seq in done_seqs.into_iter().take(excess) {
            plan.push(self.done_path(seq));
            for ext in ["req", "ckpt"] {
                let p = self.path_for(seq, ext);
                if p.exists() {
                    plan.push(p);
                }
            }
        }
        plan
    }

    /// Applies the retention cap: removes completed jobs beyond the
    /// newest `keep_done`, in the crash-safe order of [`Spool::gc_plan`].
    /// Best-effort (a file that will not delete is retried by the next
    /// pass); returns how many files were removed.
    pub fn gc(&self, keep_done: usize) -> usize {
        let mut removed = 0;
        for path in self.gc_plan(keep_done) {
            if std::fs::remove_file(&path).is_ok() {
                removed += 1;
            }
        }
        removed
    }

    /// Every `(seq, response)` recorded in the spool, ordered by seq —
    /// the kill–restore test's comparison set.
    pub fn done_results(&self) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return out;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some((seq, "done")) = parse_name(name) {
                if let Ok(bytes) = std::fs::read(entry.path()) {
                    out.push((seq, bytes));
                }
            }
        }
        out.sort_by_key(|(seq, _)| *seq);
        out
    }
}

/// Parses `job-00000007.req` into `(7, "req")`.
fn parse_name(name: &str) -> Option<(u64, &str)> {
    let rest = name.strip_prefix("job-")?;
    let (num, ext) = rest.split_once('.')?;
    let seq = num.parse::<u64>().ok()?;
    Some((seq, ext))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{AlignOk, ErrorCode};

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("flsa-spool-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn request(id: u64) -> AlignRequest {
        AlignRequest {
            id,
            deadline_ms: 0,
            threads: 0,
            k: 4,
            gap: -2,
            base_cells: 256,
            matrix: "dna".to_string(),
            seq_a: b"ACGT".to_vec(),
            seq_b: b"ACG".to_vec(),
        }
    }

    #[test]
    fn request_round_trips_through_recovery() {
        let spool = Spool::open(tmpdir("roundtrip")).unwrap();
        spool.write_request(3, &request(30)).unwrap();
        spool.write_request(1, &request(10)).unwrap();
        let (jobs, next) = spool.recover().unwrap();
        assert_eq!(next, 4);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].seq, 1, "oldest first");
        assert_eq!(jobs[0].request, request(10));
        assert!(jobs[0].ckpt.is_none());
    }

    #[test]
    fn done_jobs_are_not_recovered_and_results_read_back() {
        let spool = Spool::open(tmpdir("done")).unwrap();
        spool.write_request(5, &request(50)).unwrap();
        let resp = Frame::Ok(AlignOk {
            id: 50,
            score: 9,
            cigar: "4M".to_string(),
        });
        spool.write_done(5, &resp).unwrap();
        spool.mark_complete(5);
        let (jobs, next) = spool.recover().unwrap();
        assert!(jobs.is_empty());
        assert_eq!(next, 6);
        assert_eq!(spool.read_done(5), Some(resp));
        assert_eq!(spool.done_results().len(), 1);
    }

    #[test]
    fn corrupt_request_is_unrecoverable() {
        let spool = Spool::open(tmpdir("corrupt")).unwrap();
        spool.write_request(2, &request(20)).unwrap();
        let path = spool.dir().join("job-00000002.req");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() / 2);
        std::fs::write(&path, bytes).unwrap();
        let err = spool.recover().unwrap_err();
        assert!(matches!(err, SpoolError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn wrong_frame_kind_in_req_is_corrupt() {
        let spool = Spool::open(tmpdir("wrongkind")).unwrap();
        let bytes = wire::encode_payload(&Frame::Fail(crate::wire::AlignFail {
            id: 1,
            code: ErrorCode::Internal,
            detail: String::new(),
        }));
        std::fs::write(spool.dir().join("job-00000009.req"), bytes).unwrap();
        assert!(matches!(
            spool.recover().unwrap_err(),
            SpoolError::Corrupt(_)
        ));
    }

    fn done_frame(id: u64) -> Frame {
        Frame::Ok(AlignOk {
            id,
            score: 1,
            cigar: "3M".to_string(),
        })
    }

    /// Builds the GC fixture: seqs 1–4 completed (`.done` only), seq 5
    /// completed but interrupted before `mark_complete` (`.req` +
    /// `.ckpt` + `.done` — the crash-window shape), seqs 6–7 pending
    /// (`.req` only).
    fn gc_fixture(name: &str) -> Spool {
        let spool = Spool::open(tmpdir(name)).unwrap();
        for seq in 1..=4 {
            spool.write_done(seq, &done_frame(seq)).unwrap();
        }
        spool.write_request(5, &request(50)).unwrap();
        std::fs::write(spool.ckpt_path(5), b"not a real snapshot").unwrap();
        spool.write_done(5, &done_frame(50)).unwrap();
        for seq in 6..=7 {
            spool.write_request(seq, &request(seq * 10)).unwrap();
        }
        spool
    }

    #[test]
    fn gc_caps_results_and_never_touches_pending_jobs() {
        let spool = gc_fixture("gc-cap");
        let removed = spool.gc(2);
        // Seqs 1–3 collected (one file each); 4 and 5 are the newest 2.
        assert_eq!(removed, 3);
        assert!(spool.read_done(3).is_none());
        assert!(spool.read_done(4).is_some());
        assert!(spool.read_done(5).is_some());
        let (jobs, _) = spool.recover().unwrap();
        let pending: Vec<u64> = jobs.iter().map(|j| j.seq).collect();
        assert_eq!(pending, vec![6, 7], "pending jobs must survive GC");
        // Under the cap: a second pass is a no-op.
        assert_eq!(spool.gc(2), 0);
    }

    #[test]
    fn gc_plan_deletes_done_before_req_within_a_job() {
        let spool = gc_fixture("gc-order");
        let plan = spool.gc_plan(0);
        let exts_for = |seq: u64| -> Vec<String> {
            plan.iter()
                .filter_map(|p| parse_name(p.file_name()?.to_str()?))
                .filter(|(s, _)| *s == seq)
                .map(|(_, ext)| ext.to_string())
                .collect()
        };
        // The crash-window job has all three files planned, `.done`
        // first so no prefix of the plan leaves it neither answerable
        // nor re-runnable.
        assert_eq!(exts_for(5), vec!["done", "req", "ckpt"]);
        for seq in 1..=4 {
            assert_eq!(exts_for(seq), vec!["done"]);
        }
        // Pending jobs are not in the plan at all.
        assert!(exts_for(6).is_empty());
        assert!(exts_for(7).is_empty());
    }

    #[test]
    fn restart_mid_gc_never_orphans_an_accepted_job() {
        // Replay a crash at every point of the GC: for each prefix of
        // the deletion plan, apply exactly that prefix to a fresh spool
        // and restart (recover). Accepted-but-unanswered jobs must
        // always come back, and the crash-window job must always be
        // either durably answered or re-runnable.
        let plan_len = gc_fixture("gc-plan-probe").gc_plan(0).len();
        assert!(plan_len >= 7, "fixture should plan 4 + 3 deletions");
        for crash_after in 0..=plan_len {
            let spool = gc_fixture("gc-crash");
            let plan = spool.gc_plan(0);
            assert_eq!(plan.len(), plan_len, "plan must be deterministic");
            for path in &plan[..crash_after] {
                std::fs::remove_file(path).unwrap();
            }
            // Restart: recovery must decode cleanly...
            let (jobs, _) = spool
                .recover()
                .unwrap_or_else(|e| panic!("crash after {crash_after}: {e}"));
            let recovered: Vec<u64> = jobs.iter().map(|j| j.seq).collect();
            // ...pending jobs are never lost...
            for seq in [6, 7] {
                assert!(
                    recovered.contains(&seq),
                    "crash after {crash_after}: pending job {seq} orphaned"
                );
            }
            // ...and the crash-window job is answered, re-runnable, or
            // intentionally collected. Because `.done` is planned
            // before `.req`, "collected" is exactly "the `.req`
            // deletion has executed" — there is no prefix where the
            // job is half-deleted into an orphan.
            let req5 = plan
                .iter()
                .position(|p| p == &spool.done_path(5).with_extension("req"))
                .expect("crash-window .req is planned");
            let collected = crash_after > req5;
            assert!(
                collected || spool.read_done(5).is_some() || recovered.contains(&5),
                "crash after {crash_after}: job 5 orphaned"
            );
        }
    }

    #[test]
    fn forget_removes_every_trace() {
        let spool = Spool::open(tmpdir("forget")).unwrap();
        spool.write_request(7, &request(70)).unwrap();
        spool.forget(7);
        let (jobs, next) = spool.recover().unwrap();
        assert!(jobs.is_empty());
        assert_eq!(next, 1, "empty spool restarts numbering");
    }
}

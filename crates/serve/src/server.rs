//! The daemon: accept loop, worker pool, admission, retry, drain.
//!
//! Architecture (DESIGN.md §14):
//!
//! ```text
//! accept ──► reader (1/conn) ──validate──► bounded queue ──► worker pool
//!                 │                            │                  │
//!                 │ Overloaded / BadRequest    │ drain: Draining  │ admission
//!                 ▼                            ▼                  ▼ acquire
//!              client ◄──────────── writer (shared clone) ◄── run w/ retry,
//!                                                              deadline,
//!                                                              checkpoint
//! ```
//!
//! Failure matrix: every fault has exactly one typed outcome — see the
//! table in DESIGN.md §14 and the chaos harness in `tests/chaos.rs`,
//! which replays seeded fault plans and asserts the outcomes.

use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fastlsa_core::{
    align_opts, AlignError, AlignOptions, CancelToken, CheckpointPolicy, FaultHooks,
};
use flsa_checkpoint::{read_snapshot, resume_from_snapshot, FileCheckpointSink, SnapshotMeta};
use flsa_dp::{BatchJob, BatchKernel, Kernel, Metrics};
use flsa_metrics::Registry;
use flsa_scoring::GapModel;

use crate::admission::{Admission, AdmitError};
use crate::job::{self, JobSpec};
use crate::lock;
use crate::metrics::ServeMetrics;
use crate::queue::{PushError, Queue};
use crate::spool::{Spool, SpoolError};
use crate::wire::{self, AlignFail, AlignOk, ErrorCode, Frame, ProtocolError, PREAMBLE};

/// Per-job instrumentation hooks, the server-level analogue of
/// [`FaultHooks`]: the chaos harness and the CLI's `--fault-seed` use
/// them to panic or stall exact attempts of exact jobs. Production runs
/// pass `None`.
pub trait JobHooks: Send + Sync {
    /// Called at the start of every run attempt; may panic (contained
    /// and retried with backoff) or sleep (consuming the deadline).
    fn on_attempt(&self, seq: u64, attempt: u32) {
        let _ = (seq, attempt);
    }

    /// Engine-level fault hooks for a specific job, threaded into its
    /// [`AlignOptions`].
    fn align_hooks(&self, seq: u64) -> Option<Arc<dyn FaultHooks>> {
        let _ = seq;
        None
    }
}

/// Daemon configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:0`.
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Server-wide admission byte budget (`None` = unbudgeted).
    pub budget_bytes: Option<usize>,
    /// Bounded queue capacity; a full queue answers `Overloaded`.
    pub queue_cap: usize,
    /// Retry attempts after a contained worker panic (0 = no retry).
    pub max_retries: u32,
    /// Base backoff between retries (attempt `n` waits `n ×` this).
    pub retry_backoff: Duration,
    /// Deadline applied to requests that carry none (0 = none).
    pub default_deadline_ms: u32,
    /// Crash-safe spool directory (`None` = no spooling).
    pub spool_dir: Option<PathBuf>,
    /// Jobs with `m · n` at or above this are spooled + checkpointed.
    pub spool_min_cells: u64,
    /// Retention cap on completed spool results: only the newest this
    /// many `.done` files are kept; older ones are garbage-collected
    /// after each completion (and once at startup), in the crash-safe
    /// `.done`-before-`.req` order — a restart mid-GC never orphans an
    /// accepted job.
    pub spool_retain_done: usize,
    /// Checkpoint cadence (blocks) for spooled jobs.
    pub checkpoint_every_blocks: u64,
    /// Metrics registry (`None` = detached handles).
    pub registry: Option<Arc<Registry>>,
    /// Fault-injection hooks (`None` in production).
    pub hooks: Option<Arc<dyn JobHooks>>,
    /// Most jobs one worker dispatch may coalesce onto the
    /// inter-sequence batch kernel (1 = batching off). Results are
    /// bit-identical to unbatched execution; this only trades latency of
    /// the first job against throughput when the queue has a backlog.
    pub batch_max: usize,
    /// Only jobs with `m · n` at or below this ride a batch; larger jobs
    /// keep the full FastLSA path with checkpoint/budget support.
    pub batch_max_cells: u64,
}

impl ServeConfig {
    /// Defaults tuned for tests and small deployments.
    pub fn new(addr: impl Into<String>) -> Self {
        ServeConfig {
            addr: addr.into(),
            workers: 2,
            budget_bytes: None,
            queue_cap: 64,
            max_retries: 2,
            retry_backoff: Duration::from_millis(25),
            default_deadline_ms: 0,
            spool_dir: None,
            spool_min_cells: 250_000,
            spool_retain_done: 256,
            checkpoint_every_blocks: 4,
            registry: None,
            hooks: None,
            batch_max: 16,
            batch_max_cells: 1 << 20,
        }
    }
}

/// Why the daemon could not start. The CLI maps these onto the exit
/// taxonomy: bind/config problems → 2, unrecoverable corruption → 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The listen address could not be bound.
    Bind {
        /// OS-level detail.
        detail: String,
    },
    /// The configuration is unusable (zero workers, unspawnable pool).
    Config {
        /// What was wrong.
        detail: String,
    },
    /// The spool directory could not be read or written.
    SpoolIo {
        /// OS-level detail.
        detail: String,
    },
    /// A spooled request failed to decode: accepted work would be lost.
    SpoolCorrupt {
        /// Which file, and how it failed.
        detail: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind { detail } => write!(f, "bind failed: {detail}"),
            ServeError::Config { detail } => write!(f, "invalid server config: {detail}"),
            ServeError::SpoolIo { detail } => write!(f, "spool i/o: {detail}"),
            ServeError::SpoolCorrupt { detail } => write!(f, "spool corrupt: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SpoolError> for ServeError {
    fn from(e: SpoolError) -> Self {
        match e {
            SpoolError::Io(detail) => ServeError::SpoolIo { detail },
            SpoolError::Corrupt(detail) => ServeError::SpoolCorrupt { detail },
        }
    }
}

/// What the drain left behind.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DrainSummary {
    /// Jobs answered `Ok` over the server's lifetime.
    pub completed: u64,
    /// Jobs answered with a typed failure.
    pub failed: u64,
    /// Jobs answered `Overloaded`.
    pub rejected: u64,
    /// Jobs answered `Draining` at shutdown.
    pub drained: u64,
    /// Spooled jobs left for the next start to complete.
    pub spooled_pending: usize,
}

/// How a worker should deliver a job's response.
enum Responder {
    /// A live connection: the shared write half.
    Conn(Arc<Mutex<TcpStream>>),
    /// Recovered from the spool; only the `.done` file gets the result.
    SpoolOnly,
}

/// A job parked in the queue.
struct QueuedJob {
    seq: u64,
    spec: JobSpec,
    responder: Responder,
    token: CancelToken,
    has_deadline: bool,
    accepted: Instant,
    spooled: bool,
    recovered: bool,
}

struct Inflight {
    token: CancelToken,
    spooled: bool,
}

struct Shared {
    max_retries: u32,
    retry_backoff: Duration,
    checkpoint_every: u64,
    queue: Queue<QueuedJob>,
    admission: Admission,
    metrics: ServeMetrics,
    draining: AtomicBool,
    drain_frame_seen: AtomicBool,
    drained_jobs: AtomicU64,
    next_seq: AtomicU64,
    inflight: Mutex<HashMap<u64, Inflight>>,
    spool: Option<Spool>,
    hooks: Option<Arc<dyn JobHooks>>,
    workers: usize,
    default_deadline_ms: u32,
    spool_min_cells: u64,
    spool_retain_done: usize,
    batch_max: usize,
    batch_max_cells: u64,
}

/// A running daemon. Lifecycle: [`Server::start`] → (serve traffic) →
/// [`Server::drain`] → [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds, recovers spooled work, and spawns the accept loop and the
    /// worker pool.
    pub fn start(cfg: ServeConfig) -> Result<Server, ServeError> {
        if cfg.workers == 0 {
            return Err(ServeError::Config {
                detail: "workers must be >= 1".to_string(),
            });
        }
        let spool = match &cfg.spool_dir {
            Some(dir) => Some(Spool::open(dir.clone())?),
            None => None,
        };
        let (recovered, next_seq) = match &spool {
            Some(s) => s.recover()?,
            None => (Vec::new(), 1),
        };
        let listener = TcpListener::bind(&cfg.addr).map_err(|e| ServeError::Bind {
            detail: format!("{}: {e}", cfg.addr),
        })?;
        let local_addr = listener.local_addr().map_err(|e| ServeError::Bind {
            detail: e.to_string(),
        })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Bind {
                detail: e.to_string(),
            })?;

        let shared = Arc::new(Shared {
            max_retries: cfg.max_retries,
            retry_backoff: cfg.retry_backoff,
            checkpoint_every: cfg.checkpoint_every_blocks.max(1),
            queue: Queue::new(cfg.queue_cap),
            admission: Admission::new(cfg.budget_bytes),
            metrics: ServeMetrics::new(cfg.registry.as_deref()),
            draining: AtomicBool::new(false),
            drain_frame_seen: AtomicBool::new(false),
            drained_jobs: AtomicU64::new(0),
            next_seq: AtomicU64::new(next_seq),
            inflight: Mutex::new(HashMap::new()),
            spool,
            hooks: cfg.hooks.clone(),
            workers: cfg.workers,
            default_deadline_ms: cfg.default_deadline_ms,
            spool_min_cells: cfg.spool_min_cells,
            spool_retain_done: cfg.spool_retain_done,
            batch_max: cfg.batch_max.max(1),
            batch_max_cells: cfg.batch_max_cells,
        });

        // Cap whatever result backlog the previous process left behind.
        if let Some(s) = &shared.spool {
            s.gc(shared.spool_retain_done);
        }

        // Re-queue crash-recovered jobs before any new traffic arrives.
        for rec in recovered {
            match job::validate(rec.request) {
                Ok(spec) => {
                    shared.metrics.recovered.inc();
                    shared.metrics.queue_depth_add(1);
                    let _ = shared.queue.push_unbounded(QueuedJob {
                        seq: rec.seq,
                        spec,
                        responder: Responder::SpoolOnly,
                        token: CancelToken::new(),
                        has_deadline: false,
                        accepted: Instant::now(),
                        spooled: true,
                        recovered: true,
                    });
                }
                Err((code, detail)) => {
                    // The request decoded but no longer validates (e.g. a
                    // matrix removed between versions): record the typed
                    // failure durably instead of re-crashing forever.
                    if let Some(s) = &shared.spool {
                        let frame = Frame::Fail(AlignFail {
                            id: 0,
                            code,
                            detail,
                        });
                        let _ = s.write_done(rec.seq, &frame);
                        s.mark_complete(rec.seq);
                    }
                    shared.metrics.failed.inc();
                }
            }
        }

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let mut worker_handles = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers {
            let shared = shared.clone();
            let h = std::thread::Builder::new()
                .name(format!("flsa-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .map_err(|e| ServeError::Config {
                    detail: format!("spawn worker: {e}"),
                })?;
            worker_handles.push(h);
        }
        let accept = {
            let shared = shared.clone();
            let conns = conns.clone();
            std::thread::Builder::new()
                .name("flsa-serve-accept".to_string())
                .spawn(move || accept_loop(listener, &shared, &conns))
                .map_err(|e| ServeError::Config {
                    detail: format!("spawn accept loop: {e}"),
                })?
        };

        Ok(Server {
            shared,
            local_addr,
            accept: Some(accept),
            worker_handles,
            conns,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// True once a client sent a `Shutdown` frame; the embedding loop
    /// (the CLI) should call [`Server::drain`].
    pub fn drain_requested(&self) -> bool {
        // Relaxed: an advisory latch polled by the embedding loop; no
        // other data is published through it, staleness only delays the
        // next poll tick.
        self.shared.drain_frame_seen.load(Ordering::Relaxed)
    }

    /// Bytes currently charged to the admission governor (test hook:
    /// must be 0 after a drain).
    pub fn admission_used_bytes(&self) -> usize {
        self.shared.admission.used_bytes()
    }

    /// Begins a graceful drain (idempotent): stop accepting, cancel
    /// checkpointed in-flight jobs (forcing a final snapshot), answer
    /// everything still queued with `Draining`, let short jobs finish.
    pub fn drain(&self) {
        if self.shared.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        // Checkpointed in-flight jobs snapshot-and-stop; plain jobs are
        // short by definition of the spool threshold and run out.
        for inf in lock(&self.shared.inflight).values() {
            if inf.spooled {
                inf.token.cancel();
            }
        }
        self.shared.queue.close();
        for qj in self.shared.queue.take_remaining() {
            self.shared.metrics.queue_depth_add(-1);
            // Relaxed: monotone counter; the final read happens after
            // the worker threads are joined, which synchronizes.
            self.shared.drained_jobs.fetch_add(1, Ordering::Relaxed);
            // Spooled jobs stay in the spool; the restart completes
            // them. Either way the waiting client gets a typed answer.
            respond_conn(
                &qj.responder,
                &Frame::Fail(AlignFail {
                    id: qj.spec.request.id,
                    code: ErrorCode::Draining,
                    detail: "server draining; job will resume after restart".to_string(),
                }),
            );
        }
    }

    /// Waits for the accept loop, workers, and connection readers to
    /// finish (call [`Server::drain`] first), returning the summary.
    pub fn join(mut self) -> DrainSummary {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        let handles: Vec<_> = lock(&self.conns).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        let spooled_pending = match &self.shared.spool {
            Some(s) => s.recover().map(|(jobs, _)| jobs.len()).unwrap_or(0),
            None => 0,
        };
        DrainSummary {
            completed: self.shared.metrics.completed.get(),
            failed: self.shared.metrics.failed.get(),
            rejected: self.shared.metrics.rejected.get(),
            // Relaxed: counter read after drain() joined every
            // worker/conn thread, so all increments are visible.
            drained: self.shared.drained_jobs.load(Ordering::Relaxed),
            spooled_pending,
        }
    }
}

// --- accept / connection handling ---------------------------------------

fn accept_loop(
    listener: TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        // Relaxed: advisory shutdown poll; a stale read costs one more
        // accept-timeout iteration, nothing is ordered by the flag.
        if shared.draining.load(Ordering::Relaxed) {
            return;
        }
        reap_finished(conns);
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = shared.clone();
                let spawned = std::thread::Builder::new()
                    .name("flsa-serve-conn".to_string())
                    .spawn(move || handle_conn(stream, &shared));
                if let Ok(h) = spawned {
                    lock(conns).push(h);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Joins connection threads that have already exited. Exited-but-
/// unjoined threads keep their stacks until joined, so a daemon that
/// only reaped at shutdown would leak one stack per connection served —
/// the corruption sweep (thousands of short connections) exhausts
/// memory in seconds without this.
fn reap_finished(conns: &Arc<Mutex<Vec<JoinHandle<()>>>>) {
    let finished: Vec<JoinHandle<()>> = {
        let mut guard = lock(conns);
        let mut done = Vec::new();
        let mut i = 0;
        while i < guard.len() {
            if guard[i].is_finished() {
                done.push(guard.swap_remove(i));
            } else {
                i += 1;
            }
        }
        done
    };
    for h in finished {
        let _ = h.join();
    }
}

/// Blocking reads over a stream with a short `SO_RCVTIMEO`, retrying on
/// timeouts so a slow client never desyncs framing, while still letting
/// the reader notice a drain within one time slice.
struct PolledReader<'a> {
    stream: &'a TcpStream,
    shared: &'a Shared,
}

impl Read for PolledReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        // `Read` is implemented for `&TcpStream`; bind mutably so the
        // autoref picks it up without needing `&mut TcpStream`.
        let mut stream: &TcpStream = self.stream;
        loop {
            match stream.read(buf) {
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // Relaxed: advisory shutdown poll (see accept loop);
                    // a stale read retries one more read timeout.
                    if self.shared.draining.load(Ordering::Relaxed) {
                        return Err(std::io::Error::other("server draining"));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                other => return other,
            }
        }
    }
}

fn handle_conn(stream: TcpStream, shared: &Arc<Shared>) {
    shared.metrics.connections.inc();
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));

    // Preamble: 8 bytes, before any frame.
    let mut preamble = [0u8; 8];
    {
        let mut reader = PolledReader {
            stream: &stream,
            shared,
        };
        if reader.read_exact(&mut preamble).is_err() {
            return;
        }
    }
    let Ok(writer_stream) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(writer_stream));
    if &preamble != PREAMBLE {
        shared.metrics.protocol_errors.inc();
        send(
            &writer,
            &Frame::ProtocolError {
                detail: "bad preamble (expected FLSASRV1)".to_string(),
            },
        );
        return;
    }

    loop {
        let frame = {
            let mut reader = PolledReader {
                stream: &stream,
                shared,
            };
            wire::read_frame(&mut reader)
        };
        match frame {
            Ok(Frame::Align(req)) => handle_request(shared, &writer, req),
            Ok(Frame::Ping(tok)) => send(&writer, &Frame::Pong(tok)),
            Ok(Frame::Shutdown) => {
                // Flag first, then ack: a client that saw the ack must
                // be able to observe `drain_requested()`.
                shared.drain_frame_seen.store(true, Ordering::Relaxed);
                send(&writer, &Frame::ShutdownAck);
            }
            Ok(other) => {
                // Well-formed but not a client→server frame.
                shared.metrics.protocol_errors.inc();
                send(
                    &writer,
                    &Frame::ProtocolError {
                        detail: format!("unexpected frame {other:?}"),
                    },
                );
            }
            Err(ProtocolError::Malformed { detail }) => {
                // Framing is intact: answer and keep serving this
                // connection's other requests.
                shared.metrics.protocol_errors.inc();
                send(&writer, &Frame::ProtocolError { detail });
            }
            Err(ProtocolError::Frame { detail }) => {
                // Framing lost: answer once, then close.
                shared.metrics.protocol_errors.inc();
                send(&writer, &Frame::ProtocolError { detail });
                return;
            }
            Err(ProtocolError::Closed) | Err(ProtocolError::Io { .. }) => return,
        }
    }
}

fn send(writer: &Arc<Mutex<TcpStream>>, frame: &Frame) {
    let mut stream = lock(writer);
    let _ = wire::write_frame(&mut *stream, frame);
}

fn respond_conn(responder: &Responder, frame: &Frame) {
    if let Responder::Conn(writer) = responder {
        send(writer, frame);
    }
}

fn handle_request(shared: &Arc<Shared>, writer: &Arc<Mutex<TcpStream>>, req: wire::AlignRequest) {
    shared.metrics.requests.inc();
    let id = req.id;
    // Relaxed: advisory; a request admitted during the race is still
    // drained correctly by queue.close() + take_remaining().
    if shared.draining.load(Ordering::Relaxed) {
        shared.metrics.failed.inc();
        send(writer, &fail(id, ErrorCode::Draining, "server draining"));
        return;
    }
    let spec = match job::validate(req) {
        Ok(spec) => spec,
        Err((code, detail)) => {
            shared.metrics.failed.inc();
            send(writer, &fail(id, code, &detail));
            return;
        }
    };
    if shared.admission.never_fits(spec.estimate_bytes) {
        shared.metrics.failed.inc();
        let budget = shared.admission.budget_bytes().unwrap_or(0);
        send(
            writer,
            &fail(
                id,
                ErrorCode::TooLarge,
                &format!(
                    "estimated footprint {} bytes exceeds the server budget {budget}",
                    spec.estimate_bytes
                ),
            ),
        );
        return;
    }

    // Relaxed: unique-ID allocation only; fetch_add is atomic on the
    // same cell, and no other memory is ordered by the sequence number.
    let seq = shared.next_seq.fetch_add(1, Ordering::Relaxed);
    let deadline_ms = if spec.request.deadline_ms > 0 {
        spec.request.deadline_ms
    } else {
        shared.default_deadline_ms
    };
    let (token, has_deadline) = if deadline_ms > 0 {
        (
            CancelToken::with_deadline(Duration::from_millis(deadline_ms as u64)),
            true,
        )
    } else {
        (CancelToken::new(), false)
    };

    let spooled = shared.spool.is_some() && spec.cells >= shared.spool_min_cells;
    if spooled {
        if let Some(s) = &shared.spool {
            if let Err(e) = s.write_request(seq, &spec.request) {
                shared.metrics.failed.inc();
                send(writer, &fail(id, ErrorCode::Internal, &e.to_string()));
                return;
            }
            shared.metrics.spooled.inc();
        }
    }

    let qj = QueuedJob {
        seq,
        spec,
        responder: Responder::Conn(writer.clone()),
        token,
        has_deadline,
        accepted: Instant::now(),
        spooled,
        recovered: false,
    };
    match shared.queue.push(qj) {
        Ok(()) => shared.metrics.queue_depth_add(1),
        Err((qj, PushError::Full)) => {
            if qj.spooled {
                if let Some(s) = &shared.spool {
                    s.forget(seq);
                }
            }
            shared.metrics.rejected.inc();
            let hint = shared
                .admission
                .retry_after_hint(shared.queue.len(), shared.workers);
            send(
                writer,
                &Frame::Overloaded {
                    id,
                    retry_after_ms: hint,
                },
            );
        }
        Err((qj, PushError::Closed)) => {
            if qj.spooled {
                if let Some(s) = &shared.spool {
                    s.forget(seq);
                }
            }
            shared.metrics.failed.inc();
            send(writer, &fail(id, ErrorCode::Draining, "server draining"));
        }
    }
}

fn fail(id: u64, code: ErrorCode, detail: &str) -> Frame {
    Frame::Fail(AlignFail {
        id,
        code,
        detail: detail.to_string(),
    })
}

// --- worker pool ---------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        shared.metrics.queue_depth_add(-1);
        // Opportunistic coalescing: when the popped job could ride the
        // batch kernel, whatever else is already parked (up to
        // `batch_max` jobs) rides along. Gathering stops at the first
        // non-eligible job so anything the batch cannot serve stays
        // parked for other workers — and for drain's typed answers.
        let mut group = vec![job];
        if shared.batch_max > 1 && shared.hooks.is_none() && batch_eligible(shared, &group[0]) {
            while group.len() < shared.batch_max {
                let Some(j) = shared.queue.try_pop() else { break };
                shared.metrics.queue_depth_add(-1);
                let eligible = batch_eligible(shared, &j);
                group.push(j);
                if !eligible {
                    break;
                }
            }
        }
        for j in &group {
            lock(&shared.inflight).insert(
                j.seq,
                Inflight {
                    token: j.token.clone(),
                    spooled: j.spooled,
                },
            );
            shared.metrics.inflight.add(1);
        }

        for job in dispatch_batched(shared, group) {
            let (frame, terminal) = execute(shared, &job);
            deliver(shared, &job, &frame, terminal);
            finish(shared, &job);
        }
    }
}

/// Completes per-job accounting once its response has been delivered.
fn finish(shared: &Arc<Shared>, job: &QueuedJob) {
    lock(&shared.inflight).remove(&job.seq);
    shared.metrics.inflight.sub(1);
    shared
        .metrics
        .request_ns
        .record(job.accepted.elapsed().as_nanos() as u64);
}

/// Whether a job may ride the inter-sequence batch kernel. Spooled jobs
/// need the checkpointing single path; deadline-carrying jobs need its
/// precise expiry handling; large jobs need FastLSA's linear space (the
/// batch kernel holds each pair's full direction matrix).
fn batch_eligible(shared: &Shared, j: &QueuedJob) -> bool {
    !j.spooled
        && !j.has_deadline
        && !j.token.is_cancelled()
        && j.spec.cells <= shared.batch_max_cells
        && matches!(*j.spec.scheme.gap(), GapModel::Linear { .. })
}

/// Runs the batch-eligible subset of `group` on the inter-sequence
/// kernel and returns the jobs that still need the single path. Batch
/// results are bit-identical to single execution, so this is purely a
/// throughput optimization; any contained panic sends the whole subset
/// back to the single path (which has its own bounded retry).
fn dispatch_batched(shared: &Arc<Shared>, group: Vec<QueuedJob>) -> Vec<QueuedJob> {
    // Fault-injection hooks target single-job attempts; keep their
    // semantics exact by never batching under them.
    if group.len() < 2 || shared.hooks.is_some() {
        return group;
    }
    let mut batch = Vec::new();
    let mut singles = Vec::new();
    for j in group {
        // `try_acquire` (never block the whole batch on the governor):
        // a job the budget cannot admit right now parks on the single
        // path's blocking admission instead.
        if batch_eligible(shared, &j) && shared.admission.try_acquire(j.spec.estimate_bytes) {
            batch.push(j);
        } else {
            singles.push(j);
        }
    }
    if batch.len() < 2 {
        // Not enough lanes to stripe; undo the admission charges.
        for j in &batch {
            shared.admission.release(j.spec.estimate_bytes);
        }
        singles.append(&mut batch);
        return singles;
    }

    let metrics = Metrics::new();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let kernel = BatchKernel::new(Kernel::auto());
        let jobs: Vec<BatchJob<'_>> = batch
            .iter()
            .map(|j| BatchJob {
                a: j.spec.a.codes(),
                b: j.spec.b.codes(),
                scheme: &j.spec.scheme,
            })
            .collect();
        kernel.align_batch(&jobs, &metrics)
    }));
    for j in &batch {
        shared.admission.release(j.spec.estimate_bytes);
    }
    match outcome {
        Ok(results) => {
            shared.metrics.batches.inc();
            shared.metrics.batched_jobs.add(batch.len() as u64);
            for (j, res) in batch.iter().zip(results) {
                let frame = Frame::Ok(AlignOk {
                    id: j.spec.request.id,
                    score: res.score,
                    cigar: job::cigar(&res.path),
                });
                deliver(shared, j, &frame, true);
                finish(shared, j);
            }
            singles
        }
        Err(_payload) => {
            shared.metrics.panics.inc();
            singles.extend(batch);
            singles
        }
    }
}

/// Delivers a response. `terminal` responses are durable (spooled jobs
/// write `.done` and clear their spool entry); non-terminal ones (drain)
/// leave the spool intact so a restart completes the job.
fn deliver(shared: &Arc<Shared>, job: &QueuedJob, frame: &Frame, terminal: bool) {
    if terminal && job.spooled {
        if let Some(s) = &shared.spool {
            let _ = s.write_done(job.seq, frame);
            s.mark_complete(job.seq);
            s.gc(shared.spool_retain_done);
        }
    }
    respond_conn(&job.responder, frame);
    match frame {
        Frame::Ok(_) => shared.metrics.completed.inc(),
        Frame::Fail(f) => {
            shared.metrics.failed.inc();
            if f.code == ErrorCode::DeadlineExpired {
                shared.metrics.deadline_expired.inc();
            }
            if f.code == ErrorCode::Draining {
                // Relaxed: monotone counter, read after thread join.
                shared.drained_jobs.fetch_add(1, Ordering::Relaxed);
            }
        }
        _ => {}
    }
}

/// Runs one job end to end: admission, bounded-retry execution, typed
/// response. Returns `(frame, terminal)`.
fn execute(shared: &Arc<Shared>, job: &QueuedJob) -> (Frame, bool) {
    let id = job.spec.request.id;
    // Relaxed: advisory flag; drain correctness rests on the closed
    // queue, not on when a worker observes it.
    let draining = || shared.draining.load(Ordering::Relaxed);

    // The deadline covers queue wait: a job that expired while parked
    // fails without consuming a worker slot's compute.
    if job.token.is_cancelled() && !draining() {
        let code = if job.has_deadline {
            ErrorCode::DeadlineExpired
        } else {
            ErrorCode::Cancelled
        };
        return (fail(id, code, "deadline expired while queued"), true);
    }

    let wait_start = Instant::now();
    match shared
        .admission
        .acquire(job.spec.estimate_bytes, &job.token, draining)
    {
        Ok(()) => {}
        Err(AdmitError::Cancelled) => {
            let code = if job.has_deadline {
                ErrorCode::DeadlineExpired
            } else {
                ErrorCode::Cancelled
            };
            return (fail(id, code, "deadline expired awaiting admission"), true);
        }
        Err(AdmitError::Draining) => {
            return (
                fail(id, ErrorCode::Draining, "server draining"),
                // Non-terminal: a spooled job restarts after the drain.
                !job.spooled,
            );
        }
    }
    shared
        .metrics
        .admit_wait_ns
        .record(wait_start.elapsed().as_nanos() as u64);

    let result = run_with_retry(shared, job);
    shared.admission.release(job.spec.estimate_bytes);

    match result {
        Ok(res) => (
            Frame::Ok(AlignOk {
                id,
                score: res.score,
                cigar: job::cigar(&res.path),
            }),
            true,
        ),
        Err(AlignError::Cancelled) if draining() && job.spooled => (
            // The cancellation forced a final snapshot; the restart
            // resumes from it. Not terminal: keep the spool entry.
            fail(
                id,
                ErrorCode::Draining,
                "server draining; job checkpointed and will resume after restart",
            ),
            false,
        ),
        Err(err) => {
            let expired = job.has_deadline && job.token.is_cancelled();
            let (code, detail) = job::error_code_for(&err, expired);
            (fail(id, code, &detail), true)
        }
    }
}

/// Bounded retry with linear backoff around one attempt. Panics raised
/// by fault hooks or engine internals are contained by `catch_unwind`
/// and treated like [`AlignError::WorkerPanic`].
fn run_with_retry(
    shared: &Arc<Shared>,
    job: &QueuedJob,
) -> Result<flsa_dp::AlignResult, AlignError> {
    let mut attempt: u32 = 0;
    loop {
        attempt += 1;
        let outcome = catch_unwind(AssertUnwindSafe(|| attempt_once(shared, job, attempt)));
        let err = match outcome {
            Ok(Ok(res)) => return Ok(res),
            Ok(Err(AlignError::WorkerPanic)) => {
                shared.metrics.panics.inc();
                AlignError::WorkerPanic
            }
            Ok(Err(other)) => return Err(other),
            Err(_payload) => {
                shared.metrics.panics.inc();
                AlignError::WorkerPanic
            }
        };
        let cancelled = job.token.is_cancelled();
        // Relaxed: advisory (see above); worst case is one extra retry.
        let draining = shared.draining.load(Ordering::Relaxed);
        if attempt > shared.max_retries || cancelled || draining {
            return Err(err);
        }
        shared.metrics.retries.inc();
        std::thread::sleep(shared.retry_backoff * attempt);
    }
}

/// One attempt: resume from a snapshot when the job has one, otherwise
/// a fresh run. A corrupt snapshot costs only the checkpointed progress.
fn attempt_once(
    shared: &Arc<Shared>,
    job: &QueuedJob,
    attempt: u32,
) -> Result<flsa_dp::AlignResult, AlignError> {
    if let Some(h) = &shared.hooks {
        h.on_attempt(job.seq, attempt);
    }
    let align_hooks = shared.hooks.as_ref().and_then(|h| h.align_hooks(job.seq));
    let metrics = Metrics::new();
    let spec = &job.spec;

    if job.spooled {
        if let Some(spool) = &shared.spool {
            let ckpt = spool.ckpt_path(job.seq);
            if job.recovered && ckpt.exists() {
                match read_snapshot(&ckpt) {
                    Ok(snap) => {
                        let sink = FileCheckpointSink::new(ckpt.clone(), snap.meta.clone());
                        let opts = AlignOptions {
                            budget_bytes: Some(spec.estimate_bytes),
                            cancel: Some(job.token.clone()),
                            hooks: align_hooks.clone(),
                            checkpoint: Some(CheckpointPolicy::new(
                                shared.checkpoint_every,
                                Arc::new(sink),
                            )),
                            kernel: None,
                            registry: None,
                        };
                        match resume_from_snapshot(&snap, &spec.scheme, &opts, &metrics) {
                            Ok(res) => return Ok(res),
                            Err(AlignError::CorruptCheckpoint { .. }) => {
                                // Snapshot lies about the run: discard it
                                // and redo the job from the request.
                                let _ = std::fs::remove_file(&ckpt);
                            }
                            Err(e) => return Err(e),
                        }
                    }
                    Err(_) => {
                        let _ = std::fs::remove_file(&ckpt);
                    }
                }
            }
            let meta = SnapshotMeta::for_run(
                &spec.request.matrix,
                &spec.scheme,
                &spec.a,
                &spec.b,
                shared.checkpoint_every,
            );
            let sink = FileCheckpointSink::new(ckpt, meta);
            let opts = AlignOptions {
                budget_bytes: Some(spec.estimate_bytes),
                cancel: Some(job.token.clone()),
                hooks: align_hooks,
                checkpoint: Some(CheckpointPolicy::new(
                    shared.checkpoint_every,
                    Arc::new(sink),
                )),
                kernel: None,
                registry: None,
            };
            return align_opts(&spec.a, &spec.b, &spec.scheme, spec.config, &opts, &metrics);
        }
    }

    let opts = AlignOptions {
        budget_bytes: Some(spec.estimate_bytes),
        cancel: Some(job.token.clone()),
        hooks: align_hooks,
        checkpoint: None,
        kernel: None,
        registry: None,
    };
    align_opts(&spec.a, &spec.b, &spec.scheme, spec.config, &opts, &metrics)
}

//! **flsa-serve** — alignment-as-a-service (DESIGN.md §14).
//!
//! A long-running daemon that accepts alignment jobs over a
//! length-prefixed TCP protocol ([`wire`]) and runs them on the FastLSA
//! engine, composing the robustness machinery the workspace already has
//! into a server that stays correct under overload, worker failure, and
//! crashes:
//!
//! - **Admission control** ([`admission`]): a server-wide
//!   [`fastlsa_core::MemoryGovernor`] holds the byte budget. Jobs are
//!   *never* silently degraded at admission — a job larger than the
//!   whole budget gets a typed `TooLarge` failure, a job that does not
//!   fit *right now* parks in a bounded queue, and a full queue answers
//!   `Overloaded` with a retry-after hint.
//! - **Deadlines**: every request may carry a deadline, mapped onto a
//!   [`fastlsa_core::CancelToken`] that covers queue wait *and* run
//!   time; expiry drains the run cooperatively and surfaces as a typed
//!   `DeadlineExpired` failure.
//! - **Bounded retry**: a panicking worker attempt is contained with
//!   `catch_unwind` and retried with backoff a bounded number of times
//!   before a typed `WorkerPanic` failure is returned.
//! - **Crash safety** ([`spool`]): jobs past a size threshold are
//!   spooled to disk and checkpointed with `FLSACKP1` snapshots; a
//!   SIGKILL'd daemon resumes queued and in-flight work on restart and
//!   completes it byte-identically.
//! - **Graceful drain**: SIGTERM (or a `Shutdown` frame) stops the
//!   listener, lets short in-flight jobs finish, checkpoints long ones,
//!   answers everything still queued with a typed `Draining` error, and
//!   exits cleanly.
//!
//! The failure matrix — which fault produces which wire-level response —
//! is in DESIGN.md §14. Everything here is `std`-only: no async runtime,
//! one reader thread per connection, a fixed worker pool.

pub mod admission;
pub mod client;
pub mod job;
pub mod metrics;
pub mod queue;
pub mod server;
pub mod signal;
pub mod spool;
pub mod wire;

pub use admission::Admission;
pub use client::Client;
pub use job::JobSpec;
pub use metrics::ServeMetrics;
pub use server::{DrainSummary, JobHooks, ServeConfig, ServeError, Server};
pub use spool::{Spool, SpoolError};
pub use wire::{AlignFail, AlignOk, AlignRequest, ErrorCode, Frame, ProtocolError};

/// Locks a mutex, recovering from poisoning. Worker threads run
/// user-triggerable code under `catch_unwind`, so a panic between lock
/// and unlock must not wedge the whole daemon: every structure guarded
/// by these mutexes (queue, governor, write side of a connection) is
/// left in a consistent state at each await point, so continuing past a
/// poison marker is safe.
pub(crate) fn lock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

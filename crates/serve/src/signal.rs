//! Minimal SIGTERM/SIGINT latching for graceful drain.
//!
//! The daemon must react to SIGTERM by draining, not dying, and the
//! workspace deliberately carries no `libc` dependency — so this module
//! declares the two symbols it needs (`signal(2)` semantics via libc,
//! which `std` already links on every supported platform) and keeps the
//! handler to the only thing that is async-signal-safe here: storing a
//! relaxed atomic flag. Nothing in the daemon relies on `EINTR`; the
//! accept loop and connection readers poll [`drain_requested`] on their
//! own timeouts.

use std::sync::atomic::{AtomicBool, Ordering};

/// Latched by the handler; polled by the accept loop.
static TERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::TERM;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // `signal(2)` from libc (linked by std). `usize` stands in for
        // the handler pointer in both positions; we never inspect the
        // previous handler.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// The handler: only an atomic store, which is async-signal-safe.
    extern "C" fn on_signal(_signum: i32) {
        // Relaxed: a lone boolean latch; no other memory is published
        // from the handler, so no ordering is needed.
        TERM.store(true, Ordering::Relaxed);
    }

    pub(super) fn install() {
        // SAFETY: `signal` is the C library's signal(2); passing a
        // non-capturing `extern "C" fn(i32)` as the handler address is
        // exactly its contract, and the handler body performs only an
        // atomic store (async-signal-safe). Replacing the disposition
        // for SIGTERM/SIGINT is process-global but idempotent.
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// Non-unix hosts run without signal-driven drain; the `Shutdown`
    /// frame path still works.
    pub(super) fn install() {}
}

/// Installs the SIGTERM/SIGINT latch (idempotent).
pub fn install() {
    imp::install();
}

/// True once SIGTERM or SIGINT arrived.
pub fn drain_requested() -> bool {
    // Relaxed: the latch is the only shared state; a stale read just
    // delays drain by one poll interval.
    TERM.load(Ordering::Relaxed)
}

/// Clears the latch (tests only — a real daemon exits after one drain).
pub fn reset() {
    // Relaxed: test-only latch clear, same lone-flag argument.
    TERM.store(false, Ordering::Relaxed);
}

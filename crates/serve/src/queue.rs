//! The bounded job queue between connection readers and the worker pool.
//!
//! A plain `Mutex<VecDeque>` + condvar: readers [`Queue::push`] (failing
//! fast with [`PushError::Full`] so the caller can answer `Overloaded`),
//! workers [`Queue::pop`] (blocking until a job arrives or the queue is
//! closed). [`Queue::close`] + [`Queue::take_remaining`] implement the
//! drain handshake: once closed, no job is ever handed to a worker again
//! and whatever was still parked is returned to the drainer for typed
//! `Draining` responses.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::lock;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; answer `Overloaded` with a retry hint.
    Full,
    /// The queue was closed (server draining); answer `Draining`.
    Closed,
}

struct Inner<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue with explicit close semantics.
pub struct Queue<T> {
    cap: usize,
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

impl<T> Queue<T> {
    /// A queue admitting at most `cap` parked jobs (`cap` is clamped to
    /// at least 1).
    pub fn new(cap: usize) -> Self {
        Queue {
            cap: cap.max(1),
            inner: Mutex::new(Inner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Parks a job, failing fast when the queue is full or closed.
    pub fn push(&self, job: T) -> Result<(), (T, PushError)> {
        let mut inner = lock(&self.inner);
        if inner.closed {
            return Err((job, PushError::Closed));
        }
        if inner.jobs.len() >= self.cap {
            return Err((job, PushError::Full));
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Re-parks a recovered job, bypassing the capacity check: crash
    /// recovery must never drop work that was already accepted before
    /// the crash, even if the restart uses a smaller queue.
    pub fn push_unbounded(&self, job: T) -> Result<(), (T, PushError)> {
        let mut inner = lock(&self.inner);
        if inner.closed {
            return Err((job, PushError::Closed));
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available (`Some`) or the queue is closed
    /// (`None`). After close, parked jobs are *not* handed out — they
    /// belong to [`Queue::take_remaining`].
    pub fn pop(&self) -> Option<T> {
        let mut inner = lock(&self.inner);
        loop {
            if inner.closed {
                return None;
            }
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            let (next, _timeout) = self
                .ready
                .wait_timeout(inner, Duration::from_millis(50))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            inner = next;
        }
    }

    /// Takes a parked job without blocking: `None` when the queue is
    /// empty or closed. Workers use this to opportunistically gather a
    /// batch behind the job a blocking [`Queue::pop`] handed them.
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = lock(&self.inner);
        if inner.closed {
            return None;
        }
        inner.jobs.pop_front()
    }

    /// Closes the queue and wakes every blocked worker.
    pub fn close(&self) {
        lock(&self.inner).closed = true;
        self.ready.notify_all();
    }

    /// Drains whatever is still parked (used after [`Queue::close`]).
    pub fn take_remaining(&self) -> Vec<T> {
        lock(&self.inner).jobs.drain(..).collect()
    }

    /// Jobs currently parked.
    pub fn len(&self) -> usize {
        lock(&self.inner).jobs.len()
    }

    /// True when nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = Queue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_refuses_fast() {
        let q = Queue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        let (job, err) = q.push(3).unwrap_err();
        assert_eq!((job, err), (3, PushError::Full));
        // Recovery pushes bypass the cap.
        q.push_unbounded(4).unwrap();
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn close_wakes_blocked_workers_and_keeps_remaining() {
        let q = Arc::new(Queue::new(4));
        let q2 = q.clone();
        let worker = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.push(9).unwrap();
        assert_eq!(worker.join().expect("worker"), Some(9));

        q.push(1).unwrap();
        q.close();
        let q3 = q.clone();
        let blocked = std::thread::spawn(move || q3.pop());
        assert_eq!(blocked.join().expect("worker"), None, "closed pops None");
        assert_eq!(q.take_remaining(), vec![1]);
        assert!(matches!(q.push(2), Err((2, PushError::Closed))));
    }
}

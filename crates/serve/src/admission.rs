//! Byte-budget admission control (DESIGN.md §14).
//!
//! The daemon owns one [`MemoryGovernor`] whose budget spans every
//! concurrently running job. A worker *acquires* a job's estimated
//! footprint before running it and *releases* it afterwards; when the
//! budget cannot admit the job right now the worker parks on a condvar
//! until another job frees memory, the job's deadline fires, or the
//! server starts draining. Jobs larger than the entire budget are
//! detected up front ([`Admission::never_fits`]) and answered with a
//! typed `TooLarge` failure — admission never silently shrinks a job.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

use fastlsa_core::{CancelToken, MemoryGovernor};

use crate::lock;

/// How long an admission waiter sleeps between re-checks. Wake-ups also
/// arrive eagerly via the condvar on every release; the timeout only
/// bounds how stale a deadline/drain check can get.
const WAIT_SLICE: Duration = Duration::from_millis(25);

/// Why a blocking admission wait gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The job's cancellation token fired (deadline or explicit).
    Cancelled,
    /// The server began draining while the job waited.
    Draining,
}

/// The server-wide admission controller: a [`MemoryGovernor`] behind a
/// mutex (the governor itself is single-threaded by design) plus a
/// condvar that wakes admission waiters on every release.
pub struct Admission {
    budget: Option<usize>,
    governor: Mutex<MemoryGovernor>,
    freed: Condvar,
}

impl Admission {
    /// A controller over `budget` bytes (`None` = unbudgeted: admission
    /// always succeeds immediately).
    pub fn new(budget: Option<usize>) -> Self {
        Admission {
            budget,
            governor: Mutex::new(MemoryGovernor::new(budget)),
            freed: Condvar::new(),
        }
    }

    /// The configured budget, if any.
    pub fn budget_bytes(&self) -> Option<usize> {
        self.budget
    }

    /// True when a job of `bytes` can never run here: it exceeds the
    /// whole budget even with the server idle.
    pub fn never_fits(&self, bytes: usize) -> bool {
        match self.budget {
            Some(b) => bytes > b,
            None => false,
        }
    }

    /// Tries to charge `bytes` immediately, without blocking.
    pub fn try_acquire(&self, bytes: usize) -> bool {
        lock(&self.governor).try_charge_bytes(bytes)
    }

    /// Blocks until `bytes` are charged against the budget, the token
    /// fires, or `draining()` turns true. On success the caller *must*
    /// balance with [`Admission::release`].
    pub fn acquire(
        &self,
        bytes: usize,
        cancel: &CancelToken,
        draining: impl Fn() -> bool,
    ) -> Result<(), AdmitError> {
        let mut gov = lock(&self.governor);
        loop {
            if gov.try_charge_bytes(bytes) {
                return Ok(());
            }
            if cancel.is_cancelled() {
                return Err(AdmitError::Cancelled);
            }
            if draining() {
                return Err(AdmitError::Draining);
            }
            let (next, _timeout) = self
                .freed
                .wait_timeout(gov, WAIT_SLICE)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            gov = next;
        }
    }

    /// Returns bytes charged by a successful acquire and wakes every
    /// admission waiter.
    pub fn release(&self, bytes: usize) {
        lock(&self.governor).release_bytes(bytes);
        self.freed.notify_all();
    }

    /// Bytes currently charged — the chaos harness asserts this returns
    /// to zero after a drain (no leaked admissions).
    pub fn used_bytes(&self) -> usize {
        lock(&self.governor).used_bytes()
    }

    /// A deterministic retry-after hint for `Overloaded` responses:
    /// scales with how much of the budget is currently committed, so a
    /// nearly idle server hints a short back-off and a saturated one a
    /// longer one.
    pub fn retry_after_hint(&self, queue_len: usize, workers: usize) -> u32 {
        let per_slot = 50u64;
        let backlog = queue_len as u64 / workers.max(1) as u64 + 1;
        (per_slot * backlog).min(2_000) as u32
    }
}

/// RAII admission grant used by tests and the bench harness; the server
/// itself releases explicitly so the grant can outlive a panicking
/// attempt.
pub struct Grant<'a> {
    admission: &'a Admission,
    bytes: usize,
}

impl<'a> Grant<'a> {
    /// Wraps an already-acquired charge of `bytes`.
    pub fn new(admission: &'a Admission, bytes: usize) -> Self {
        Grant { admission, bytes }
    }
}

impl Drop for Grant<'_> {
    fn drop(&mut self) {
        self.admission.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn acquire_succeeds_within_budget_and_releases() {
        let a = Admission::new(Some(1000));
        let t = CancelToken::new();
        a.acquire(600, &t, || false).unwrap();
        assert_eq!(a.used_bytes(), 600);
        a.release(600);
        assert_eq!(a.used_bytes(), 0);
    }

    #[test]
    fn never_fits_detects_impossible_jobs() {
        let a = Admission::new(Some(1000));
        assert!(a.never_fits(1001));
        assert!(!a.never_fits(1000));
        let unbounded = Admission::new(None);
        assert!(!unbounded.never_fits(usize::MAX));
    }

    #[test]
    fn blocked_acquire_wakes_on_release() {
        let a = Arc::new(Admission::new(Some(100)));
        let t = CancelToken::new();
        a.acquire(80, &t, || false).unwrap();
        let a2 = a.clone();
        let waiter = std::thread::spawn(move || {
            let t = CancelToken::new();
            a2.acquire(50, &t, || false)
        });
        std::thread::sleep(Duration::from_millis(30));
        a.release(80);
        waiter.join().expect("waiter thread").unwrap();
        assert_eq!(a.used_bytes(), 50);
    }

    #[test]
    fn expired_deadline_aborts_the_wait() {
        let a = Admission::new(Some(100));
        let hold = CancelToken::new();
        a.acquire(100, &hold, || false).unwrap();
        let t = CancelToken::with_deadline(Duration::from_millis(5));
        let start = Instant::now();
        let err = a.acquire(50, &t, || false).unwrap_err();
        assert_eq!(err, AdmitError::Cancelled);
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn drain_aborts_the_wait() {
        let a = Arc::new(Admission::new(Some(100)));
        let hold = CancelToken::new();
        a.acquire(100, &hold, || false).unwrap();
        let draining = Arc::new(AtomicBool::new(false));
        let (a2, d2) = (a.clone(), draining.clone());
        let waiter = std::thread::spawn(move || {
            let t = CancelToken::new();
            a2.acquire(50, &t, move || d2.load(Ordering::Relaxed))
        });
        std::thread::sleep(Duration::from_millis(20));
        draining.store(true, Ordering::Relaxed);
        assert_eq!(
            waiter.join().expect("waiter thread").unwrap_err(),
            AdmitError::Draining
        );
    }

    #[test]
    fn grant_releases_on_drop() {
        let a = Admission::new(Some(100));
        assert!(a.try_acquire(60));
        {
            let _g = Grant::new(&a, 60);
            assert_eq!(a.used_bytes(), 60);
        }
        assert_eq!(a.used_bytes(), 0);
    }
}

//! Serve-level metrics, pre-resolved once at startup.
//!
//! Every handle is registered through `flsa_metrics::names` constants so
//! lint rule R7 covers them; when the server runs without a registry the
//! handles are detached and every update is a cheap no-op atomic.

use flsa_metrics::{names, Counter, Gauge, Histogram, Registry};

/// All counters/gauges/histograms the daemon updates, resolved once so
/// the hot request path never touches the registry map.
pub struct ServeMetrics {
    /// Requests received (valid or not).
    pub requests: Counter,
    /// Requests answered `Overloaded` by the bounded queue.
    pub rejected: Counter,
    /// Jobs completed with an `Ok` result.
    pub completed: Counter,
    /// Jobs completed with a typed failure.
    pub failed: Counter,
    /// Retry attempts after a contained worker panic.
    pub retries: Counter,
    /// Worker panics contained by `catch_unwind`.
    pub panics: Counter,
    /// Jobs that failed with `DeadlineExpired`.
    pub deadline_expired: Counter,
    /// Malformed or unframeable frames answered with `ProtocolError`.
    pub protocol_errors: Counter,
    /// Connections accepted.
    pub connections: Counter,
    /// Jobs spooled to disk for crash safety.
    pub spooled: Counter,
    /// Jobs recovered from the spool after a restart.
    pub recovered: Counter,
    /// Jobs currently parked in the admission queue.
    pub queue_depth: Gauge,
    /// High-water mark of `queue_depth`.
    pub queue_depth_peak: Gauge,
    /// Jobs currently executing on a worker.
    pub inflight: Gauge,
    /// Batched dispatches executed on the inter-sequence kernel.
    pub batches: Counter,
    /// Jobs that ran inside a batched dispatch.
    pub batched_jobs: Counter,
    /// End-to-end request latency (accept → response written), ns.
    pub request_ns: Histogram,
    /// Time a job waited for the admission governor, ns.
    pub admit_wait_ns: Histogram,
}

impl ServeMetrics {
    /// Resolves every handle against `reg`, or builds detached handles
    /// when the server runs unmetered.
    pub fn new(reg: Option<&Registry>) -> Self {
        match reg {
            Some(reg) => ServeMetrics {
                requests: reg.counter(names::SERVE_REQUESTS_TOTAL),
                rejected: reg.counter(names::SERVE_REJECTED_TOTAL),
                completed: reg.counter(names::SERVE_COMPLETED_TOTAL),
                failed: reg.counter(names::SERVE_FAILED_TOTAL),
                retries: reg.counter(names::SERVE_RETRIES_TOTAL),
                panics: reg.counter(names::SERVE_PANICS_TOTAL),
                deadline_expired: reg.counter(names::SERVE_DEADLINE_EXPIRED_TOTAL),
                protocol_errors: reg.counter(names::SERVE_PROTOCOL_ERRORS_TOTAL),
                connections: reg.counter(names::SERVE_CONNECTIONS_TOTAL),
                spooled: reg.counter(names::SERVE_SPOOLED_TOTAL),
                recovered: reg.counter(names::SERVE_RECOVERED_TOTAL),
                queue_depth: reg.gauge(names::SERVE_QUEUE_DEPTH),
                queue_depth_peak: reg.gauge(names::SERVE_QUEUE_DEPTH_PEAK),
                inflight: reg.gauge(names::SERVE_INFLIGHT),
                batches: reg.counter(names::SERVE_BATCHES_TOTAL),
                batched_jobs: reg.counter(names::SERVE_BATCHED_JOBS_TOTAL),
                request_ns: reg.histogram(names::SERVE_REQUEST_NS),
                admit_wait_ns: reg.histogram(names::SERVE_ADMIT_WAIT_NS),
            },
            None => ServeMetrics {
                requests: Counter::detached(),
                rejected: Counter::detached(),
                completed: Counter::detached(),
                failed: Counter::detached(),
                retries: Counter::detached(),
                panics: Counter::detached(),
                deadline_expired: Counter::detached(),
                protocol_errors: Counter::detached(),
                connections: Counter::detached(),
                spooled: Counter::detached(),
                recovered: Counter::detached(),
                queue_depth: Gauge::detached(),
                queue_depth_peak: Gauge::detached(),
                inflight: Gauge::detached(),
                batches: Counter::detached(),
                batched_jobs: Counter::detached(),
                request_ns: Histogram::new(),
                admit_wait_ns: Histogram::new(),
            },
        }
    }

    /// Notes a queue-depth change, keeping the peak gauge in step.
    pub fn queue_depth_add(&self, d: i64) {
        let now = self.queue_depth.add_get(d);
        self.queue_depth_peak.fetch_max(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_handles_land_in_the_snapshot() {
        let reg = Registry::new();
        let m = ServeMetrics::new(Some(&reg));
        m.requests.inc();
        m.queue_depth_add(3);
        m.queue_depth_add(-2);
        m.request_ns.record(1000);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(names::SERVE_REQUESTS_TOTAL), Some(1));
        assert_eq!(snap.gauge(names::SERVE_QUEUE_DEPTH), Some(1));
        assert_eq!(snap.gauge(names::SERVE_QUEUE_DEPTH_PEAK), Some(3));
        assert!(snap.histogram(names::SERVE_REQUEST_NS).is_some());
    }

    #[test]
    fn detached_handles_are_no_ops() {
        let m = ServeMetrics::new(None);
        m.requests.inc();
        m.queue_depth_add(5);
        m.request_ns.record(1);
        // Nothing to observe — the point is simply that this never
        // touches a registry or panics.
    }
}

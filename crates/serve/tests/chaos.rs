//! The chaos harness: replay seeded [`ServeFaultPlan`]s against a live
//! daemon and assert the failure matrix holds — every job terminates
//! with either a result byte-identical to the sequential reference or
//! a typed error matching the injected fault class; no hangs, no wrong
//! answers, and no leaked admission charges (the governor gauge returns
//! to baseline after every drain).
//!
//! 32 seeds (8 per fault class via `seed % 4`); the mid-batch SIGKILL
//! class is process-level and lives in the CLI's `serve_integration`
//! tests, which kill and restart a real daemon.

mod util;

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use flsa_fault::serve::{ServeFaultKind, ServeFaultPlan};
use flsa_serve::wire::{AlignRequest, ErrorCode, Frame};
use flsa_serve::{JobHooks, ServeConfig};
use util::{connect, dna, reference, req};

/// Retry bound the harness runs under; [`ServeFaultPlan::panic_attempts`]
/// (1..=4) straddles it so both retry-recovers and retry-exhausts paths
/// are exercised.
const MAX_RETRIES: u32 = 2;

/// Adapts a [`ServeFaultPlan`] to the server's [`JobHooks`]: panics the
/// target job's leading attempts, stalls the target (or, for
/// deadline-expiry plans, every job) at the start of each attempt.
struct ChaosHooks {
    plan: ServeFaultPlan,
    target_seq: u64,
}

impl JobHooks for ChaosHooks {
    fn on_attempt(&self, seq: u64, attempt: u32) {
        match self.plan.kind {
            ServeFaultKind::WorkerPanic => {
                if seq == self.target_seq && attempt <= self.plan.panic_attempts {
                    panic!(
                        "chaos: injected panic, seed {} attempt {attempt}",
                        self.plan.seed
                    );
                }
            }
            ServeFaultKind::SlowJob => {
                if seq == self.target_seq {
                    std::thread::sleep(Duration::from_millis(self.plan.slow_ms));
                }
            }
            ServeFaultKind::DeadlineExpiry => {
                std::thread::sleep(Duration::from_millis(self.plan.slow_ms));
            }
            ServeFaultKind::BudgetSqueeze => {}
        }
    }
}

/// Builds the scenario's request list. Sizes are big enough to recurse
/// (`m·n` well past `base_cells`) yet small enough that a whole class
/// sweep stays fast.
fn requests_for(plan: &ServeFaultPlan) -> Vec<AlignRequest> {
    (0..plan.jobs)
        .map(|i| {
            let len_a = 240 + ((plan.seed * 31 + i * 17) % 80) as usize;
            let len_b = 220 + ((plan.seed * 13 + i * 23) % 90) as usize;
            let a = dna(plan.seed * 1000 + i * 2, len_a);
            let b = dna(plan.seed * 1000 + i * 2 + 1, len_b);
            let mut r = req(1000 + i, &a, &b);
            r.base_cells = 4096;
            let deadline_applies = match plan.kind {
                ServeFaultKind::SlowJob => i == plan.target_job,
                ServeFaultKind::DeadlineExpiry => true,
                _ => false,
            };
            if deadline_applies {
                r.deadline_ms = plan.deadline_ms;
            }
            r
        })
        .collect()
}

/// Runs one plan end to end and asserts the failure matrix.
fn run_plan(seed: u64) {
    let plan = ServeFaultPlan::from_seed(seed);
    // One connection submits in order, so server sequence numbers are
    // deterministic: job i gets seq i+1.
    let target_seq = plan.target_job + 1;

    let mut cfg = ServeConfig::new("127.0.0.1:0");
    cfg.workers = 2;
    cfg.max_retries = MAX_RETRIES;
    cfg.retry_backoff = Duration::from_millis(5);
    cfg.budget_bytes = plan.budget_bytes;
    cfg.hooks = Some(Arc::new(ChaosHooks { plan, target_seq }));
    let server = util::start(cfg);
    let mut client = connect(&server);

    let requests = requests_for(&plan);
    let mut expected: HashMap<u64, (i64, String, bool)> = HashMap::new();
    for (i, r) in requests.iter().enumerate() {
        let a = String::from_utf8(r.seq_a.clone()).expect("ascii");
        let b = String::from_utf8(r.seq_b.clone()).expect("ascii");
        let (score, cigar) = reference(&a, &b);
        expected.insert(r.id, (score, cigar, i as u64 == plan.target_job));
        client.send(&Frame::Align(r.clone())).expect("send");
    }

    // Exactly one typed response per job, matched by correlation id.
    let mut answered: HashMap<u64, Frame> = HashMap::new();
    while answered.len() < requests.len() {
        let frame = client
            .recv()
            .unwrap_or_else(|e| panic!("seed {seed} ({}): {e}", plan.kind.name()));
        let id = match &frame {
            Frame::Ok(r) => r.id,
            Frame::Fail(r) => r.id,
            other => panic!("seed {seed}: unexpected frame {other:?}"),
        };
        assert!(
            answered.insert(id, frame).is_none(),
            "seed {seed}: job {id} answered twice"
        );
    }

    for (id, frame) in &answered {
        let (score, cigar, is_target) = &expected[id];
        match frame {
            // Any Ok, faulted or not, must be byte-identical to the
            // sequential reference — wrong answers are never acceptable.
            Frame::Ok(ok) => {
                assert_eq!(ok.score, *score, "seed {seed} job {id}: wrong score");
                assert_eq!(ok.cigar, *cigar, "seed {seed} job {id}: wrong path");
            }
            Frame::Fail(f) => {
                let allowed: &[ErrorCode] = match plan.kind {
                    ServeFaultKind::WorkerPanic if *is_target => &[ErrorCode::WorkerPanic],
                    ServeFaultKind::SlowJob if *is_target => &[ErrorCode::DeadlineExpired],
                    ServeFaultKind::DeadlineExpiry => &[ErrorCode::DeadlineExpired],
                    // Non-target jobs (and all budget-squeeze jobs) have
                    // no injected fault: they must simply succeed.
                    _ => &[],
                };
                assert!(
                    allowed.contains(&f.code),
                    "seed {seed} ({}) job {id}: unexpected failure {:?}: {}",
                    plan.kind.name(),
                    f.code,
                    f.detail
                );
            }
            other => panic!("seed {seed}: unexpected frame {other:?}"),
        }
    }

    // A panic count past the retry bound MUST have failed; within it,
    // MUST have succeeded.
    if plan.kind == ServeFaultKind::WorkerPanic {
        let target_id = 1000 + plan.target_job;
        let got_ok = matches!(answered[&target_id], Frame::Ok(_));
        assert_eq!(
            got_ok,
            plan.panic_attempts <= MAX_RETRIES,
            "seed {seed}: {} panics vs retry bound {MAX_RETRIES} resolved wrong",
            plan.panic_attempts
        );
    }

    server.drain();
    assert_eq!(
        server.admission_used_bytes(),
        0,
        "seed {seed}: leaked admission charge"
    );
    let summary = server.join();
    assert_eq!(
        summary.completed + summary.failed,
        plan.jobs,
        "seed {seed}: job accounting off: {summary:?}"
    );
}

/// Seeds with `seed % 4 == class` — 8 plans per fault class.
fn sweep(class: u64) {
    for i in 0..8u64 {
        run_plan(class + i * 4);
    }
}

#[test]
fn chaos_worker_panic_plans_hold_the_failure_matrix() {
    sweep(0);
}

#[test]
fn chaos_slow_job_plans_hold_the_failure_matrix() {
    sweep(1);
}

#[test]
fn chaos_deadline_expiry_plans_hold_the_failure_matrix() {
    sweep(2);
}

#[test]
fn chaos_budget_squeeze_plans_hold_the_failure_matrix() {
    sweep(3);
}

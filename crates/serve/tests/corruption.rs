//! Wire-corruption sweeps (hardening satellite): replay a recorded
//! client session with every single-bit flip and every truncation
//! offset, and assert the daemon survives each one — no panic, no hang,
//! no desync that poisons later connections. The decoder is
//! length-capped and allocation-bomb-safe, so the worst a corrupt frame
//! can do is elicit a typed `ProtocolError` and (when framing itself is
//! lost) a closed connection.

mod util;

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use flsa_serve::wire::{self, Frame, PREAMBLE};
use flsa_serve::ServeConfig;
use util::{connect, dna, req, start};

/// A short but representative session: preamble, a ping, one small
/// alignment, another ping.
fn recorded_session() -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(PREAMBLE);
    bytes.extend_from_slice(&wire::encode_frame(&Frame::Ping(0xF00D)));
    let a = dna(51, 40);
    let b = dna(52, 40);
    bytes.extend_from_slice(&wire::encode_frame(&Frame::Align(req(9, &a, &b))));
    bytes.extend_from_slice(&wire::encode_frame(&Frame::Ping(0xBEEF)));
    bytes
}

/// Fires `bytes` at the server on a raw socket and walks away: the
/// socket closes immediately, so a server waiting for a never-sent
/// remainder sees EOF instead of parking forever.
fn inject(addr: std::net::SocketAddr, bytes: &[u8]) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        panic!("server stopped accepting connections");
    };
    stream
        .set_write_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    // The server may have closed mid-write (e.g. after a corrupt
    // preamble); a write error is a legitimate outcome, not a failure.
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    // Drain whatever the server answers (typed ProtocolError frames,
    // job responses) until it closes; bounded by the read timeout.
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    while wire::read_frame(&mut stream).is_ok() {}
}

/// The liveness probe: after every injection the server must still
/// serve a brand-new, well-behaved connection.
fn assert_alive(server: &flsa_serve::Server, what: &str) {
    let mut client = connect(server);
    client
        .ping(42)
        .unwrap_or_else(|e| panic!("server unhealthy after {what}: {e}"));
}

#[test]
fn every_single_bit_flip_is_survived() {
    let server = start(ServeConfig::new(""));
    let addr = server.local_addr();
    let session = recorded_session();
    for byte in 0..session.len() {
        for bit in 0..8 {
            let mut corrupted = session.clone();
            corrupted[byte] ^= 1 << bit;
            inject(addr, &corrupted);
        }
        // Probing per-byte (not per-bit) keeps the sweep fast while
        // still localising a failure to within eight flips.
        assert_alive(&server, &format!("bit flips in byte {byte}"));
    }
    server.drain();
    assert_eq!(server.admission_used_bytes(), 0);
    server.join();
}

#[test]
fn every_truncation_offset_is_survived() {
    let server = start(ServeConfig::new(""));
    let addr = server.local_addr();
    let session = recorded_session();
    for cut in 0..=session.len() {
        inject(addr, &session[..cut]);
        assert_alive(&server, &format!("truncation at offset {cut}"));
    }
    server.drain();
    assert_eq!(server.admission_used_bytes(), 0);
    server.join();
}

#[test]
fn allocation_bombs_are_rejected_before_any_allocation() {
    let server = start(ServeConfig::new(""));
    // A frame header claiming a multi-GiB payload: the server must
    // answer with a typed error without ever trying to buffer it.
    let mut client = connect(&server);
    client
        .send_raw(&[0xFF, 0xFF, 0xFF, 0xFF])
        .expect("send bomb header");
    match client.recv() {
        Ok(Frame::ProtocolError { detail }) => {
            assert!(!detail.is_empty());
        }
        other => panic!("expected typed ProtocolError, got {other:?}"),
    }
    // Framing is unrecoverable after a length lie: the server closes.
    // A fresh connection works.
    assert_alive(&server, "allocation-bomb header");

    // An Align payload whose *inner* length field lies about a huge
    // sequence: caught by the bounded cursor, connection kept.
    let a = dna(1, 16);
    let b = dna(2, 16);
    let mut payload = wire::encode_payload(&Frame::Align(req(1, &a, &b)));
    // The request tail is [len_a:u32][a][len_b:u32][b]; corrupt the
    // last 4-byte length (seq_b) into ~4 GiB.
    let pos = payload.len() - b.len() - 4;
    payload[pos..pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let mut framed = (payload.len() as u32).to_le_bytes().to_vec();
    framed.extend_from_slice(&payload);
    let mut client = connect(&server);
    client.send_raw(&framed).expect("send inner bomb");
    match client.recv() {
        Ok(Frame::ProtocolError { detail }) => assert!(!detail.is_empty()),
        other => panic!("expected typed ProtocolError, got {other:?}"),
    }
    // Inner corruption is Malformed, not a framing loss: the same
    // connection still works.
    client.ping(7).expect("ping after malformed payload");
    server.drain();
    server.join();
}

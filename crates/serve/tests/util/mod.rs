//! Shared helpers for the serve integration suites.

#![allow(dead_code)]

use std::time::Duration;

use flsa_dp::Metrics;
use flsa_fault::SplitMix64;
use flsa_seq::Sequence;
use flsa_serve::job;
use flsa_serve::wire::AlignRequest;
use flsa_serve::{Client, ServeConfig, Server};

/// Gap penalty every helper uses; keep requests and references in step.
pub const GAP: i32 = -2;

/// Deterministic DNA text of `len` residues.
pub fn dna(seed: u64, len: usize) -> String {
    let mut rng = SplitMix64::new(seed);
    (0..len)
        .map(|_| b"ACGT"[rng.below(4) as usize] as char)
        .collect()
}

/// An `AlignRequest` with library defaults (no deadline, default
/// `k`/`base_cells`, the DNA matrix).
pub fn req(id: u64, a: &str, b: &str) -> AlignRequest {
    AlignRequest {
        id,
        deadline_ms: 0,
        threads: 0,
        k: 0,
        gap: GAP,
        base_cells: 0,
        matrix: "dna".to_string(),
        seq_a: a.as_bytes().to_vec(),
        seq_b: b.as_bytes().to_vec(),
    }
}

/// Sequential reference `(score, cigar)` for the same inputs — the
/// byte-identity target for every server result.
pub fn reference(a: &str, b: &str) -> (i64, String) {
    let scheme = job::scheme_for("dna", GAP).expect("dna scheme");
    let sa = Sequence::from_str("a", scheme.alphabet(), a).expect("seq a");
    let sb = Sequence::from_str("b", scheme.alphabet(), b).expect("seq b");
    let r = fastlsa_core::align(&sa, &sb, &scheme, &Metrics::new()).expect("reference align");
    (r.score, job::cigar(&r.path))
}

/// Starts a server on an ephemeral port and returns it.
pub fn start(mut cfg: ServeConfig) -> Server {
    cfg.addr = "127.0.0.1:0".to_string();
    Server::start(cfg).expect("server start")
}

/// Connects to `server` with a recv timeout so a buggy server fails the
/// test instead of hanging it.
pub fn connect(server: &Server) -> Client {
    let mut c = Client::connect(server.local_addr()).expect("connect");
    c.set_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    c
}

/// Fresh per-test temp directory.
pub fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("flsa-serve-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

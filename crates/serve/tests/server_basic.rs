//! End-to-end daemon tests: correctness vs the sequential reference,
//! the typed-rejection taxonomy (BadRequest / TooLarge / Overloaded /
//! DeadlineExpired / WorkerPanic), protocol hygiene, graceful drain,
//! and in-process spool recovery.

mod util;

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flsa_metrics::{names, Registry};
use flsa_serve::wire::{ErrorCode, Frame};
use flsa_serve::{JobHooks, ServeConfig, ServeError, Server, Spool};
use util::{connect, dna, reference, req, start, tmpdir};

/// Hooks that stall every attempt — used to hold workers busy.
struct Stall(Duration);

impl JobHooks for Stall {
    fn on_attempt(&self, _seq: u64, _attempt: u32) {
        std::thread::sleep(self.0);
    }
}

/// Hooks that panic the first `n` attempts of every job.
struct PanicFirst {
    n: u32,
    fired: AtomicU32,
}

impl JobHooks for PanicFirst {
    fn on_attempt(&self, _seq: u64, attempt: u32) {
        if attempt <= self.n {
            self.fired.fetch_add(1, Ordering::Relaxed);
            panic!("injected worker panic (attempt {attempt})");
        }
    }
}

fn drain_and_check(server: Server) {
    server.drain();
    assert_eq!(
        server.admission_used_bytes(),
        0,
        "admission must return to baseline after drain"
    );
    server.join();
}

#[test]
fn align_round_trips_and_matches_the_reference() {
    let server = start(ServeConfig::new(""));
    let mut client = connect(&server);
    for seed in 0..4u64 {
        let a = dna(seed, 200 + seed as usize * 37);
        let b = dna(seed + 100, 180 + seed as usize * 41);
        let (score, cigar) = reference(&a, &b);
        match client.align(req(seed, &a, &b)).expect("response") {
            Frame::Ok(ok) => {
                assert_eq!(ok.id, seed);
                assert_eq!(ok.score, score, "seed {seed}");
                assert_eq!(ok.cigar, cigar, "seed {seed}");
            }
            other => panic!("seed {seed}: expected Ok, got {other:?}"),
        }
    }
    drain_and_check(server);
}

#[test]
fn bad_requests_get_typed_rejections() {
    let server = start(ServeConfig::new(""));
    let mut client = connect(&server);
    // Unknown matrix.
    match client.align(req(1, "ACGT", "ACGT").tap(|r| r.matrix = "nope".into())) {
        Ok(Frame::Fail(f)) => {
            assert_eq!(f.code, ErrorCode::BadRequest);
            assert!(f.detail.contains("nope"), "{}", f.detail);
        }
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // Residue outside the alphabet.
    match client.align(req(2, "ACGT", "AXGT")) {
        Ok(Frame::Fail(f)) => assert_eq!(f.code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // Invalid FastLSA k.
    match client.align(req(3, "ACGT", "ACGT").tap(|r| r.k = 1)) {
        Ok(Frame::Fail(f)) => assert_eq!(f.code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // The connection survives every rejection.
    client.ping(7).expect("ping after rejections");
    drain_and_check(server);
}

/// Small builder sugar for tweaking one request field inline.
trait Tap: Sized {
    fn tap(self, f: impl FnOnce(&mut Self)) -> Self;
}

impl<T> Tap for T {
    fn tap(mut self, f: impl FnOnce(&mut Self)) -> Self {
        f(&mut self);
        self
    }
}

#[test]
fn jobs_larger_than_the_whole_budget_are_too_large() {
    let mut cfg = ServeConfig::new("");
    cfg.budget_bytes = Some(96 << 10); // below the flat per-job overhead + dp
    let server = start(cfg);
    let mut client = connect(&server);
    let a = dna(1, 600);
    let b = dna(2, 600);
    // Default base_cells (1 Mi entries) guarantees a multi-MiB estimate.
    match client.align(req(1, &a, &b)).expect("response") {
        Frame::Fail(f) => {
            assert_eq!(f.code, ErrorCode::TooLarge);
            assert!(f.detail.contains("budget"), "{}", f.detail);
        }
        other => panic!("expected TooLarge, got {other:?}"),
    }
    // A modest job still fits.
    let a = dna(3, 60);
    let b = dna(4, 60);
    let (score, _) = reference(&a, &b);
    match client
        .align(req(2, &a, &b).tap(|r| r.base_cells = 4096))
        .expect("response")
    {
        Frame::Ok(ok) => assert_eq!(ok.score, score),
        other => panic!("expected Ok, got {other:?}"),
    }
    drain_and_check(server);
}

#[test]
fn full_queue_answers_overloaded_with_a_retry_hint() {
    let mut cfg = ServeConfig::new("");
    cfg.workers = 1;
    cfg.queue_cap = 1;
    cfg.hooks = Some(Arc::new(Stall(Duration::from_millis(400))));
    let server = start(cfg);
    let mut client = connect(&server);
    let a = dna(1, 120);
    let b = dna(2, 120);
    // Pipeline more jobs than worker + queue can hold.
    for id in 0..4u64 {
        client.send(&Frame::Align(req(id, &a, &b))).expect("send");
    }
    let mut ok = 0;
    let mut overloaded = 0;
    for _ in 0..4 {
        match client.recv().expect("response") {
            Frame::Ok(_) => ok += 1,
            Frame::Overloaded { retry_after_ms, .. } => {
                assert!(retry_after_ms > 0, "hint must be positive");
                overloaded += 1;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert!(ok >= 1, "at least one job must run");
    assert!(overloaded >= 1, "the bounded queue must shed load");
    drain_and_check(server);
}

#[test]
fn deadlines_expire_as_typed_failures() {
    let mut cfg = ServeConfig::new("");
    cfg.hooks = Some(Arc::new(Stall(Duration::from_millis(300))));
    cfg.max_retries = 0;
    let server = start(cfg);
    let mut client = connect(&server);
    let a = dna(1, 150);
    let b = dna(2, 150);
    match client
        .align(req(1, &a, &b).tap(|r| r.deadline_ms = 30))
        .expect("response")
    {
        Frame::Fail(f) => assert_eq!(f.code, ErrorCode::DeadlineExpired, "{}", f.detail),
        other => panic!("expected DeadlineExpired, got {other:?}"),
    }
    drain_and_check(server);
}

#[test]
fn contained_panics_are_retried_to_success() {
    let reg = Arc::new(Registry::new());
    let mut cfg = ServeConfig::new("");
    cfg.max_retries = 2;
    cfg.retry_backoff = Duration::from_millis(5);
    cfg.registry = Some(reg.clone());
    cfg.hooks = Some(Arc::new(PanicFirst {
        n: 2,
        fired: AtomicU32::new(0),
    }));
    let server = start(cfg);
    let mut client = connect(&server);
    let a = dna(5, 100);
    let b = dna(6, 100);
    let (score, cigar) = reference(&a, &b);
    match client.align(req(1, &a, &b)).expect("response") {
        Frame::Ok(ok) => {
            assert_eq!(ok.score, score);
            assert_eq!(ok.cigar, cigar);
        }
        other => panic!("expected Ok after retries, got {other:?}"),
    }
    let snap = reg.snapshot();
    assert_eq!(snap.counter(names::SERVE_PANICS_TOTAL), Some(2));
    assert_eq!(snap.counter(names::SERVE_RETRIES_TOTAL), Some(2));
    drain_and_check(server);
}

#[test]
fn panics_past_the_retry_bound_surface_as_worker_panic() {
    let mut cfg = ServeConfig::new("");
    cfg.max_retries = 1;
    cfg.retry_backoff = Duration::from_millis(5);
    cfg.hooks = Some(Arc::new(PanicFirst {
        n: 10,
        fired: AtomicU32::new(0),
    }));
    let server = start(cfg);
    let mut client = connect(&server);
    match client
        .align(req(1, "ACGTACGT", "ACGTTCGT"))
        .expect("response")
    {
        Frame::Fail(f) => assert_eq!(f.code, ErrorCode::WorkerPanic, "{}", f.detail),
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
    drain_and_check(server);
}

#[test]
fn malformed_frames_keep_the_connection_alive() {
    let server = start(ServeConfig::new(""));
    let mut client = connect(&server);
    // A well-framed payload with an unknown tag: Malformed, answered,
    // connection stays up.
    client
        .send_raw(&[3, 0, 0, 0, 0xEE, 1, 2])
        .expect("send raw");
    match client.recv().expect("response") {
        Frame::ProtocolError { detail } => {
            assert!(detail.contains("tag") || !detail.is_empty())
        }
        other => panic!("expected ProtocolError, got {other:?}"),
    }
    // The same connection still serves real work.
    let a = dna(9, 80);
    let b = dna(10, 80);
    let (score, _) = reference(&a, &b);
    match client.align(req(1, &a, &b)).expect("response") {
        Frame::Ok(ok) => assert_eq!(ok.score, score),
        other => panic!("expected Ok, got {other:?}"),
    }
    drain_and_check(server);
}

#[test]
fn bad_preamble_is_answered_and_refused() {
    let server = start(ServeConfig::new(""));
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    {
        use std::io::Write;
        stream.write_all(b"NOTFLSA!").expect("write");
    }
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    match flsa_serve::wire::read_frame(&mut stream) {
        Ok(Frame::ProtocolError { detail }) => {
            assert!(detail.contains("preamble"), "{detail}")
        }
        other => panic!("expected ProtocolError frame, got {other:?}"),
    }
    // A correct client still gets in.
    let mut client = connect(&server);
    client.ping(1).expect("ping");
    drain_and_check(server);
}

#[test]
fn shutdown_frame_requests_a_drain_and_drain_rejects_new_work() {
    let server = start(ServeConfig::new(""));
    let mut client = connect(&server);
    client.ping(1).expect("ping");
    assert!(!server.drain_requested());
    client.shutdown().expect("shutdown handshake");
    assert!(server.drain_requested(), "Shutdown frame must set the flag");

    server.drain();
    // In-flight connections now see typed Draining failures.
    match client.align(req(9, "ACGT", "ACGT")) {
        Ok(Frame::Fail(f)) => assert_eq!(f.code, ErrorCode::Draining),
        // The reader may already have shut the connection down.
        Ok(other) => panic!("expected Draining, got {other:?}"),
        Err(_) => {}
    }
    assert_eq!(server.admission_used_bytes(), 0);
    server.join();
}

#[test]
fn queued_jobs_are_answered_draining_at_shutdown() {
    let mut cfg = ServeConfig::new("");
    cfg.workers = 1;
    cfg.hooks = Some(Arc::new(Stall(Duration::from_millis(300))));
    let server = start(cfg);
    let mut client = connect(&server);
    let a = dna(1, 100);
    let b = dna(2, 100);
    for id in 0..3u64 {
        client.send(&Frame::Align(req(id, &a, &b))).expect("send");
    }
    // Let the first job reach a worker, then drain with the rest queued.
    std::thread::sleep(Duration::from_millis(100));
    server.drain();
    let mut outcomes = Vec::new();
    for _ in 0..3 {
        match client.recv() {
            Ok(Frame::Ok(_)) => outcomes.push("ok"),
            Ok(Frame::Fail(f)) if f.code == ErrorCode::Draining => outcomes.push("draining"),
            Ok(other) => panic!("unexpected {other:?}"),
            Err(e) => panic!("every accepted job must be answered: {e}"),
        }
    }
    assert!(
        outcomes.contains(&"draining"),
        "queued jobs must get typed Draining answers: {outcomes:?}"
    );
    assert_eq!(server.admission_used_bytes(), 0);
    let summary = server.join();
    assert!(summary.drained >= 1, "{summary:?}");
}

#[test]
fn queued_small_jobs_are_batched_and_still_match_the_reference() {
    // One worker, one long job to build a backlog, then a burst of small
    // jobs: the worker's next dispatch coalesces the parked smalls onto
    // the inter-sequence batch kernel. Results must be byte-identical to
    // the sequential reference either way.
    let reg = Arc::new(Registry::new());
    let mut cfg = ServeConfig::new("");
    cfg.workers = 1;
    cfg.registry = Some(reg.clone());
    let server = start(cfg);

    let big = {
        let mut c = connect(&server);
        let (a, b) = (dna(900, 1200), dna(901, 1200));
        std::thread::spawn(move || {
            let frame = c.align(req(0, &a, &b)).expect("big job response");
            assert!(matches!(frame, Frame::Ok(_)), "{frame:?}");
        })
    };
    // Let the big job reach the worker before the burst arrives.
    std::thread::sleep(Duration::from_millis(100));

    let senders: Vec<_> = (1..=12u64)
        .map(|id| {
            let mut c = connect(&server);
            std::thread::spawn(move || {
                let a = dna(id, 60 + (id as usize % 5) * 17);
                let b = dna(id + 500, 50 + (id as usize % 7) * 13);
                let (score, cigar) = reference(&a, &b);
                match c.align(req(id, &a, &b)).expect("response") {
                    Frame::Ok(ok) => {
                        assert_eq!(ok.id, id);
                        assert_eq!(ok.score, score, "job {id}");
                        assert_eq!(ok.cigar, cigar, "job {id}");
                    }
                    other => panic!("job {id}: expected Ok, got {other:?}"),
                }
            })
        })
        .collect();
    for s in senders {
        s.join().expect("sender");
    }
    big.join().expect("big job");

    let snap = reg.snapshot();
    assert!(
        snap.counter(names::SERVE_BATCHES_TOTAL).unwrap_or(0) >= 1,
        "expected at least one batched dispatch: {:?}",
        snap.counter(names::SERVE_BATCHES_TOTAL)
    );
    assert!(snap.counter(names::SERVE_BATCHED_JOBS_TOTAL).unwrap_or(0) >= 2);
    drain_and_check(server);
}

#[test]
fn zero_workers_is_a_config_error() {
    let mut cfg = ServeConfig::new("127.0.0.1:0");
    cfg.workers = 0;
    match Server::start(cfg) {
        Err(ServeError::Config { detail }) => assert!(detail.contains("workers")),
        Err(other) => panic!("expected Config error, got {other:?}"),
        Ok(_) => panic!("expected Config error, got a running server"),
    }
}

#[test]
fn spooled_work_is_recovered_and_completed_after_restart() {
    let dir = tmpdir("recover");
    let a = dna(21, 600);
    let b = dna(22, 600);
    let (score, cigar) = reference(&a, &b);

    // A "previous daemon" accepted the job (spooled it) and was killed
    // before running it: only the .req file exists.
    {
        let spool = Spool::open(&dir).expect("spool");
        spool
            .write_request(5, &req(77, &a, &b))
            .expect("write request");
    }

    let reg = Arc::new(Registry::new());
    let mut cfg = ServeConfig::new("");
    cfg.spool_dir = Some(dir.clone());
    cfg.registry = Some(reg.clone());
    let server = start(cfg);

    // The restarted server completes the job with no client attached.
    let spool = Spool::open(&dir).expect("spool");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !spool.done_path(5).exists() {
        assert!(Instant::now() < deadline, "recovered job never completed");
        std::thread::sleep(Duration::from_millis(20));
    }
    match spool.read_done(5) {
        Some(Frame::Ok(ok)) => {
            assert_eq!(ok.id, 77, "correlation id survives recovery");
            assert_eq!(ok.score, score);
            assert_eq!(ok.cigar, cigar);
        }
        other => panic!("expected durable Ok result, got {other:?}"),
    }
    let (pending, _) = spool.recover().expect("recover");
    assert!(pending.is_empty(), "spool must be clean after completion");
    assert_eq!(
        reg.snapshot().counter(names::SERVE_RECOVERED_TOTAL),
        Some(1)
    );
    drain_and_check(server);
}

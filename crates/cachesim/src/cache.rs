//! Set-associative LRU caches and a two-level hierarchy.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes (power of two).
    pub size_bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Ways per set.
    pub assoc: usize,
}

impl CacheConfig {
    /// A typical 32 KiB, 64 B-line, 8-way L1 data cache.
    pub const L1: CacheConfig = CacheConfig {
        size_bytes: 32 << 10,
        line_bytes: 64,
        assoc: 8,
    };
    /// A typical 1 MiB, 64 B-line, 16-way L2 cache.
    pub const L2: CacheConfig = CacheConfig {
        size_bytes: 1 << 20,
        line_bytes: 64,
        assoc: 16,
    };

    fn sets(&self) -> usize {
        self.size_bytes / self.line_bytes / self.assoc
    }
}

/// Hit/miss counters of one level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses reaching this level.
    pub accesses: u64,
    /// Misses at this level.
    pub misses: u64,
    /// Dirty lines evicted (write-back traffic toward the next level).
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss fraction (0 when never accessed).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// One set-associative LRU cache level.
#[derive(Debug)]
pub struct Cache {
    config: CacheConfig,
    line_shift: u32,
    set_mask: u64,
    /// `tags[set * assoc + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    /// Dirty bits parallel to `tags` (write-back policy).
    dirty: Vec<bool>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics when sizes are not powers of two or the geometry is
    /// inconsistent.
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            config.size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        let sets = config.sets();
        assert!(
            sets >= 1 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        Cache {
            config,
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: sets as u64 - 1,
            tags: vec![u64::MAX; sets * config.assoc],
            stamps: vec![0; sets * config.assoc],
            dirty: vec![false; sets * config.assoc],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Read access to one byte address; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.access_rw(addr, false)
    }

    /// Read (`write = false`) or write (`write = true`) access.
    /// Write-allocate + write-back: writes mark the line dirty; evicting
    /// a dirty line counts one write-back toward the next level.
    pub fn access_rw(&mut self, addr: u64, write: bool) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let base = set * self.config.assoc;
        let ways = &self.tags[base..base + self.config.assoc];
        if let Some(way) = ways.iter().position(|&t| t == line) {
            self.stamps[base + way] = self.clock;
            self.dirty[base + way] |= write;
            return true;
        }
        self.stats.misses += 1;
        // Evict the LRU way, writing it back if dirty.
        let victim = (0..self.config.assoc)
            .min_by_key(|&w| self.stamps[base + w])
            // flsa-check: allow(unwrap) — assoc >= 1 by construction
            .expect("assoc >= 1");
        if self.dirty[base + victim] && self.tags[base + victim] != u64::MAX {
            self.stats.writebacks += 1;
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        self.dirty[base + victim] = write;
        false
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }
}

/// Per-level counters of a hierarchy access run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LevelStats {
    /// L1 counters.
    pub l1: CacheStats,
    /// L2 counters (accesses = L1 misses).
    pub l2: CacheStats,
}

/// A two-level cache hierarchy with an AMAT cycle model.
#[derive(Debug)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
    /// Cycles for an L1 hit / L2 hit / memory access.
    pub latencies: (u64, u64, u64),
}

impl Hierarchy {
    /// L1 + L2 with conventional latencies (4 / 14 / 120 cycles).
    pub fn typical() -> Self {
        Hierarchy::new(CacheConfig::L1, CacheConfig::L2, (4, 14, 120))
    }

    /// Builds a hierarchy with explicit geometry and latencies.
    pub fn new(l1: CacheConfig, l2: CacheConfig, latencies: (u64, u64, u64)) -> Self {
        Hierarchy {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            latencies,
        }
    }

    /// Read access through the hierarchy.
    #[inline]
    pub fn access(&mut self, addr: u64) {
        self.access_rw(addr, false)
    }

    /// Read or write access through the hierarchy. Writes dirty the L1
    /// line; L1 write-backs dirty L2 (modelled as a write access there).
    #[inline]
    pub fn access_rw(&mut self, addr: u64, write: bool) {
        let l1_wb_before = self.l1.stats().writebacks;
        if !self.l1.access_rw(addr, write) {
            // The L1 miss fetches from L2. Mark the L2 line dirty when
            // the miss also evicted a dirty L1 line (its contents land in
            // L2 — a simplification that keeps one L2 access per miss).
            let l1_evicted_dirty = self.l1.stats().writebacks > l1_wb_before;
            self.l2.access_rw(addr, l1_evicted_dirty);
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> LevelStats {
        LevelStats {
            l1: self.l1.stats(),
            l2: self.l2.stats(),
        }
    }

    /// Estimated cycles under the AMAT model: every access pays the L1
    /// latency, L1 misses add the L2 latency, L2 misses add memory, and
    /// dirty L2 evictions add memory write traffic (half-latency: writes
    /// are buffered but still consume bandwidth).
    pub fn estimated_cycles(&self) -> u64 {
        let s = self.stats();
        let (t1, t2, tm) = self.latencies;
        s.l1.accesses * t1 + s.l2.accesses * t2 + s.l2.misses * tm + s.l2.writebacks * tm / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 16-byte lines = 128 bytes.
        Cache::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 16,
            assoc: 2,
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(15)); // same line
        assert!(!c.access(16)); // next line
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Three lines mapping to set 0 (stride = sets * line = 64).
        c.access(0);
        c.access(64);
        c.access(0); // refresh line 0
        c.access(128); // evicts line 64 (LRU)
        assert!(c.access(0), "line 0 must survive");
        assert!(!c.access(64), "line 64 was evicted");
    }

    #[test]
    fn working_set_within_capacity_stays_resident() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            assoc: 4,
        });
        // Touch 1024 bytes twice: second pass must be all hits.
        for addr in (0..1024).step_by(4) {
            c.access(addr);
        }
        let misses_after_first = c.stats().misses;
        assert_eq!(misses_after_first, 16); // one per line
        for addr in (0..1024).step_by(4) {
            assert!(c.access(addr), "addr {addr}");
        }
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            assoc: 4,
        });
        // Stream 64 KiB repeatedly: every line access misses on each pass.
        for _ in 0..2 {
            for addr in (0..65536).step_by(64) {
                c.access(addr);
            }
        }
        assert_eq!(
            c.stats().misses,
            2048,
            "LRU streaming working set > capacity"
        );
    }

    #[test]
    fn hierarchy_counts_and_cycles() {
        let mut h = Hierarchy::new(
            CacheConfig {
                size_bytes: 128,
                line_bytes: 16,
                assoc: 2,
            },
            CacheConfig {
                size_bytes: 1024,
                line_bytes: 16,
                assoc: 4,
            },
            (1, 10, 100),
        );
        h.access(0); // L1 miss, L2 miss, mem
        h.access(0); // L1 hit
        let s = h.stats();
        assert_eq!(s.l1.accesses, 2);
        assert_eq!(s.l1.misses, 1);
        assert_eq!(s.l2.accesses, 1);
        assert_eq!(s.l2.misses, 1);
        assert_eq!(h.estimated_cycles(), 2 + 10 + 100);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        Cache::new(CacheConfig {
            size_bytes: 100,
            line_bytes: 64,
            assoc: 2,
        });
    }
}

//! Cache simulation substrate (experiment E10).
//!
//! The paper's §4 claim — "in practice, due to memory caching effects,
//! FastLSA is always as fast or faster than Hirschberg and the FM
//! algorithms" — depends on the memory hierarchy of the testbed. This
//! crate reproduces that argument quantitatively on any machine: a
//! set-associative LRU [`cache::Cache`] hierarchy is driven by the memory
//! *access traces* of each algorithm's FindScore/FindPath phases, and an
//! average-memory-access-time model converts hit/miss counts into
//! estimated cycles.
//!
//! The traces model exactly the DPM-entry traffic (reads of the three
//! predecessor entries, the write of the computed entry, buffer reuse
//! across recursion) and ignore sequence-residue reads, which are O(m+n)
//! streaming and identical across algorithms.
#![forbid(unsafe_code)]

pub mod cache;
pub mod trace;

pub use cache::{Cache, CacheConfig, CacheStats, Hierarchy, LevelStats};
pub use trace::{trace_fastlsa, trace_fm, trace_hirschberg, TraceReport};

//! Memory-access traces of the three algorithm families.
//!
//! Each tracer replays the DPM-entry traffic of one algorithm through a
//! [`Hierarchy`]. The per-cell access pattern is the one the real kernels
//! have: the diagonal and left inputs live in registers, so a fill touches
//! memory twice per cell (read the up-neighbour, write the result); a
//! traceback touches four entries per step.
//!
//! Two simplifications, both documented here and in DESIGN.md:
//!
//! * the optimal path is approximated by the main diagonal (for the
//!   homologous pairs of the workload suite the true path hugs the
//!   diagonal), so FastLSA recurses on the `k` diagonal blocks rather
//!   than a data-dependent `≤ 2k−1` of them, and Hirschberg splits at
//!   `n/2`;
//! * sequence-residue reads are omitted (O(m+n) streaming, identical
//!   across algorithms).
//!
//! Address layout mirrors the real allocators: Hirschberg and the
//! FastLSA fill share *reused* rolling-row scratch, FastLSA's base-case
//! buffer is one fixed region (the paper's point: size `BM` to fit the
//! cache), grid lines are stacked per recursion level.

use crate::cache::{Hierarchy, LevelStats};

/// Entry size in bytes (the paper assumes 4-byte DPM entries).
const E: u64 = 4;

/// Outcome of one traced run.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Problem size.
    pub m: usize,
    /// Problem size.
    pub n: usize,
    /// DPM cells the algorithm computed.
    pub cells: u64,
    /// Cache counters.
    pub stats: LevelStats,
    /// AMAT-model cycle estimate.
    pub cycles: u64,
}

impl TraceReport {
    /// Estimated cycles per *input* cell (`m·n`), the paper-style
    /// normalized runtime.
    pub fn cycles_per_input_cell(&self) -> f64 {
        self.cycles as f64 / (self.m as f64 * self.n as f64)
    }
}

fn report(algorithm: &'static str, m: usize, n: usize, cells: u64, h: &Hierarchy) -> TraceReport {
    TraceReport {
        algorithm,
        m,
        n,
        cells,
        stats: h.stats(),
        cycles: h.estimated_cycles(),
    }
}

/// Fills a rectangle whose rows live at `row_addr(i)`: two accesses per
/// cell (read up-neighbour, write result).
fn fill_rect(h: &mut Hierarchy, rows: usize, cols: usize, row_addr: impl Fn(usize) -> u64) -> u64 {
    for i in 1..=rows {
        let up_row = row_addr(i - 1);
        let cur_row = row_addr(i);
        for j in 1..=cols {
            h.access(up_row + j as u64 * E);
            h.access_rw(cur_row + j as u64 * E, true);
        }
    }
    rows as u64 * cols as u64
}

/// Diagonal-walk traceback over a matrix whose rows live at `row_addr(i)`:
/// four reads per step.
fn trace_diag(h: &mut Hierarchy, rows: usize, cols: usize, row_addr: impl Fn(usize) -> u64) {
    let (mut i, mut j) = (rows, cols);
    while i > 0 && j > 0 {
        h.access(row_addr(i) + j as u64 * E);
        h.access(row_addr(i - 1) + (j - 1) as u64 * E);
        h.access(row_addr(i - 1) + j as u64 * E);
        h.access(row_addr(i) + (j - 1) as u64 * E);
        i -= 1;
        j -= 1;
    }
}

/// Full-matrix algorithm: fill the whole `(m+1)×(n+1)` matrix in place,
/// then trace back through it.
pub fn trace_fm(m: usize, n: usize, mut h: Hierarchy) -> TraceReport {
    let w = (n + 1) as u64 * E;
    let cells = fill_rect(&mut h, m, n, |i| i as u64 * w);
    trace_diag(&mut h, m, n, |i| i as u64 * w);
    report("full-matrix", m, n, cells, &h)
}

/// Hirschberg: rolling-row fills over the recursion (diagonal split
/// assumption), with tiny FM base cases in a reused buffer.
pub fn trace_hirschberg(m: usize, n: usize, base_cells: usize, mut h: Hierarchy) -> TraceReport {
    // Region 0: the two rolling rows (reused). Region 1: base-case buffer.
    let roll = 0u64;
    let base = 16 << 20; // far from the rolling rows
    let mut cells = 0u64;

    fn rec(
        m: usize,
        n: usize,
        base_cells: usize,
        h: &mut Hierarchy,
        roll: u64,
        base: u64,
        cells: &mut u64,
    ) {
        if m == 0 || n == 0 {
            return;
        }
        if m == 1 || (m + 1) * (n + 1) <= base_cells {
            let w = (n + 1) as u64 * E;
            *cells += fill_rect(h, m, n, |i| base + i as u64 * w);
            trace_diag(h, m, n, |i| base + i as u64 * w);
            return;
        }
        let mid = m / 2;
        // Forward + backward last-row scans over the whole width, both in
        // the same rolling buffer (two rows).
        *cells += fill_rect(h, mid, n, |i| roll + (i % 2) as u64 * ((n + 1) as u64 * E));
        *cells += fill_rect(h, m - mid, n, |i| {
            roll + (i % 2) as u64 * ((n + 1) as u64 * E)
        });
        let split = n / 2; // diagonal assumption
        rec(mid, split, base_cells, h, roll, base, cells);
        rec(m - mid, n - split, base_cells, h, roll, base, cells);
    }
    rec(m, n, base_cells, &mut h, roll, base, &mut cells);
    report("hirschberg", m, n, cells, &h)
}

/// FastLSA: grid fills with a rolling row (reused scratch), grid-line
/// writes (stacked per level), FM base cases in the one reserved buffer.
pub fn trace_fastlsa(
    m: usize,
    n: usize,
    k: usize,
    base_cells: usize,
    mut h: Hierarchy,
) -> TraceReport {
    assert!(k >= 2);
    let roll = 0u64;
    let base = 16 << 20;
    let mut grid_top = 32u64 << 20; // bump allocator for grid lines
    let mut cells = 0u64;

    #[allow(clippy::too_many_arguments)]
    fn rec(
        m: usize,
        n: usize,
        k: usize,
        base_cells: usize,
        h: &mut Hierarchy,
        roll: u64,
        base: u64,
        grid_top: &mut u64,
        cells: &mut u64,
    ) {
        if m == 0 || n == 0 {
            return;
        }
        if (m + 1) * (n + 1) <= base_cells || m < 2 || n < 2 {
            let w = (n + 1) as u64 * E;
            *cells += fill_rect(h, m, n, |i| base + i as u64 * w);
            trace_diag(h, m, n, |i| base + i as u64 * w);
            return;
        }
        let k_r = k.min(m);
        let k_c = k.min(n);
        // Allocate this level's grid lines.
        let rows_region = *grid_top;
        let row_bytes = (n + 1) as u64 * E;
        let cols_region = rows_region + (k_r as u64 - 1) * row_bytes;
        let col_bytes = (m + 1) as u64 * E;
        let saved_top = *grid_top;
        *grid_top = cols_region + (k_c as u64 - 1) * col_bytes;

        // Fill every block except the bottom-right one: rolling row in the
        // shared scratch, plus grid-line writes on block edges.
        let rb: Vec<usize> = (0..=k_r).map(|i| m * i / k_r).collect();
        let cb: Vec<usize> = (0..=k_c).map(|i| n * i / k_c).collect();
        for s in 0..k_r {
            for t in 0..k_c {
                if s == k_r - 1 && t == k_c - 1 {
                    continue;
                }
                let bm = rb[s + 1] - rb[s];
                let bn = cb[t + 1] - cb[t];
                *cells += fill_rect(h, bm, bn, |i| roll + (i % 2) as u64 * ((n + 1) as u64 * E));
                // Bottom-row write-out to the grid row region.
                if s + 1 < k_r {
                    let row_addr = rows_region + s as u64 * row_bytes;
                    for j in cb[t]..=cb[t + 1] {
                        h.access_rw(row_addr + j as u64 * E, true);
                    }
                }
                // Right-column write-out to the grid column region.
                if t + 1 < k_c {
                    let col_addr = cols_region + t as u64 * col_bytes;
                    for i in rb[s]..=rb[s + 1] {
                        h.access_rw(col_addr + i as u64 * E, true);
                    }
                }
            }
        }
        // Diagonal-path assumption: recurse on the k diagonal blocks,
        // bottom-right first.
        for d in (0..k_r.min(k_c)).rev() {
            let s = k_r - 1 - (k_r.min(k_c) - 1 - d);
            let t = k_c - 1 - (k_c.min(k_r) - 1 - d);
            rec(
                rb[s + 1] - rb[s],
                cb[t + 1] - cb[t],
                k,
                base_cells,
                h,
                roll,
                base,
                grid_top,
                cells,
            );
        }
        *grid_top = saved_top;
    }
    rec(
        m,
        n,
        k,
        base_cells,
        &mut h,
        roll,
        base,
        &mut grid_top,
        &mut cells,
    );
    report("fastlsa", m, n, cells, &h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Hierarchy;

    #[test]
    fn fm_computes_exactly_mn_cells() {
        let r = trace_fm(200, 300, Hierarchy::typical());
        assert_eq!(r.cells, 200 * 300);
        assert_eq!(r.stats.l1.accesses, 2 * 200 * 300 + 4 * 200);
    }

    #[test]
    fn hirschberg_computes_about_2mn_cells() {
        let r = trace_hirschberg(512, 512, 256, Hierarchy::typical());
        let factor = r.cells as f64 / (512.0 * 512.0);
        assert!((1.6..=2.05).contains(&factor), "factor {factor}");
    }

    #[test]
    fn fastlsa_cells_between_fm_and_hirschberg() {
        let fm = trace_fm(512, 512, Hierarchy::typical());
        let fl = trace_fastlsa(512, 512, 8, 64 * 64, Hierarchy::typical());
        let hb = trace_hirschberg(512, 512, 64 * 64, Hierarchy::typical());
        assert!(fl.cells >= fm.cells);
        assert!(
            fl.cells <= hb.cells,
            "fastlsa {} vs hirschberg {}",
            fl.cells,
            hb.cells
        );
    }

    #[test]
    fn rolling_buffers_hit_cache_where_fm_thrashes() {
        // At a size whose matrix far exceeds L2 (1 MiB), the FM fill
        // misses on every matrix line while Hirschberg's rolling rows and
        // FastLSA's cache-sized base cases mostly hit.
        let n = 1500; // matrix ~9 MB; rolling rows ~6 KB
        let fm = trace_fm(n, n, Hierarchy::typical());
        let hb = trace_hirschberg(n, n, 1 << 10, Hierarchy::typical());
        let fl = trace_fastlsa(n, n, 8, 1 << 14, Hierarchy::typical());
        assert!(
            fm.stats.l2.miss_rate() > 0.5,
            "FM should thrash L2: {}",
            fm.stats.l2.miss_rate()
        );
        assert!(
            hb.stats.l1.miss_rate() < 0.10,
            "hirschberg L1 {}",
            hb.stats.l1.miss_rate()
        );
        assert!(
            fl.stats.l1.miss_rate() < 0.15,
            "fastlsa L1 {}",
            fl.stats.l1.miss_rate()
        );
    }

    #[test]
    fn fastlsa_cycles_at_most_both_baselines_at_scale() {
        // The paper's §4 headline, reproduced in cycle estimates.
        let n = 1500;
        let fm = trace_fm(n, n, Hierarchy::typical());
        let hb = trace_hirschberg(n, n, 1 << 12, Hierarchy::typical());
        let fl = trace_fastlsa(n, n, 8, 1 << 16, Hierarchy::typical());
        assert!(
            fl.cycles <= fm.cycles,
            "fastlsa {} cycles vs fm {}",
            fl.cycles,
            fm.cycles
        );
        assert!(
            fl.cycles <= hb.cycles,
            "fastlsa {} cycles vs hirschberg {}",
            fl.cycles,
            hb.cycles
        );
    }

    #[test]
    fn fm_generates_far_more_writeback_traffic() {
        // FM dirties its whole O(m*n) matrix; the rolling-row algorithms
        // dirty a few KiB repeatedly. Write-back counts make the memory-
        // traffic asymmetry visible even when miss *rates* look similar.
        let n = 1200;
        let fm = trace_fm(n, n, Hierarchy::typical());
        let hb = trace_hirschberg(n, n, 1 << 10, Hierarchy::typical());
        assert!(
            fm.stats.l2.writebacks > 10 * hb.stats.l2.writebacks.max(1),
            "fm {} vs hirschberg {}",
            fm.stats.l2.writebacks,
            hb.stats.l2.writebacks
        );
    }

    #[test]
    fn small_problems_fit_cache_for_everyone() {
        let r = trace_fm(50, 50, Hierarchy::typical());
        // 10 KB matrix: almost everything hits L1 after the first touch.
        assert!(r.stats.l1.miss_rate() < 0.15, "{}", r.stats.l1.miss_rate());
    }
}

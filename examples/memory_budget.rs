//! FastLSA's memory adaptivity — the paper's central design point.
//!
//! The same 20 kb alignment is solved under shrinking memory budgets;
//! `FastLsaConfig::for_memory` picks `k` and the base-case buffer, and
//! the run reports how recomputation grows as memory shrinks (the
//! space-operations trade-off of Theorem 2).
//!
//! ```text
//! cargo run --release --example memory_budget
//! ```

use fastlsa::prelude::*;

fn main() {
    let scheme = ScoringScheme::dna_default();
    let (a, b) = generate::homologous_pair("demo", scheme.alphabet(), 20_000, 0.8, 11).unwrap();
    let mn = a.len() as f64 * b.len() as f64;

    println!(
        "aligning {} x {} residues under different memory budgets\n",
        a.len(),
        b.len()
    );
    println!(
        "{:>12}  {:>4}  {:>12}  {:>10}  {:>9}  {:>8}",
        "budget", "k", "base cells", "cells/mn", "peak MiB", "score"
    );
    for budget in [2usize << 30, 64 << 20, 8 << 20, 1 << 20, 256 << 10] {
        let config = FastLsaConfig::for_memory(budget, a.len(), b.len());
        let metrics = Metrics::new();
        let result = fastlsa::align_with(&a, &b, &scheme, config, &metrics).unwrap();
        let s = metrics.snapshot();
        println!(
            "{:>12}  {:>4}  {:>12}  {:>10.3}  {:>9.2}  {:>8}",
            human(budget),
            config.k,
            config.base_cells,
            s.cells_computed as f64 / mn,
            s.peak_bytes as f64 / (1 << 20) as f64,
            result.score
        );
    }
    println!("\nevery run returns the identical optimal score; only the");
    println!("space/recomputation trade-off changes (paper Theorem 2).");
}

fn human(bytes: usize) -> String {
    if bytes >= 1 << 30 {
        format!("{} GiB", bytes >> 30)
    } else if bytes >= 1 << 20 {
        format!("{} MiB", bytes >> 20)
    } else {
        format!("{} KiB", bytes >> 10)
    }
}

//! Whole-sequence DNA alignment at a scale where the full-matrix
//! algorithm is no longer an option — the paper's motivating scenario.
//!
//! Aligns a 100 kb synthetic genome pair. The FM algorithm would need
//! ~40 GB for its matrix; FastLSA at k = 16 uses a few megabytes and
//! computes ~1.13 × m·n cells.
//!
//! ```text
//! cargo run --release --example genome_alignment
//! ```

use std::time::Instant;

use fastlsa::prelude::*;

fn main() {
    let scheme = ScoringScheme::dna_default();
    let len = 100_000;
    println!("generating a {len}-base homologous pair (75% identity)...");
    let (a, b) = generate::homologous_pair("genome", scheme.alphabet(), len, 0.75, 2024).unwrap();

    let fm_bytes = (a.len() + 1) as u64 * (b.len() + 1) as u64 * 4;
    println!(
        "full-matrix storage would be {:.1} GiB; FastLSA runs in megabytes instead\n",
        fm_bytes as f64 / (1u64 << 30) as f64
    );

    let config = FastLsaConfig::new(16, 1 << 20);
    let metrics = Metrics::new();
    let start = Instant::now();
    let result = fastlsa::align_with(&a, &b, &scheme, config, &metrics).unwrap();
    let elapsed = start.elapsed();

    let alignment = Alignment::from_path(&a, &b, &result.path, &scheme);
    let s = metrics.snapshot();
    println!("score      {}", result.score);
    println!("identity   {:.1}%", alignment.identity() * 100.0);
    println!("time       {elapsed:?}");
    println!(
        "DP cells   {} ({:.3} x m*n)",
        s.cells_computed,
        s.cell_factor(a.len(), b.len())
    );
    println!(
        "peak aux   {:.1} MiB",
        s.peak_bytes as f64 / (1 << 20) as f64
    );
    println!("\nfirst alignment block:");
    let text = alignment.to_string();
    for line in text.lines().take(3) {
        println!("{line}");
    }
}

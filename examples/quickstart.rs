//! Quickstart: align the paper's worked example and a small DNA pair.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fastlsa::prelude::*;

fn main() {
    // --- The paper's worked example (Table 1 scoring, gap -10) ---------
    let scheme = ScoringScheme::paper_example();
    let a = Sequence::from_str("a", scheme.alphabet(), "TLDKLLKD").unwrap();
    let b = Sequence::from_str("b", scheme.alphabet(), "TDVLKAD").unwrap();

    let metrics = Metrics::new();
    let result = fastlsa::align(&a, &b, &scheme, &metrics).unwrap();
    println!(
        "paper example: optimal score = {} (paper reports 82)",
        result.score
    );
    let alignment = Alignment::from_path(&a, &b, &result.path, &scheme);
    println!("{alignment}");

    // --- A DNA pair with the default +5/-4 matrix ----------------------
    let scheme = ScoringScheme::dna_default();
    let (a, b) = generate::homologous_pair("demo", scheme.alphabet(), 600, 0.85, 7).unwrap();

    let metrics = Metrics::new();
    let result = fastlsa::align(&a, &b, &scheme, &metrics).unwrap();
    let alignment = Alignment::from_path(&a, &b, &result.path, &scheme);
    println!(
        "dna demo: {} x {} residues, score {}, identity {:.1}%",
        a.len(),
        b.len(),
        result.score,
        alignment.identity() * 100.0
    );
    let s = metrics.snapshot();
    println!(
        "work: {} DP cells ({:.2} x m*n), peak auxiliary memory {} KiB",
        s.cells_computed,
        s.cell_factor(a.len(), b.len()),
        s.peak_bytes / 1024
    );
}

//! Parallel FastLSA: real threads plus the virtual-processor schedule
//! replay that reproduces the paper's speedup figures (§5).
//!
//! On a many-core machine the wall times shrink with `--threads`; on a
//! single-core container they stay flat while the replay still shows the
//! schedule's intrinsic speedup (see DESIGN.md §2).
//!
//! ```text
//! cargo run --release --example parallel_wavefront
//! ```

use std::time::Instant;

use fastlsa::prelude::*;

fn main() {
    let scheme = ScoringScheme::dna_default();
    let (a, b) = generate::homologous_pair("demo", scheme.alphabet(), 16_000, 0.8, 3).unwrap();
    let base = FastLsaConfig::new(8, 1 << 16);

    // Real threads: verify identical results and measure wall time.
    println!(
        "real multithreaded runs ({} x {} residues):",
        a.len(),
        b.len()
    );
    let metrics = Metrics::new();
    let reference = fastlsa::align_with(&a, &b, &scheme, base, &metrics).unwrap();
    for threads in [1usize, 2, 4] {
        let metrics = Metrics::new();
        let cfg = base.with_threads(threads);
        let start = Instant::now();
        let result = fastlsa::align_with(&a, &b, &scheme, cfg, &metrics).unwrap();
        let elapsed = start.elapsed();
        assert_eq!(result.score, reference.score);
        assert_eq!(result.path, reference.path);
        println!("  threads={threads}: {elapsed:?} (score {})", result.score);
    }

    // Schedule replay: the paper's speedup curve for any P.
    let metrics = Metrics::new();
    let (_, log) = fastlsa::align_traced(&a, &b, &scheme, base, &metrics).unwrap();
    println!("\nvirtual-processor schedule replay (tiles/block = 2):");
    println!("  {:>3}  {:>8}  {:>10}", "P", "speedup", "efficiency");
    for p in [1usize, 2, 4, 8, 16, 32] {
        let rep = fastlsa::core::replay(&log, p, 2);
        println!(
            "  {:>3}  {:>8.2}  {:>10.3}",
            p,
            rep.speedup(),
            rep.efficiency()
        );
    }
    println!("\nexpected: near-linear to P=8, flattening beyond (paper Fig. 5-level shape).");
}

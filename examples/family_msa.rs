//! Multiple alignment of a simulated gene family — the classic
//! downstream consumer of fast pairwise alignment.
//!
//! A 400-base ancestor is evolved into five descendants; the center-star
//! construction aligns the family using FastLSA for every pairwise step.
//!
//! ```text
//! cargo run --release --example family_msa
//! ```

use fastlsa::msa::center_star;
use fastlsa::prelude::*;
use fastlsa::seq::generate::{mutate, random_sequence, MutationModel};

fn main() {
    let scheme = ScoringScheme::dna_default();
    let ancestor = random_sequence("ancestor", scheme.alphabet(), 400, 2026);
    let model = MutationModel::with_identity(0.88);

    let mut family = vec![ancestor.clone()];
    for seed in 1..=5u64 {
        family.push(mutate(&ancestor, &model, seed * 31).unwrap());
    }

    let metrics = Metrics::new();
    let result = center_star(&family, &scheme, FastLsaConfig::new(8, 1 << 16), &metrics)
        .expect("non-empty family");

    println!(
        "aligned {} sequences ({} columns); center = {}",
        result.msa.num_rows(),
        result.msa.num_cols(),
        family[result.center].id()
    );
    println!(
        "conservation {:.1}%   sum-of-pairs {}",
        result.msa.conservation() * 100.0,
        result.msa.sum_of_pairs(&scheme)
    );
    let s = metrics.snapshot();
    println!(
        "pairwise DP work: {} cells, peak auxiliary memory {} KiB\n",
        s.cells_computed,
        s.peak_bytes / 1024
    );

    // First alignment block.
    let text = result.msa.to_string();
    for line in text.lines().take(6) {
        println!("{line}");
    }
}

//! Local alignment (Smith–Waterman) and affine gaps (Gotoh): the two
//! production extensions shipped beside the paper's global linear-gap
//! algorithms.
//!
//! ```text
//! cargo run --example local_alignment
//! ```

use fastlsa::fullmatrix::{gotoh, smith_waterman};
use fastlsa::prelude::*;

fn main() {
    let scheme = ScoringScheme::dna_default();

    // A conserved motif buried in unrelated flanks: global alignment pays
    // for the flanks, local alignment finds the motif.
    let a = Sequence::from_str(
        "a",
        scheme.alphabet(),
        "TTTTTTTTTTTTGATTACAGATTACATTTTTTTTTTTT",
    )
    .unwrap();
    let b = Sequence::from_str("b", scheme.alphabet(), "CCCCCCCGATTACAGATTACACCCCCCC").unwrap();

    let metrics = Metrics::new();
    let local = smith_waterman(&a, &b, &scheme, &metrics);
    println!("local score {} ", local.score);
    println!(
        "  a[{:?}] = {}",
        local.a_range(),
        &a.to_string()[local.a_range()]
    );
    println!(
        "  b[{:?}] = {}",
        local.b_range(),
        &b.to_string()[local.b_range()]
    );

    let global = fastlsa::align(&a, &b, &scheme, &metrics).unwrap();
    println!(
        "global score {} (pays for the mismatched flanks)",
        global.score
    );
    assert!(local.score > global.score);

    // Affine gaps: one long gap is cheaper than many short ones.
    let affine = ScoringScheme::new(
        fastlsa::scoring::tables::dna_default(),
        GapModel::affine(-10, -1),
    );
    let a = Sequence::from_str("a", affine.alphabet(), "ACGTACGTCCCCCCACGTACGT").unwrap();
    let b = Sequence::from_str("b", affine.alphabet(), "ACGTACGTACGTACGT").unwrap();
    let r = gotoh(&a, &b, &affine, &metrics);
    println!("\naffine-gap global score {} (single 6-base gap)", r.score);
    let linear = ScoringScheme::dna_default();
    let rl = fastlsa::align(&a, &b, &linear, &metrics).unwrap();
    println!(
        "linear-gap global score {} (same gap costs 6 x -10)",
        rl.score
    );
}
